#!/usr/bin/env python
"""Case study 3: incorporating Paradyn data (paper Section 4.3).

Generates Paradyn session exports (histograms + index + resources) for
three IRS executions, maps Paradyn's resource hierarchy into PerfTrack's
(Figure 11), loads everything, and then navigates the histogram bins
through the time hierarchy.

Run:  python examples/paradyn_integration.py
"""

from repro.core import ByName, ByType, Expansion, PrFilter
from repro.core.query import QueryEngine
from repro.studies import run_paradyn_study


def main() -> None:
    report = run_paradyn_study(
        executions=3, processes=4, modules=40, functions_per_module=12,
        histograms=25, bins=400,
    )
    store = report.store
    print("Table 1-style row (reproduced):")
    print("  " + report.table1.render())
    print()

    # Per-execution variation — the dynamic-instrumentation effect the
    # paper calls out ("the number of performance results and resources
    # varied between the three executions").
    print("per-execution detail:")
    for execution in report.executions:
        d = store.execution_details(execution)
        print(
            f"  {execution}: {d['resources']} bound resources, "
            f"{d['results']} results, {len(d['metrics'])} metrics"
        )
    print()

    # The mapped hierarchies (Figure 11).
    for type_path, label in (
        ("build/module/function", "static code (build hierarchy)"),
        ("environment/module/function", "dynamic code (environment hierarchy)"),
        ("execution/process", "processes"),
        ("syncObject/syncClass/syncInstance", "sync objects (new hierarchy)"),
        ("time/interval", "histogram bins (time hierarchy)"),
    ):
        n = len(store.resources_of_type(type_path))
        print(f"  {label:<44} {n:>7} resources")
    print()

    # Navigate one metric's histogram over time for execution 0: mean value
    # per quarter of the run.
    engine = QueryEngine(store)
    execution = report.executions[0]
    prf = PrFilter([ByName(f"/{execution}", Expansion.DESCENDANTS)])
    results = [r for r in engine.fetch(prf) if r.metric == "cpu_inclusive"]
    by_quarter: dict[int, list[float]] = {0: [], 1: [], 2: [], 3: []}
    for r in results:
        for rid in r.resource_ids:
            res = store.resource_by_id(rid)
            if res is not None and res.type_name == "time/interval":
                start = float(store.attribute_value(res.id, "start time"))
                end_attr = store.attribute_value(res.id, "end time")
                span = 400 * 0.2
                q = min(3, int(start / (span / 4)))
                by_quarter[q].append(r.value)
    print(f"cpu_inclusive over the run ({execution}):")
    for q in range(4):
        vals = by_quarter[q]
        mean = sum(vals) / len(vals) if vals else float("nan")
        print(f"  quarter {q + 1}: {len(vals):>5} bins, mean {mean:.4f}")


if __name__ == "__main__":
    main()
