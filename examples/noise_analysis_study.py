#!/usr/bin/env python
"""Case study 2: the noise-analysis study (paper Section 4.2).

SMG2000 on UV (benchmark output + mpiP + PMAPI) and BG/L (benchmark
output only).  Prints the two Table-1 rows, then demonstrates the
cross-tool payoff: one query joins mpiP timings with PMAPI counters for
the same execution, something no single tool's files could answer.

Run:  python examples/noise_analysis_study.py
"""

from repro.core import ByName, Expansion, PrFilter
from repro.core.query import QueryEngine
from repro.core.reports import execution_report
from repro.studies import run_noise_study


def main() -> None:
    uv, bgl = run_noise_study(
        uv_executions=4,
        bgl_executions=6,
        uv_processes=(8, 16, 32, 64),
        mpip_callsites=25,
    )
    store = uv.store
    print("Table 1 rows (reproduced):")
    print("  " + uv.table1.render())
    print("  " + bgl.table1.render())
    print()

    execution = uv.executions[0]
    print(execution_report(store, execution))
    print()

    # Cross-tool navigation: per-process MPI time (mpiP) next to
    # per-process cycle counts (PMAPI) from the same run.
    engine = QueryEngine(store)
    prf = PrFilter([ByName(f"/{execution}", Expansion.DESCENDANTS)])
    results = engine.fetch(prf)
    per_process: dict[str, dict[str, float]] = {}
    for r in results:
        if r.metric not in ("MPI time", "PM_CYC"):
            continue
        for rid in r.resource_ids:
            res = store.resource_by_id(rid)
            if res is not None and res.type_name == "execution/process":
                per_process.setdefault(res.base, {})[r.metric] = r.value
    print(f"{'rank':<6}{'MPI time (s, mpiP)':>20}{'cycles (PMAPI)':>20}")
    for rank in sorted(per_process, key=lambda s: int(s[1:])):
        row = per_process[rank]
        print(
            f"{rank:<6}{row.get('MPI time', float('nan')):>20.4g}"
            f"{row.get('PM_CYC', float('nan')):>20.4g}"
        )


if __name__ == "__main__":
    main()
