#!/usr/bin/env python
"""Quickstart: create a PerfTrack store, load PTdf, and query it.

Walks the core loop of the paper: define resources and performance
results in PTdf (Figure 6), load them into the DBMS-backed store
(Figure 1 schema), then find results with a pr-filter (Section 2.2) and
inspect free resources — exactly what the GUI of Figures 3-4 does.

Run:  python examples/quickstart.py
"""

from repro import ByName, Expansion, PTDataStore, PrFilter, QueryEngine
from repro.core.reports import store_summary

PTDF = """\
# A miniature performance study: one app, one machine, two runs.
Application Linpack
Execution lin-2p Linpack
Execution lin-4p Linpack

# Machine description (grid hierarchy).
Resource /SingleMachineFrost/Frost/batch/frost121/p0 grid/machine/partition/node/processor
Resource /SingleMachineFrost/Frost/batch/frost121/p1 grid/machine/partition/node/processor
ResourceAttribute /SingleMachineFrost/Frost/batch/frost121/p0 vendor IBM
ResourceAttribute /SingleMachineFrost/Frost/batch/frost121/p0 "processor type" Power3
ResourceAttribute /SingleMachineFrost/Frost/batch/frost121/p0 "clock MHz" 375

# Code resources (build hierarchy).
Resource /Linpack/src/dgefa build/module/function
Resource /Linpack/src/dgesl build/module/function

# Executions and processes.
Resource /lin-2p execution lin-2p
Resource /lin-2p/rank0 execution/process lin-2p
Resource /lin-2p/rank1 execution/process lin-2p
Resource /lin-4p execution lin-4p

# Performance results: (metric, value, units) within a context.
PerfResult lin-2p /lin-2p/rank0,/Linpack/src/dgefa(primary) papi "FP ops" 1.2e9 count
PerfResult lin-2p /lin-2p/rank1,/Linpack/src/dgefa(primary) papi "FP ops" 1.3e9 count
PerfResult lin-2p /lin-2p/rank0,/Linpack/src/dgesl(primary) papi "FP ops" 2.0e8 count
PerfResult lin-2p /lin-2p(primary) timer "Wall time" 84.2 seconds
PerfResult lin-4p /lin-4p(primary) timer "Wall time" 47.9 seconds
"""


def main() -> None:
    # 1. An in-memory store on the minidb backend; pass
    #    backend_kind="sqlite" for the other DBMS, as the paper supported
    #    both Oracle and PostgreSQL.
    store = PTDataStore()
    stats = store.load_string(PTDF)
    print(f"loaded: {stats}\n")

    # 2. Query: all results for function dgefa (a pr-filter with one
    #    resource family).
    engine = QueryEngine(store)
    prf = PrFilter([ByName("/Linpack/src/dgefa", Expansion.NONE)])
    for result in engine.fetch(prf):
        print(f"  {result.execution}  {result.metric} = {result.value:g} {result.units}")

    # 3. Conjunction: results for dgefa *and* execution lin-2p's rank0.
    prf.add(ByName("/lin-2p/rank0", Expansion.NONE))
    print(f"\nwith rank0 too -> {len(engine.fetch(prf))} result(s)")

    # 4. Free resources: what could become table columns (Figure 4's
    #    two-step Add Columns flow).
    results = engine.fetch(PrFilter([ByName("/lin-2p", Expansion.DESCENDANTS)]))
    print("\nfree resources of the lin-2p results:")
    for type_name, names in sorted(engine.free_resources(results).items()):
        print(f"  {type_name}: {', '.join(names)}")

    print()
    print(store_summary(store))


if __name__ == "__main__":
    main()
