#!/usr/bin/env python
"""Performance predictions in the data store (paper Section 6).

"We plan to explore the incorporation of performance predictions and
models into PerfTrack for direct comparison to actual program runs."

This example fits an Amdahl+communication scaling model to a measured IRS
sweep, validates it leave-one-out, stores the model's extrapolations as
first-class performance results, and compares them to a "new" run —
entirely through PerfTrack queries.

Run:  python examples/model_prediction.py
"""

from repro.core.predictions import (
    compare_predictions,
    cross_validate,
    fit_model_to_history,
    store_predictions,
)
from repro.gui.barchart import BarChart, Series
from repro.gui.svg import barchart_to_svg, save_svg
from repro.studies import run_purple_study

TRAIN_COUNTS = (2, 4, 8, 16, 32)
HOLDOUT = 64


def main() -> None:
    report = run_purple_study(
        process_counts=TRAIN_COUNTS + (HOLDOUT,), runs_per_count=1
    )
    store = report.store
    mcr = [e for e in report.executions if "mcr" in e]
    train = [e for e in mcr if f"p{HOLDOUT:04d}" not in e]
    held_out = [e for e in mcr if f"p{HOLDOUT:04d}" in e][0]

    # 1. Fit the scaling model to the measured history.
    model, points = fit_model_to_history(store, train, "Wall time")
    print("fitted model:", model.describe())
    print()

    # 2. Leave-one-out validation over the training sweep.
    print(f"{'execution':<22}{'nproc':>6}{'actual':>10}{'predicted':>11}{'rel err':>9}")
    for row in cross_validate(store, train, "Wall time"):
        print(
            f"{row.execution:<22}{row.processes:>6}{row.actual:>10.2f}"
            f"{row.predicted:>11.2f}{row.relative_error:>9.1%}"
        )
    print()

    # 3. Extrapolate to the held-out scale and store the prediction as
    #    PerfTrack data.
    created = store_predictions(store, model, "IRS", "Wall time", (HOLDOUT, 128, 256))
    print(f"stored prediction executions: {', '.join(created)}")

    # 4. Direct comparison to the actual run at the held-out scale.
    rows = compare_predictions(store, model, [held_out], "Wall time")
    row = rows[0]
    print(
        f"\nheld-out p={HOLDOUT}: actual {row.actual:.2f}s, "
        f"predicted {row.predicted:.2f}s ({row.relative_error:.1%} off)"
    )

    # 5. Chart actual vs predicted across the sweep (SVG artifact).
    chart = BarChart("IRS wall time: measured vs model", "seconds")
    actual = Series("measured")
    predicted = Series("model")
    for pt in points + [
        type(points[0])(held_out, HOLDOUT, row.actual)
    ]:
        actual.add(str(pt.processes), pt.value)
        predicted.add(str(pt.processes), model.predict(pt.processes))
    chart.add_series(actual)
    chart.add_series(predicted)
    save_svg(barchart_to_svg(chart), "prediction_vs_actual.svg")
    print("\nwrote prediction_vs_actual.svg")
    print(chart.to_csv())


if __name__ == "__main__":
    main()
