#!/usr/bin/env python
"""Case study 1: the ASC Purple benchmark study (paper Section 4.1).

Builds IRS with PTbuild, generates a process-count sweep on MCR (Linux)
and Frost (AIX), converts everything with PTdfGen, loads it, prints the
Table-1 row, and finishes with the Figure-5 bar chart: min/max running
time of one function across processors at each process count — "a rough
indication of load balance".

Run:  python examples/purple_benchmark_study.py
"""

from repro.core import ByName, Expansion, PrFilter
from repro.core.query import QueryEngine
from repro.gui.barchart import min_max_chart
from repro.studies import run_purple_study

PROCESS_COUNTS = (2, 4, 8, 16, 32, 64)
FUNCTION = "/IRS/src/matsolve"


def main() -> None:
    report = run_purple_study(process_counts=PROCESS_COUNTS, runs_per_count=1)
    store = report.store
    print("Table 1 row (reproduced):")
    print("  " + report.table1.render())
    print()

    # The Figure-5 chart: for each MCR execution of the sweep, distill the
    # per-process spread of one function's CPU time.
    engine = QueryEngine(store)
    categories, minima, maxima = [], [], []
    for p in PROCESS_COUNTS:
        execution = f"irs-mcr-p{p:04d}-r0"
        prf = PrFilter(
            [
                ByName(f"/{execution}", Expansion.DESCENDANTS),
                ByName(FUNCTION, Expansion.NONE),
            ]
        )
        values = [
            r.value
            for r in engine.fetch(prf)
            if r.metric in ("CPU time (min)", "CPU time (max)") and r.value is not None
        ]
        by_metric = {
            r.metric: r.value
            for r in engine.fetch(prf)
            if r.metric in ("CPU time (min)", "CPU time (max)")
        }
        if "CPU time (min)" in by_metric and "CPU time (max)" in by_metric:
            categories.append(str(p))
            minima.append(by_metric["CPU time (min)"])
            maxima.append(by_metric["CPU time (max)"])

    chart = min_max_chart(
        f"{FUNCTION} running time across processors (MCR)",
        categories,
        minima,
        maxima,
        value_label="seconds",
    )
    print(chart.render_ascii(width=46))
    print("CSV for spreadsheet import (the paper's OpenOffice step):")
    print(chart.to_csv())


if __name__ == "__main__":
    main()
