#!/usr/bin/env python
"""Comparison-based diagnosis across executions (paper Sections 5-6).

The paper's Section 6 lists "comparison operators to automate the
comparison of different executions" as in-progress work; this example
exercises our implementation of that layer on a Purple-style sweep:

* align two executions and report regressions/improvements,
* scan a whole execution history for metric regressions,
* rank bottleneck functions, and
* run a scaling study (speedup/efficiency) off execution attributes.

Run:  python examples/comparison_diagnosis.py
"""

from repro.core.comparison import compare_executions
from repro.core.diagnosis import (
    load_balance,
    rank_bottlenecks,
    scaling_study,
    scan_history,
)
from repro.studies import run_purple_study

PROCESS_COUNTS = (2, 4, 8, 16, 32)


def main() -> None:
    report = run_purple_study(process_counts=PROCESS_COUNTS, runs_per_count=1)
    store = report.store
    mcr_execs = [e for e in report.executions if "mcr" in e]
    frost_execs = [e for e in report.executions if "frost" in e]

    # 1. Cross-platform comparison at the same process count — the
    #    Linux-vs-AIX question of case study 1.
    left, right = mcr_execs[2], frost_execs[2]
    cmp = compare_executions(store, left, right, metric="CPU time (aggregate)")
    print(f"align {left} vs {right}: {len(cmp.common)} common contexts, "
          f"{len(cmp.only_left)} only-left, {len(cmp.only_right)} only-right")
    worst = sorted(
        cmp.common, key=lambda p: (p.ratio or 0), reverse=True
    )[:5]
    print("largest MCR->Frost ratios:")
    for pair in worst:
        code = next((s for s in pair.signature if s.startswith("/IRS")), "?")
        print(f"  {code:<34} {pair.left:>10.3f} -> {pair.right:>10.3f} "
              f"(x{pair.ratio:.2f})")
    print()

    # 2. History scan over the MCR sweep (as if each run were a new code
    #    version) — Karavanic & Miller's historical-data diagnosis.
    regs = scan_history(store, mcr_execs, metric="Wall time", threshold=1.05)
    print(f"history scan over {len(mcr_execs)} MCR runs: "
          f"{len(regs)} regression(s) at threshold 1.05x")
    print()

    # 3. Bottleneck ranking for the largest run.
    ranked = rank_bottlenecks(
        store, mcr_execs[-1], "CPU time (aggregate)", top=5
    )
    print(f"top functions by CPU time in {mcr_execs[-1]}:")
    for b in ranked:
        print(f"  {b.label:<34} {b.value:>12.2f}s  ({b.share:6.1%})")
    print()

    # 4. Scaling across the sweep, plus per-function load balance: IRS
    #    reports per-function max and avg across processes, so max/avg of
    #    one function is the Figure-5 imbalance indicator.
    print(f"{'nproc':>6} {'wall(s)':>10} {'speedup':>8} {'eff':>6} {'max/avg':>8}")
    points = scaling_study(store, mcr_execs, "Wall time")
    base = points[0]
    for pt in points:
        mx = load_balance(store, pt.execution, "CPU time (max)",
                          function="/IRS/src/matsolve").stats.mean
        avg = load_balance(store, pt.execution, "CPU time (avg)",
                           function="/IRS/src/matsolve").stats.mean
        print(
            f"{pt.processes:>6} {pt.value:>10.2f} {pt.speedup(base):>8.2f} "
            f"{pt.efficiency(base):>6.2f} {mx / avg:>8.3f}"
        )


if __name__ == "__main__":
    main()
