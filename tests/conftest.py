"""Shared fixtures: backends, loaded stores, synthetic study directories."""

from __future__ import annotations

import pytest

from repro.core import PTDataStore
from repro.dbapi import open_backend
from repro.minidb import verifier as _verifier
from repro.ptdf.format import ResourceSet

# Static plan verification runs for the entire suite: every minidb plan
# any test produces must satisfy the PLN contract (repro.minidb.verifier),
# so the differential corpus doubles as the verifier's property corpus.
# Off by default outside tests/CI — benchmarks measure the unverified path.
_verifier.VERIFY_PLANS = True


@pytest.fixture(params=["minidb", "sqlite"])
def backend_kind(request) -> str:
    """Run a test against both database backends (the paper's dual-DBMS)."""
    return request.param


@pytest.fixture
def backend(backend_kind):
    b = open_backend(backend_kind)
    yield b
    b.close()


@pytest.fixture
def store(backend_kind) -> PTDataStore:
    """An initialised, empty data store on the parametrized backend."""
    ds = PTDataStore(backend_kind=backend_kind)
    yield ds
    ds.close()


@pytest.fixture
def minidb_store() -> PTDataStore:
    """A minidb-only store for tests that inspect engine internals."""
    ds = PTDataStore(backend_kind="minidb")
    yield ds
    ds.close()


def load_tiny_study(ds: PTDataStore) -> None:
    """A small two-execution data set used by many query tests.

    Machine: /LLNL/Frost/batch with 2 nodes x 2 processors.
    Application IRS with executions irs-a (2 procs) and irs-b (4 procs);
    function times for funcA/funcB per processor.
    """
    ds.add_application("IRS")
    for mname in ("Frost",):
        ds.add_resource("/LLNL", "grid")
        ds.add_resource(f"/LLNL/{mname}", "grid/machine")
        ds.add_resource(f"/LLNL/{mname}/batch", "grid/machine/partition")
        for n in range(2):
            node = f"/LLNL/{mname}/batch/n{n}"
            ds.add_resource(node, "grid/machine/partition/node")
            for p in range(2):
                proc = f"{node}/p{p}"
                ds.add_resource(proc, "grid/machine/partition/node/processor")
                ds.add_resource_attribute(proc, "clock MHz", "375")
                ds.add_resource_attribute(proc, "vendor", "IBM")
    ds.add_resource("/IRS", "build")
    ds.add_resource("/IRS/src", "build/module")
    for fn in ("funcA", "funcB"):
        ds.add_resource(f"/IRS/src/{fn}", "build/module/function")
    for exec_name, nproc in (("irs-a", 2), ("irs-b", 4)):
        ds.add_execution(exec_name, "IRS")
        ds.add_resource(f"/{exec_name}", "execution", exec_name)
        procs = []
        for i in range(nproc):
            pr = f"/{exec_name}/proc{i}"
            ds.add_resource(pr, "execution/process", exec_name)
            procs.append(pr)
        for fi, fn in enumerate(("funcA", "funcB")):
            for i, pr in enumerate(procs):
                cpu = f"/LLNL/Frost/batch/n{i % 2}/p{i // 2 % 2}"
                value = (fi + 1) * 10.0 + i + (0.5 if exec_name == "irs-b" else 0.0)
                ds.add_perf_result(
                    exec_name,
                    ResourceSet((f"/{exec_name}", pr, f"/IRS/src/{fn}", cpu)),
                    "testtool",
                    "CPU time",
                    value,
                    "seconds",
                )
    ds.commit()


@pytest.fixture
def tiny_store(store) -> PTDataStore:
    load_tiny_study(store)
    return store
