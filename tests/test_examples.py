"""Example-script health: all compile; the quickstart runs end to end."""

import os
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


class TestExamples:
    def test_at_least_the_promised_scripts_exist(self):
        assert {
            "quickstart.py",
            "purple_benchmark_study.py",
            "noise_analysis_study.py",
            "paradyn_integration.py",
            "comparison_diagnosis.py",
            "model_prediction.py",
        } <= set(EXAMPLES)

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_compiles(self, name):
        py_compile.compile(os.path.join(EXAMPLES_DIR, name), doraise=True)

    def test_quickstart_runs(self):
        proc = subprocess.run(
            [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "PerfTrack data store summary" in proc.stdout
        assert "FP ops" in proc.stdout
