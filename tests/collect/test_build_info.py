"""PTbuild tests: make-output parsing, MPI wrapper unwrapping, PTdf emission."""

import pytest

from repro.collect.build_info import (
    PTBuild,
    build_to_ptdf,
    capture_build_environment,
    parse_command_line,
    parse_make_output,
    unwrap_mpi_wrapper,
)
from repro.ptdf.writer import PTdfWriter

MAKE_OUTPUT = """\
make[1]: Entering directory `/src/irs'
gcc -c -O2 -g -DNDEBUG irs.c -o irs.o
mpicc -c -O3 -qhot solver.c -o solver.o
echo building...
gcc -o irs irs.o solver.o -lm -lhypre libfoo.a
make[1]: Leaving directory `/src/irs'
"""


class TestParseCommandLine:
    def test_compiler_recognised(self):
        inv = parse_command_line("gcc -c -O2 foo.c -o foo.o")
        assert inv is not None
        assert inv.compiler == "gcc"
        assert inv.flags == ["-c", "-O2"]
        assert inv.sources == ["foo.c"]
        assert inv.output == "foo.o"

    def test_non_compiler_ignored(self):
        assert parse_command_line("echo hello") is None
        assert parse_command_line("rm -f *.o") is None

    def test_libraries_extracted(self):
        inv = parse_command_line("cc main.o -o app -lm -lmpi libx.a")
        assert inv.libraries == ["-lm", "-lmpi", "libx.a"]

    def test_path_qualified_compiler(self):
        inv = parse_command_line("/usr/bin/gcc -O1 a.c")
        assert inv is not None and inv.compiler == "/usr/bin/gcc"

    def test_malformed_quoting_skipped(self):
        assert parse_command_line('gcc "unclosed') is None


class TestParseMakeOutput:
    def test_extracts_all_invocations(self):
        invs = parse_make_output(MAKE_OUTPUT)
        assert len(invs) == 3
        assert [i.compiler for i in invs] == ["gcc", "mpicc", "gcc"]

    def test_make_chatter_ignored(self):
        invs = parse_make_output("make: Nothing to be done for 'all'.\n")
        assert invs == []


class TestWrapperUnwrapping:
    def test_unwrap_with_supplied_show(self):
        inv = parse_command_line("mpicc -c -O3 x.c")
        unwrap_mpi_wrapper(inv, show_output="xlc -I/usr/include -lmpi_r")
        assert inv.wrapped_compiler == "xlc"
        assert inv.wrapper_libraries == ["-lmpi_r"]

    def test_non_wrapper_untouched(self):
        inv = parse_command_line("gcc -c x.c")
        unwrap_mpi_wrapper(inv, show_output="should not matter")
        assert inv.wrapped_compiler is None

    def test_empty_show_output(self):
        inv = parse_command_line("mpicc -c x.c")
        unwrap_mpi_wrapper(inv, show_output="")
        assert inv.wrapped_compiler is None


class TestBuildInfo:
    def test_from_output_aggregates(self):
        info = PTBuild(env={"CC": "gcc", "PATH": "/usr/bin"}).from_output(
            MAKE_OUTPUT,
            makefile="Makefile",
            arguments=("-j2",),
            wrapper_show={"mpicc": "xlc -lmpi_r"},
        )
        assert info.compilers == ["gcc", "mpicc"]
        assert "-O2" in info.all_flags and "-O3" in info.all_flags
        assert "libfoo.a" in info.static_libraries
        assert info.makefile == "Makefile"
        assert info.invocations[1].wrapped_compiler == "xlc"

    def test_capture_environment_fields(self):
        info = capture_build_environment(env={"HOME": "/root"})
        assert info.os_name
        assert info.node
        assert info.environment == {"HOME": "/root"}
        assert info.timestamp


class TestBuildToPtdf:
    def test_resources_and_attributes(self, store):
        info = PTBuild(env={"CC": "gcc"}).from_output(
            MAKE_OUTPUT, makefile="Makefile", wrapper_show={"mpicc": "xlc -lmpi_r"}
        )
        w = PTdfWriter()
        res = build_to_ptdf(info, w, "irs-build-1")
        assert res == "/irs-build-1"
        store.load_records(w.records)
        rid = store.resource_id("/irs-build-1")
        attrs = {a.name for a in store.attributes_of(rid)}
        assert "compilation flags" in attrs
        assert "static libraries" in attrs
        assert "wrapped compiler (mpicc)" in attrs
        # compiler is a resource-valued attribute -> constraint
        constrained = {c.name for c in store.constraints_of(rid)}
        assert "/gcc" in constrained and "/mpicc" in constrained

    def test_os_resource_created(self, store):
        info = capture_build_environment()
        w = PTdfWriter()
        build_to_ptdf(info, w, "b1")
        store.load_records(w.records)
        os_resources = store.resources_of_type("operatingSystem")
        assert len(os_resources) == 1
