"""PTrun and machine-description tests."""

import os

import pytest

from repro.collect.machine import MachineDescription, Partition, ProcessorSpec, machine_to_ptdf
from repro.collect.run_info import LibraryInfo, RunInfo, capture_run_environment, run_to_ptdf
from repro.ptdf.writer import PTdfWriter
from repro.synth.machines import BGL, FROST, MCR, UV, all_machines


class TestCaptureRunEnvironment:
    def test_basic_fields(self):
        info = capture_run_environment("e1", num_processes=8, env={"X": "1"})
        assert info.execution == "e1"
        assert info.num_processes == 8
        assert info.environment == {"X": "1"}

    def test_library_capture(self, tmp_path):
        lib = tmp_path / "libmpi.so.2.1"
        lib.write_bytes(b"\x7fELF fake")
        info = capture_run_environment("e1", library_paths=[str(lib)])
        assert len(info.libraries) == 1
        li = info.libraries[0]
        assert li.name == "libmpi.so.2.1"
        assert li.version == "2.1"
        assert li.size == 9
        assert li.kind == "MPI"

    def test_thread_library_kind(self, tmp_path):
        lib = tmp_path / "libpthread.so.0"
        lib.write_bytes(b"x")
        info = capture_run_environment("e1", library_paths=[str(lib)])
        assert info.libraries[0].kind == "thread"

    def test_missing_library_tolerated(self):
        info = capture_run_environment("e1", library_paths=["/no/such/lib.so.1"])
        assert info.libraries[0].size == 0


class TestRunToPtdf:
    def _info(self):
        return RunInfo(
            execution="e1",
            machine="ppc64",
            node="uv001",
            num_processes=16,
            num_threads=2,
            environment={"OMP_NUM_THREADS": "2"},
            libraries=[LibraryInfo("libmpi_r.so.1", "1.0", 100, "MPI", "ts")],
            input_deck="deck.in",
            input_deck_timestamp="2005-01-01",
            submission="psub-1",
            timestamp="2005-01-02",
        )

    def test_resources_created(self, store):
        store.add_application("app")
        store.add_execution("e1", "app")
        w = PTdfWriter()
        run_to_ptdf(self._info(), w)
        store.load_records(w.records)
        assert store.has_resource("/e1-env")
        assert store.has_resource("/e1-env/libmpi_r.so.1")
        assert store.has_resource("/deck.in")
        assert store.has_resource("/psub-1")

    def test_execution_attributes(self, store):
        store.add_application("app")
        store.add_execution("e1", "app")
        w = PTdfWriter()
        run_to_ptdf(self._info(), w)
        store.load_records(w.records)
        rid = store.resource_id("/e1")
        attrs = {a.name: a.value for a in store.attributes_of(rid)}
        assert attrs["number of processes"] == "16"
        assert attrs["number of threads"] == "2"
        constrained = {c.name for c in store.constraints_of(rid)}
        assert "/deck.in" in constrained and "/psub-1" in constrained

    def test_library_attributes(self, store):
        store.add_application("app")
        store.add_execution("e1", "app")
        w = PTdfWriter()
        run_to_ptdf(self._info(), w)
        store.load_records(w.records)
        rid = store.resource_id("/e1-env/libmpi_r.so.1")
        attrs = {a.name: a.value for a in store.attributes_of(rid)}
        assert attrs == {"version": "1.0", "size": "100", "type": "MPI", "timestamp": "ts"}


class TestMachineDescriptions:
    def test_paper_machines_shapes(self):
        assert UV.total_nodes == 128
        assert UV.partitions[0].processors_per_node == 8
        assert UV.partitions[0].processor.clock_mhz == 1500
        assert BGL.partitions[0].nodes == 16384
        assert BGL.partitions[0].processor.processor_type == "PowerPC440"
        assert MCR.operating_system.startswith("CHAOS")
        assert FROST.partitions[0].processor.clock_mhz == 375

    def test_all_machines(self):
        assert {m.name for m in all_machines()} == {"MCR", "Frost", "UV", "BGL"}

    def test_naming_helpers(self):
        p = UV.partitions[0]
        assert UV.node_name(p, 3) == "/LLNL/UV/batch/uv3"
        assert UV.processor_name(p, 3, 7) == "/LLNL/UV/batch/uv3/p7"


class TestMachineToPtdf:
    def test_full_emission_counts(self, store):
        m = MachineDescription(
            grid="G",
            name="M",
            operating_system="TestOS",
            partitions=[
                Partition("batch", 2, 2, ProcessorSpec("V", "T", 1000)),
            ],
        )
        w = PTdfWriter()
        count = machine_to_ptdf(m, w)
        store.load_records(w.records)
        # grid + machine + partition + 2 nodes + 4 processors
        assert count == 9
        assert len(store.resources_of_type("grid/machine/partition/node/processor")) == 4

    def test_truncation_keeps_true_attributes(self, store):
        w = PTdfWriter()
        machine_to_ptdf(BGL, w, max_nodes_per_partition=4)
        store.load_records(w.records)
        nodes = store.resources_of_type("grid/machine/partition/node")
        assert len(nodes) == 4
        mid = store.resource_id("/LLNL/BGL")
        attrs = {a.name: a.value for a in store.attributes_of(mid)}
        assert attrs["total nodes"] == "16384"
        assert attrs["total processors"] == "32768"

    def test_processor_attributes(self, store):
        w = PTdfWriter()
        machine_to_ptdf(FROST, w, max_nodes_per_partition=1)
        store.load_records(w.records)
        pid = store.resource_id("/LLNL/Frost/batch/frost0/p0")
        attrs = {a.name: a.value for a in store.attributes_of(pid)}
        assert attrs == {
            "vendor": "IBM",
            "processor type": "Power3",
            "clock MHz": "375",
        }
