"""Workload-model tests: determinism, scaling shape, imbalance growth."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.synth.workload import (
    IRS_FUNCTIONS,
    MPI_FUNCTIONS,
    WorkloadModel,
    exec_rng,
    stable_seed,
)


class TestDeterminism:
    def test_stable_seed_is_stable(self):
        assert stable_seed("a", "b") == stable_seed("a", "b")

    def test_stable_seed_distinguishes_parts(self):
        assert stable_seed("ab") != stable_seed("a", "b")

    def test_rng_reproducible(self):
        a = exec_rng("irs", "run1").random(5)
        b = exec_rng("irs", "run1").random(5)
        assert np.array_equal(a, b)

    def test_rng_differs_per_execution(self):
        a = exec_rng("irs", "run1").random(5)
        b = exec_rng("irs", "run2").random(5)
        assert not np.array_equal(a, b)


class TestScalingLaw:
    def test_time_decreases_then_flattens(self):
        m = WorkloadModel()
        times = [m.total_time(p) for p in (1, 2, 4, 8, 16, 64, 256)]
        assert all(a > b for a, b in zip(times, times[1:]))
        # Speedup efficiency decays: t(1)/t(256) far below 256.
        assert times[0] / times[-1] < 256 * 0.6

    def test_serial_floor(self):
        m = WorkloadModel(serial_seconds=5.0, parallel_seconds=10.0, comm_seconds=0.0)
        assert m.total_time(10**6) == pytest.approx(5.0, abs=0.1)

    @given(p=st.integers(1, 4096))
    @settings(max_examples=50, deadline=None)
    def test_time_positive(self, p):
        assert WorkloadModel().total_time(p) > 0


class TestFunctionShares:
    def test_shares_sum_to_one(self):
        m = WorkloadModel()
        shares = m.function_shares(exec_rng("x"), 80)
        assert shares.sum() == pytest.approx(1.0)
        assert len(shares) == 80

    def test_shares_sorted_descending(self):
        shares = WorkloadModel().function_shares(exec_rng("x"), 50)
        assert all(a >= b for a, b in zip(shares, shares[1:]))

    def test_skewed_distribution(self):
        # A few hot functions dominate, like real profiles.
        shares = WorkloadModel().function_shares(exec_rng("x"), 80)
        assert shares[:8].sum() > 0.4


class TestPerProcessValues:
    def test_length_and_positivity(self):
        m = WorkloadModel()
        v = m.per_process_values(exec_rng("x"), 10.0, 64)
        assert len(v) == 64
        assert (v > 0).all()

    def test_spread_grows_with_process_count(self):
        m = WorkloadModel(imbalance=0.1, noise_sigma=0.01)
        spreads = []
        for p in (4, 64, 1024):
            v = m.per_process_values(exec_rng("spread"), 10.0, p)
            spreads.append(float(v.max() - v.min()))
        assert spreads[0] < spreads[-1]

    def test_mean_close_to_target(self):
        m = WorkloadModel(imbalance=0.02, noise_sigma=0.01)
        v = m.per_process_values(exec_rng("m"), 100.0, 512)
        assert abs(v.mean() - 100.0) / 100.0 < 0.2


class TestMpiFraction:
    def test_grows_with_scale(self):
        m = WorkloadModel()
        assert m.mpi_fraction(2) < m.mpi_fraction(64) < m.mpi_fraction(4096)

    def test_bounded(self):
        assert WorkloadModel().mpi_fraction(10**9) <= 0.6


class TestFunctionTables:
    def test_irs_function_count_near_80(self):
        assert len(IRS_FUNCTIONS) == 80

    def test_mpi_functions_prefixed(self):
        assert all(f.startswith("MPI_") for f in MPI_FUNCTIONS)
