"""Generator tests: file shapes, determinism, paper-scale knobs."""

import os

import pytest

from repro.synth.irs_gen import IRS_METRICS, IRSRunSpec, generate_irs_run, irs_sweep_specs
from repro.synth.machines import MCR, UV
from repro.synth.mpip_gen import MpiPSpec, generate_mpip_report
from repro.synth.paradyn_gen import PARADYN_METRICS, ParadynSpec, generate_paradyn_export
from repro.synth.pmapi_gen import PMAPI_COUNTERS, generate_pmapi_file, render_pmapi_block
from repro.synth.smg_gen import SMGRunSpec, _grid_decomposition, generate_smg_run


class TestIRSGenerator:
    def test_six_files(self, tmp_path):
        spec = IRSRunSpec("irs-x", MCR, 8)
        files = generate_irs_run(spec, str(tmp_path))
        assert len(files) == 6
        assert all(os.path.exists(f) for f in files)

    def test_deterministic(self, tmp_path):
        spec = IRSRunSpec("irs-x", MCR, 8)
        f1 = generate_irs_run(spec, str(tmp_path / "a"))
        f2 = generate_irs_run(spec, str(tmp_path / "b"))
        for a, b in zip(f1, f2):
            assert open(a).read() == open(b).read()

    def test_metric_files_have_all_functions(self, tmp_path):
        spec = IRSRunSpec("irs-x", MCR, 4)
        files = generate_irs_run(spec, str(tmp_path), drop_rate=0.0)
        timing = [f for f in files if ".timing." in f][0]
        lines = open(timing).read().splitlines()
        body = [
            l
            for l in lines
            if l
            and not l.startswith(
                ("IRS", "metric", "machine", "processes", "-", "function")
            )
        ]
        assert len(body) == 80

    def test_drop_rate_produces_dashes(self, tmp_path):
        spec = IRSRunSpec("irs-x", MCR, 4)
        files = generate_irs_run(spec, str(tmp_path), drop_rate=0.5)
        text = "".join(open(f).read() for f in files if ".timing." in f)
        assert " -" in text

    def test_sweep_specs(self):
        specs = irs_sweep_specs(MCR, (2, 4), runs_per_count=2)
        assert len(specs) == 4
        assert {s.processes for s in specs} == {2, 4}
        assert len({s.execution for s in specs}) == 4


class TestSMGGenerator:
    def test_grid_decomposition_factors(self):
        for p in (1, 2, 4, 8, 16, 27, 64):
            px, py, pz = _grid_decomposition(p)
            assert px * py * pz == p

    def test_output_contains_eight_values(self, tmp_path):
        path = generate_smg_run(SMGRunSpec("smg-x", UV, 8), str(tmp_path))
        text = open(path).read()
        assert text.count("wall clock time") == 3
        assert text.count("cpu clock time") == 3
        assert "Iterations =" in text
        assert "Final Relative Residual Norm" in text

    def test_pmapi_block_appended(self, tmp_path):
        path = generate_smg_run(SMGRunSpec("smg-x", UV, 4, with_pmapi=True), str(tmp_path))
        assert "PMAPI hardware counter report" in open(path).read()

    def test_no_pmapi_by_default(self, tmp_path):
        path = generate_smg_run(SMGRunSpec("smg-x", UV, 4), str(tmp_path))
        assert "PMAPI" not in open(path).read()

    def test_deterministic(self, tmp_path):
        s = SMGRunSpec("smg-d", UV, 8)
        a = open(generate_smg_run(s, str(tmp_path / "a"))).read()
        b = open(generate_smg_run(s, str(tmp_path / "b"))).read()
        assert a == b


class TestPMAPIGenerator:
    def test_block_shape(self):
        block = render_pmapi_block("e1", 4)
        lines = block.strip().splitlines()
        assert lines[0] == "PMAPI hardware counter report"
        assert len([l for l in lines if l[0].isdigit()]) == 4

    def test_counter_columns(self):
        block = render_pmapi_block("e1", 2)
        data = [l for l in block.splitlines() if l and l[0].isdigit()]
        for row in data:
            assert len(row.split()) == 1 + len(PMAPI_COUNTERS)

    def test_standalone_file(self, tmp_path):
        path = generate_pmapi_file("e1", 3, str(tmp_path))
        assert os.path.basename(path) == "e1.pmapi.txt"

    def test_cycles_track_clock(self):
        block_slow = render_pmapi_block("e1", 2, clock_mhz=700)
        block_fast = render_pmapi_block("e1", 2, clock_mhz=1500)
        cyc_slow = int(block_slow.splitlines()[-1].split()[1])
        cyc_fast = int(block_fast.splitlines()[-1].split()[1])
        assert cyc_fast > cyc_slow


class TestMpiPGenerator:
    def test_sections_present(self, tmp_path):
        path = generate_mpip_report(MpiPSpec("e1", 4, callsites=6), str(tmp_path))
        text = open(path).read()
        assert text.startswith("@ mpiP")
        for section in ("MPI Time", "Callsites: 6", "Aggregate Time", "Callsite Time statistics"):
            assert section in text

    def test_task_rows_count(self, tmp_path):
        path = generate_mpip_report(MpiPSpec("e1", 8, callsites=4), str(tmp_path))
        in_task = False
        count = 0
        for line in open(path):
            if line.startswith("@--- MPI Time"):
                in_task = True
                continue
            if in_task and line.startswith("@"):
                break
            if in_task and line.strip() and not line.lstrip().startswith("Task"):
                count += 1
        assert count == 9  # 8 ranks + '*'

    def test_stat_rows_per_site(self, tmp_path):
        p, sites = 4, 3
        path = generate_mpip_report(MpiPSpec("e1", p, callsites=sites), str(tmp_path))
        stat_rows = [
            l for l in open(path) if l[:1].isalpha() and l.split()[0] != "Name"
            and len(l.split()) == 9
        ]
        assert len(stat_rows) == sites * (p + 1)


class TestParadynGenerator:
    def test_export_files(self, tmp_path):
        spec = ParadynSpec("e1", processes=2, modules=4, functions_per_module=3,
                           histograms=5, bins=20)
        exp = generate_paradyn_export(spec, str(tmp_path))
        assert os.path.exists(exp.resources_path)
        assert os.path.exists(exp.index_path)
        assert len(exp.histogram_paths) == 5
        assert exp.shg_path and os.path.exists(exp.shg_path)

    def test_resource_counts(self, tmp_path):
        spec = ParadynSpec("e1", processes=2, modules=4, functions_per_module=3,
                           histograms=2, bins=10, sync_objects=4)
        exp = generate_paradyn_export(spec, str(tmp_path))
        lines = [l for l in open(exp.resources_path) if l.strip() and not l.startswith("#")]
        code = [l for l in lines if l.startswith("/Code")]
        # /Code + 4 modules + 12 functions + DEFAULT_MODULE + builtins
        assert len(code) >= 18

    def test_histogram_header_and_nans(self, tmp_path):
        spec = ParadynSpec("e1", processes=2, modules=4, functions_per_module=3,
                           histograms=1, bins=50, nan_rate=0.5)
        exp = generate_paradyn_export(spec, str(tmp_path))
        text = open(exp.histogram_paths[0]).read()
        assert "# metric:" in text and "# numBins: 50" in text
        assert "nan" in text

    def test_metrics_cycle(self, tmp_path):
        spec = ParadynSpec("e1", processes=2, modules=4, functions_per_module=3,
                           histograms=10, bins=5)
        exp = generate_paradyn_export(spec, str(tmp_path))
        metrics = set()
        for line in open(exp.index_path):
            if line.startswith("#"):
                continue
            metrics.add(line.split()[1])
        assert metrics <= set(PARADYN_METRICS)
        assert len(metrics) == 8
