"""Tests for the benchmark regression guard (tools/bench_guard)."""

import json

from tools.bench_guard import compare, main


def _write(path, data):
    path.write_text(json.dumps(data))
    return str(path)


BASE = {"load": {"bulk_rows_per_s": 1000.0}, "query_path": {"topn_speedup": 2.0}}

LATENCY_BASE = {
    "query_path": {"stream_full_drain_seconds": 0.5},
    "vectorized": {"drain_seconds": 0.02, "first_row_seconds": 0.0003},
}


def test_within_threshold_passes():
    cand = {"load": {"bulk_rows_per_s": 950.0}}
    assert compare(BASE, cand) == []


def test_drop_beyond_threshold_fails():
    cand = {"load": {"bulk_rows_per_s": 850.0}}
    problems = compare(BASE, cand)
    assert len(problems) == 1
    assert "bulk_rows_per_s" in problems[0]


def test_improvement_passes():
    cand = {"load": {"bulk_rows_per_s": 2000.0}}
    assert compare(BASE, cand) == []


def test_missing_candidate_key_fails():
    assert compare(BASE, {"load": {}}) != []


def test_missing_baseline_key_skipped():
    # A metric new in this PR has no baseline yet: skip, don't fail.
    cand = {"load": {"bulk_rows_per_s": 1000.0}}
    assert compare({}, cand) == []


def test_latency_key_improvement_passes():
    # *_seconds keys are lower-is-better: getting faster is never a problem.
    cand = {"query_path": {"stream_full_drain_seconds": 0.05}}
    keys = ("query_path.stream_full_drain_seconds",)
    assert compare(LATENCY_BASE, cand, keys=keys) == []


def test_latency_key_regression_fails():
    cand = {"query_path": {"stream_full_drain_seconds": 0.6}}
    keys = ("query_path.stream_full_drain_seconds",)
    problems = compare(LATENCY_BASE, cand, keys=keys)
    assert len(problems) == 1
    assert "above" in problems[0]


def test_latency_key_within_threshold_passes():
    cand = {"vectorized": {"drain_seconds": 0.0215, "first_row_seconds": 0.0003}}
    keys = ("vectorized.drain_seconds", "vectorized.first_row_seconds")
    assert compare(LATENCY_BASE, cand, keys=keys) == []


def test_latency_key_missing_candidate_fails():
    keys = ("vectorized.drain_seconds",)
    assert compare(LATENCY_BASE, {"vectorized": {}}, keys=keys) != []


def test_sharded_keys_guarded_by_default():
    from tools.bench_guard import DEFAULT_KEYS

    assert "sharded.parallel_rows_per_s" in DEFAULT_KEYS
    assert "sharded.prfilter_p95_seconds" in DEFAULT_KEYS


def test_sharded_rate_floor_and_latency_ceiling():
    base = {
        "sharded": {
            "parallel_rows_per_s": 40000.0,
            "prfilter_p95_seconds": 0.0005,
        }
    }
    keys = ("sharded.parallel_rows_per_s", "sharded.prfilter_p95_seconds")
    ok = {
        "sharded": {
            "parallel_rows_per_s": 39000.0,
            "prfilter_p95_seconds": 0.00052,
        }
    }
    assert compare(base, ok, keys=keys) == []
    slow = {
        "sharded": {
            "parallel_rows_per_s": 20000.0,  # collapsed load pipeline
            "prfilter_p95_seconds": 0.002,  # scatter-gather regression
        }
    }
    problems = compare(base, slow, keys=keys)
    assert len(problems) == 2
    assert any("parallel_rows_per_s" in p and "below" in p for p in problems)
    assert any("prfilter_p95_seconds" in p and "above" in p for p in problems)


def test_custom_keys_and_threshold():
    cand = {"load": {"bulk_rows_per_s": 1000.0}, "query_path": {"topn_speedup": 1.5}}
    problems = compare(
        BASE, cand, keys=("query_path.topn_speedup",), threshold=0.05
    )
    assert len(problems) == 1


def test_main_exit_codes(tmp_path):
    base = _write(tmp_path / "base.json", BASE)
    ok = _write(tmp_path / "ok.json", {"load": {"bulk_rows_per_s": 990.0}})
    bad = _write(tmp_path / "bad.json", {"load": {"bulk_rows_per_s": 100.0}})
    assert main([base, ok]) == 0
    assert main([base, bad]) == 1
    assert main([base, bad, "--threshold", "0.95"]) == 0
    assert main([base, ok, "--key", "missing.metric"]) == 0  # no baseline -> skip


# ------------------------------------------------- missing-section handling


def test_missing_baseline_section_skips_with_message(capsys):
    # The whole section is absent from the baseline (never seeded):
    # skipped, and the note says "missing baseline section".
    cand = {"vectorized": {"drain_seconds": 0.02}}
    assert compare({}, cand, keys=("vectorized.drain_seconds",)) == []
    out = capsys.readouterr().out
    assert "missing baseline section 'vectorized'" in out


def test_missing_baseline_leaf_skips_with_leaf_message(capsys):
    # The section exists but lost one leaf: still a skip, different note.
    cand = {"vectorized": {"drain_seconds": 0.02}}
    assert compare({"vectorized": {}}, cand, keys=("vectorized.drain_seconds",)) == []
    out = capsys.readouterr().out
    assert "no baseline value" in out
    assert "missing baseline section" not in out


def test_missing_candidate_section_fails_with_message():
    # The candidate dropped a whole section: the failure names the
    # section instead of a bare KeyError-ish leaf message.
    problems = compare(LATENCY_BASE, {}, keys=("vectorized.drain_seconds",))
    assert len(problems) == 1
    assert "missing section 'vectorized'" in problems[0]


def test_missing_candidate_leaf_keeps_leaf_message():
    problems = compare(
        LATENCY_BASE, {"vectorized": {}}, keys=("vectorized.drain_seconds",)
    )
    assert problems == ["vectorized.drain_seconds: missing from candidate report"]


def test_main_missing_report_file_exits_2(tmp_path, capsys):
    base = _write(tmp_path / "base.json", BASE)
    assert main([base, str(tmp_path / "nope.json")]) == 2
    err = capsys.readouterr().err
    assert "cannot read candidate report" in err


def test_main_malformed_report_exits_2(tmp_path, capsys):
    base = _write(tmp_path / "base.json", BASE)
    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert main([base, str(broken)]) == 2
    err = capsys.readouterr().err
    assert "not valid JSON" in err


def test_main_non_object_report_exits_2(tmp_path, capsys):
    base = _write(tmp_path / "base.json", BASE)
    listy = _write(tmp_path / "list.json", [1, 2, 3])
    assert main([base, listy]) == 2
    err = capsys.readouterr().err
    assert "must be a JSON object" in err
