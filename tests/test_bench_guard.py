"""Tests for the benchmark regression guard (tools/bench_guard)."""

import json

from tools.bench_guard import compare, main


def _write(path, data):
    path.write_text(json.dumps(data))
    return str(path)


BASE = {"load": {"bulk_rows_per_s": 1000.0}, "query_path": {"topn_speedup": 2.0}}

LATENCY_BASE = {
    "query_path": {"stream_full_drain_seconds": 0.5},
    "vectorized": {"drain_seconds": 0.02, "first_row_seconds": 0.0003},
}


def test_within_threshold_passes():
    cand = {"load": {"bulk_rows_per_s": 950.0}}
    assert compare(BASE, cand) == []


def test_drop_beyond_threshold_fails():
    cand = {"load": {"bulk_rows_per_s": 850.0}}
    problems = compare(BASE, cand)
    assert len(problems) == 1
    assert "bulk_rows_per_s" in problems[0]


def test_improvement_passes():
    cand = {"load": {"bulk_rows_per_s": 2000.0}}
    assert compare(BASE, cand) == []


def test_missing_candidate_key_fails():
    assert compare(BASE, {"load": {}}) != []


def test_missing_baseline_key_skipped():
    # A metric new in this PR has no baseline yet: skip, don't fail.
    cand = {"load": {"bulk_rows_per_s": 1000.0}}
    assert compare({}, cand) == []


def test_latency_key_improvement_passes():
    # *_seconds keys are lower-is-better: getting faster is never a problem.
    cand = {"query_path": {"stream_full_drain_seconds": 0.05}}
    keys = ("query_path.stream_full_drain_seconds",)
    assert compare(LATENCY_BASE, cand, keys=keys) == []


def test_latency_key_regression_fails():
    cand = {"query_path": {"stream_full_drain_seconds": 0.6}}
    keys = ("query_path.stream_full_drain_seconds",)
    problems = compare(LATENCY_BASE, cand, keys=keys)
    assert len(problems) == 1
    assert "above" in problems[0]


def test_latency_key_within_threshold_passes():
    cand = {"vectorized": {"drain_seconds": 0.0215, "first_row_seconds": 0.0003}}
    keys = ("vectorized.drain_seconds", "vectorized.first_row_seconds")
    assert compare(LATENCY_BASE, cand, keys=keys) == []


def test_latency_key_missing_candidate_fails():
    keys = ("vectorized.drain_seconds",)
    assert compare(LATENCY_BASE, {"vectorized": {}}, keys=keys) != []


def test_custom_keys_and_threshold():
    cand = {"load": {"bulk_rows_per_s": 1000.0}, "query_path": {"topn_speedup": 1.5}}
    problems = compare(
        BASE, cand, keys=("query_path.topn_speedup",), threshold=0.05
    )
    assert len(problems) == 1


def test_main_exit_codes(tmp_path):
    base = _write(tmp_path / "base.json", BASE)
    ok = _write(tmp_path / "ok.json", {"load": {"bulk_rows_per_s": 990.0}})
    bad = _write(tmp_path / "bad.json", {"load": {"bulk_rows_per_s": 100.0}})
    assert main([base, ok]) == 0
    assert main([base, bad]) == 1
    assert main([base, bad, "--threshold", "0.95"]) == 0
    assert main([base, ok, "--key", "missing.metric"]) == 0  # no baseline -> skip
