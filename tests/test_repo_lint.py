"""Tests for the repo lint harness (tools/lint): PTL001-PTL003 checkers."""

import textwrap

from tools.lint.checks import check_file, check_paths


def lint_source(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(source))
    return check_file(str(path))


# ------------------------------------------------------------------- PTL001


def test_interpolated_sql_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def bad(cur, name):
            cur.execute(f"SELECT * FROM emp WHERE name = '{name}'")
        ''',
    )
    assert [v.code for v in violations] == ["PTL001"]
    assert "name" in violations[0].message


def test_uppercase_constant_interpolation_allowed(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        COLS = "id, name"

        class Store:
            _FROM = "emp e JOIN dept d ON e.dept = d.id"

            def ok(self, cur, eid):
                cur.execute(f"SELECT {COLS} FROM {self._FROM} WHERE id = ?", (eid,))
        ''',
    )
    assert violations == []


def test_percent_and_format_sql_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def bad(cur, table, name):
            cur.query("SELECT * FROM %s" % table)
            cur.query_one("SELECT * FROM {}".format(table))
        ''',
    )
    assert [v.code for v in violations] == ["PTL001", "PTL001"]


def test_noqa_suppresses_named_code(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def audited(cur, marks):
            cur.execute(f"SELECT * FROM t WHERE id IN ({marks})")  # noqa: PTL001
        ''',
    )
    assert violations == []


def test_noqa_other_code_does_not_suppress(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def audited(cur, marks):
            cur.execute(f"SELECT * FROM t WHERE id IN ({marks})")  # noqa: PTL999
        ''',
    )
    assert [v.code for v in violations] == ["PTL001"]


def test_plain_placeholder_sql_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def good(cur, name):
            cur.execute("SELECT * FROM emp WHERE name = ?", (name,))
        ''',
    )
    assert violations == []


# ------------------------------------------------------------------- PTL002


def test_unclosed_cursor_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def leak(conn):
            cur = conn.cursor()
            cur.execute("SELECT 1")
            return cur.fetchall()
        ''',
    )
    # `cur` appears in the return expression, so it escapes -> clean; a
    # genuinely leaked cursor is flagged:
    violations = lint_source(
        tmp_path,
        '''
        def leak(conn):
            cur = conn.cursor()
            cur.execute("SELECT 1")
            rows = cur.fetchall()
            return rows
        ''',
    )
    assert [v.code for v in violations] == ["PTL002"]
    assert "cur" in violations[0].message


def test_closed_returned_or_with_cursor_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        from contextlib import closing

        def a(conn):
            cur = conn.cursor()
            try:
                cur.execute("SELECT 1")
            finally:
                cur.close()

        def b(conn):
            cur = conn.cursor()
            return cur

        def c(conn):
            with closing(conn.cursor()) as cur:
                cur.execute("SELECT 1")

        def d(conn):
            cur = conn.cursor()
            with closing(cur):
                cur.execute("SELECT 1")
        ''',
    )
    assert violations == []


# ------------------------------------------------------------------- PTL003


def test_bare_except_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def swallow():
            try:
                risky()
            except:
                pass
        ''',
    )
    assert [v.code for v in violations] == ["PTL003"]


def test_typed_except_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def ok():
            try:
                risky()
            except (KeyError, ValueError):
                pass
        ''',
    )
    assert violations == []


# ------------------------------------------------------------------ repo-wide


def test_repo_is_clean():
    """The gate CI enforces: src/repro and tools carry no PTL violations."""
    assert check_paths(["src/repro", "tools"]) == []


def test_syntax_error_reported_not_crashed(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    violations = check_file(str(path))
    assert [v.code for v in violations] == ["PTL000"]


# ------------------------------------------------------------------- PTL004


def test_time_time_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        import time

        def stamp():
            return time.time()
        """,
    )
    assert [v.code for v in violations] == ["PTL004"]
    assert "obs.clock" in violations[0].message


def test_time_time_noqa_suppressed(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        import time

        def stamp():
            return time.time()  # noqa: PTL004
        """,
    )
    assert violations == []


def test_perf_counter_and_other_attrs_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        import time

        def tick(clock):
            return time.perf_counter() + time.monotonic() + clock.time_ms()
        """,
    )
    assert violations == []


# ------------------------------------------------------------------- PTL005


def test_iterating_fetchall_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def scan(cur):
            out = set()
            for row in cur.fetchall():
                out.add(row[0])
            return out
        """,
    )
    assert [v.code for v in violations] == ["PTL005"]
    assert "stream" in violations[0].message


def test_comprehension_over_fetchall_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def names(cur):
            return {r[0] for r in cur.fetchall()}
        """,
    )
    assert [v.code for v in violations] == ["PTL005"]


def test_materializing_fetchall_clean(tmp_path):
    # Returning or storing the full list is a legitimate fetchall use.
    violations = lint_source(
        tmp_path,
        """\
        def rows(cur):
            cur.execute("SELECT 1")
            return cur.fetchall()
        """,
    )
    assert violations == []


def test_iterating_cursor_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def scan(backend):
            return {r[0] for r in backend.stream("SELECT id FROM t")}
        """,
    )
    assert violations == []


def test_fetchall_noqa_suppressed(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def scan(cur):
            return [r for r in cur.fetchall()]  # noqa: PTL005
        """,
    )
    assert violations == []


def test_fetchall_allowed_in_tests(tmp_path):
    # Test files are allowlisted: assertions there want full materialization.
    d = tmp_path / "tests"
    d.mkdir()
    path = d / "mod.py"
    path.write_text(
        "def scan(cur):\n"
        "    return [r for r in cur.fetchall()]\n"
    )
    assert check_file(str(path)) == []


# ------------------------------------------------------------------- PTL006


def test_per_row_loop_in_next_batch_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        class VecThing:
            def _produce_batches(self):
                for batch in self.child.batches():
                    out = []
                    for row in batch:
                        out.append(row)
                    yield out
        """,
    )
    assert [v.code for v in violations] == ["PTL006"]


def test_single_batch_loop_clean(tmp_path):
    # One loop over batches with kernel evaluation inside is the idiom.
    violations = lint_source(
        tmp_path,
        """\
        class VecThing:
            def _produce_batches(self):
                for batch in self.child.batches():
                    yield self.kernel(batch)
        """,
    )
    assert violations == []


def test_allowlisted_class_exempt(tmp_path):
    # VecScan's per-row live-lookup fallback is a documented exception.
    violations = lint_source(
        tmp_path,
        """\
        class VecScan:
            def _produce_batches(self):
                for chunk in self.segments():
                    for rowid in chunk:
                        yield self.table.rows.get(rowid)
        """,
    )
    assert violations == []


def test_loop_in_row_method_not_flagged(tmp_path):
    # PTL006 only inspects the batch-protocol methods.
    violations = lint_source(
        tmp_path,
        """\
        class RowOp:
            def _produce(self):
                for row in self.child.rows():
                    for cell in row:
                        use(cell)
        """,
    )
    assert violations == []


def test_nested_def_inside_batch_method_not_flagged(tmp_path):
    # A helper closure gets its own visit; its loops are not per-row work
    # of the batch method itself.
    violations = lint_source(
        tmp_path,
        """\
        class VecThing:
            def next_batch(self):
                def helper(batch):
                    for a in batch:
                        for b in a:
                            use(b)
                return helper
        """,
    )
    assert violations == []
