"""Tests for the repo lint harness (tools/lint): PTL001-PTL008 checkers."""

import textwrap

from tools.lint.checks import check_file, check_paths


def lint_source(tmp_path, source):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(source))
    return check_file(str(path))


# ------------------------------------------------------------------- PTL001


def test_interpolated_sql_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def bad(cur, name):
            cur.execute(f"SELECT * FROM emp WHERE name = '{name}'")
        ''',
    )
    assert [v.code for v in violations] == ["PTL001"]
    assert "name" in violations[0].message


def test_uppercase_constant_interpolation_allowed(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        COLS = "id, name"

        class Store:
            _FROM = "emp e JOIN dept d ON e.dept = d.id"

            def ok(self, cur, eid):
                cur.execute(f"SELECT {COLS} FROM {self._FROM} WHERE id = ?", (eid,))
        ''',
    )
    assert violations == []


def test_percent_and_format_sql_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def bad(cur, table, name):
            cur.query("SELECT * FROM %s" % table)
            cur.query_one("SELECT * FROM {}".format(table))
        ''',
    )
    assert [v.code for v in violations] == ["PTL001", "PTL001"]


def test_noqa_suppresses_named_code(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def audited(cur, marks):
            cur.execute(f"SELECT * FROM t WHERE id IN ({marks})")  # noqa: PTL001
        ''',
    )
    assert violations == []


def test_noqa_other_code_does_not_suppress(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def audited(cur, marks):
            cur.execute(f"SELECT * FROM t WHERE id IN ({marks})")  # noqa: PTL999
        ''',
    )
    assert [v.code for v in violations] == ["PTL001"]


def test_plain_placeholder_sql_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def good(cur, name):
            cur.execute("SELECT * FROM emp WHERE name = ?", (name,))
        ''',
    )
    assert violations == []


# ------------------------------------------------- PTL001 (dataflow-aware)


def test_sql_built_in_variable_flagged_at_sink(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def bad(cur, name):
            sql = f"SELECT * FROM emp WHERE name = '{name}'"
            cur.execute(sql)
        ''',
    )
    assert [v.code for v in violations] == ["PTL001"]
    # Reported at the sink (line 4 of the dedented source) so a
    # `# noqa: PTL001` on the execute call keeps working.
    assert violations[0].line == 4
    assert "'sql'" in violations[0].message


def test_sql_variable_flagged_through_copy_chain(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def bad(cur, table):
            a = "SELECT * FROM " + table
            b = a
            cur.query(b)
        ''',
    )
    assert [v.code for v in violations] == ["PTL001"]


def test_sql_variable_rebound_to_literal_clean(tmp_path):
    # Flow-sensitivity: only the definition reaching the sink matters.
    violations = lint_source(
        tmp_path,
        '''
        def ok(cur, name):
            sql = f"SELECT {name}"
            sql = "SELECT * FROM emp WHERE name = ?"
            cur.execute(sql, (name,))
        ''',
    )
    assert violations == []


def test_sql_variable_tainted_in_one_branch_flagged(tmp_path):
    # Either branch may reach the sink: the tainted one flags.
    violations = lint_source(
        tmp_path,
        '''
        def bad(cur, name, fancy):
            if fancy:
                sql = f"SELECT * FROM emp WHERE name = '{name}'"
            else:
                sql = "SELECT * FROM emp"
            cur.execute(sql)
        ''',
    )
    assert [v.code for v in violations] == ["PTL001"]


def test_sql_variable_from_constant_interpolation_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        COLS = "id, name"

        def ok(cur):
            sql = f"SELECT {COLS} FROM emp"
            cur.execute(sql)
        ''',
    )
    assert violations == []


def test_sql_variable_noqa_at_sink_suppresses(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def audited(cur, marks):
            sql = f"SELECT * FROM t WHERE id IN ({marks})"
            cur.execute(sql)  # noqa: PTL001
        ''',
    )
    assert violations == []


# ------------------------------------------------------------------- PTL002


def test_unclosed_cursor_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def leak(conn):
            cur = conn.cursor()
            cur.execute("SELECT 1")
            return cur.fetchall()
        ''',
    )
    # `cur` appears in the return expression, so it escapes -> clean; a
    # genuinely leaked cursor is flagged:
    violations = lint_source(
        tmp_path,
        '''
        def leak(conn):
            cur = conn.cursor()
            cur.execute("SELECT 1")
            rows = cur.fetchall()
            return rows
        ''',
    )
    assert [v.code for v in violations] == ["PTL002"]
    assert "cur" in violations[0].message


def test_closed_returned_or_with_cursor_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        from contextlib import closing

        def a(conn):
            cur = conn.cursor()
            try:
                cur.execute("SELECT 1")
            finally:
                cur.close()

        def b(conn):
            cur = conn.cursor()
            return cur

        def c(conn):
            with closing(conn.cursor()) as cur:
                cur.execute("SELECT 1")

        def d(conn):
            cur = conn.cursor()
            with closing(cur):
                cur.execute("SELECT 1")
        ''',
    )
    assert violations == []


# -------------------------------------------------- PTL002 (alias-aware)


def test_cursor_closed_via_alias_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def ok(conn):
            cur = conn.cursor()
            c2 = cur
            c2.close()
        ''',
    )
    assert violations == []


def test_cursor_returned_via_alias_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def ok(conn):
            cur = conn.cursor()
            alias = cur
            return alias
        ''',
    )
    assert violations == []


def test_cursor_stored_on_self_clean(tmp_path):
    # Stored into an attribute: ownership moved to the object.
    violations = lint_source(
        tmp_path,
        '''
        class Holder:
            def open(self, conn):
                cur = conn.cursor()
                self._cur = cur
        ''',
    )
    assert violations == []


def test_cursor_passed_to_helper_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def ok(conn):
            cur = conn.cursor()
            register_for_cleanup(cur)
        ''',
    )
    assert violations == []


def test_cursor_name_in_subscript_index_still_flagged(tmp_path):
    # The shrunk escape heuristic: a name used only as data (an index,
    # an operand) does not transfer ownership of the cursor.
    violations = lint_source(
        tmp_path,
        '''
        def leak(conn, rows):
            cur = conn.cursor()
            cur.execute("SELECT 1")
            return rows[cur.rowcount]
        ''',
    )
    assert [v.code for v in violations] == ["PTL002"]


# ------------------------------------------------------------------- PTL003


def test_bare_except_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def swallow():
            try:
                risky()
            except:
                pass
        ''',
    )
    assert [v.code for v in violations] == ["PTL003"]


def test_typed_except_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        '''
        def ok():
            try:
                risky()
            except (KeyError, ValueError):
                pass
        ''',
    )
    assert violations == []


# ------------------------------------------------------------------ repo-wide


def test_repo_is_clean():
    """The gate CI enforces: src/repro and tools carry no PTL violations."""
    assert check_paths(["src/repro", "tools"]) == []


def test_syntax_error_reported_not_crashed(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def broken(:\n")
    violations = check_file(str(path))
    assert [v.code for v in violations] == ["PTL000"]


# ------------------------------------------------------------------- PTL004


def test_time_time_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        import time

        def stamp():
            return time.time()
        """,
    )
    assert [v.code for v in violations] == ["PTL004"]
    assert "obs.clock" in violations[0].message


def test_time_time_noqa_suppressed(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        import time

        def stamp():
            return time.time()  # noqa: PTL004
        """,
    )
    assert violations == []


def test_perf_counter_and_other_attrs_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        import time

        def tick(clock):
            return time.perf_counter() + time.monotonic() + clock.time_ms()
        """,
    )
    assert violations == []


# ------------------------------------------------------------------- PTL005


def test_iterating_fetchall_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def scan(cur):
            out = set()
            for row in cur.fetchall():
                out.add(row[0])
            return out
        """,
    )
    assert [v.code for v in violations] == ["PTL005"]
    assert "stream" in violations[0].message


def test_comprehension_over_fetchall_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def names(cur):
            return {r[0] for r in cur.fetchall()}
        """,
    )
    assert [v.code for v in violations] == ["PTL005"]


def test_materializing_fetchall_clean(tmp_path):
    # Returning or storing the full list is a legitimate fetchall use.
    violations = lint_source(
        tmp_path,
        """\
        def rows(cur):
            cur.execute("SELECT 1")
            return cur.fetchall()
        """,
    )
    assert violations == []


def test_iterating_cursor_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def scan(backend):
            return {r[0] for r in backend.stream("SELECT id FROM t")}
        """,
    )
    assert violations == []


def test_fetchall_noqa_suppressed(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def scan(cur):
            return [r for r in cur.fetchall()]  # noqa: PTL005
        """,
    )
    assert violations == []


def test_fetchall_allowed_in_tests(tmp_path):
    # Test files are allowlisted: assertions there want full materialization.
    d = tmp_path / "tests"
    d.mkdir()
    path = d / "mod.py"
    path.write_text(
        "def scan(cur):\n"
        "    return [r for r in cur.fetchall()]\n"
    )
    assert check_file(str(path)) == []


# ------------------------------------------------------------------- PTL006


def test_per_row_loop_in_next_batch_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        class VecThing:
            def _produce_batches(self):
                for batch in self.child.batches():
                    out = []
                    for row in batch:
                        out.append(row)
                    yield out
        """,
    )
    assert [v.code for v in violations] == ["PTL006"]


def test_single_batch_loop_clean(tmp_path):
    # One loop over batches with kernel evaluation inside is the idiom.
    violations = lint_source(
        tmp_path,
        """\
        class VecThing:
            def _produce_batches(self):
                for batch in self.child.batches():
                    yield self.kernel(batch)
        """,
    )
    assert violations == []


def test_allowlisted_class_exempt(tmp_path):
    # VecScan's per-row live-lookup fallback is a documented exception.
    violations = lint_source(
        tmp_path,
        """\
        class VecScan:
            def _produce_batches(self):
                for chunk in self.segments():
                    for rowid in chunk:
                        yield self.table.rows.get(rowid)
        """,
    )
    assert violations == []


def test_loop_in_row_method_not_flagged(tmp_path):
    # PTL006 only inspects the batch-protocol methods.
    violations = lint_source(
        tmp_path,
        """\
        class RowOp:
            def _produce(self):
                for row in self.child.rows():
                    for cell in row:
                        use(cell)
        """,
    )
    assert violations == []


def test_nested_def_inside_batch_method_not_flagged(tmp_path):
    # A helper closure gets its own visit; its loops are not per-row work
    # of the batch method itself.
    violations = lint_source(
        tmp_path,
        """\
        class VecThing:
            def next_batch(self):
                def helper(batch):
                    for a in batch:
                        for b in a:
                            use(b)
                return helper
        """,
    )
    assert violations == []


# ------------------------------------------------------------------- PTL007


def test_table_state_write_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def hack(db, row):
            tbl = db.table("emp")
            tbl.rows[7] = row
            tbl.next_rowid += 1
        """,
    )
    assert [v.code for v in violations] == ["PTL007", "PTL007"]
    assert "Table.rows" in violations[0].message
    assert "Table.next_rowid" in violations[1].message


def test_table_mutator_call_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def hack(db):
            db.table("emp").rows.clear()
        """,
    )
    assert [v.code for v in violations] == ["PTL007"]
    assert "'clear'" in violations[0].message


def test_catalog_and_column_store_writes_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def hack(db, t):
            db.catalog.tables["x"] = t
            store = db.table("emp").column_store()
            store.version = 0
        """,
    )
    assert [v.code for v in violations] == ["PTL007", "PTL007"]
    assert "Catalog.tables" in violations[0].message
    assert "ColumnStore.version" in violations[1].message


def test_tables_subscript_receiver_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def hack(db):
            db.tables["emp"].data_version = 99
        """,
    )
    assert [v.code for v in violations] == ["PTL007"]


def test_owning_modules_exempt(tmp_path):
    source = (
        'def owner(db, row):\n'
        '    db.table("emp").rows[7] = row\n'
    )
    for allowed in ("storage.py", "wal.py"):
        path = tmp_path / allowed
        path.write_text(source)
        assert check_file(str(path)) == []
    flagged = tmp_path / "elsewhere.py"
    flagged.write_text(source)
    assert [v.code for v in check_file(str(flagged))] == ["PTL007"]


def test_non_table_receiver_not_flagged(tmp_path):
    # `stmt.rows` is an AST field, not engine state: the receiver never
    # resolves to a table, so the write is fine.
    violations = lint_source(
        tmp_path,
        """\
        def rewrite(stmt, literal):
            stmt.rows = [literal]
            stmt.version = 2
        """,
    )
    assert violations == []


def test_reading_engine_state_not_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def count(db):
            return len(db.table("emp").rows)
        """,
    )
    assert violations == []


def test_ptl007_noqa_suppresses(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def repair(db):
            db.table("emp").data_version += 1  # noqa: PTL007
        """,
    )
    assert violations == []


# ------------------------------------------------------------------- PTL008


def test_mutator_without_txn_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def hack(conn, table, values):
            conn.db.insert_row(table, values)
        """,
    )
    assert [v.code for v in violations] == ["PTL008"]
    assert "insert_row" in violations[0].message
    assert "txn=" in violations[0].message


def test_mutator_with_txn_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def ok(self, table, values):
            self.db.insert_row(table, values, txn=self.txn)
            self.db.drop_table("emp", txn=self.txn)
        """,
    )
    assert violations == []


def test_database_constructor_receiver_flagged(tmp_path):
    # The receiver resolves through its reaching definition to Database().
    violations = lint_source(
        tmp_path,
        """\
        def hack(table, values):
            db = Database()
            db.update_row(table, 7, values)
        """,
    )
    assert [v.code for v in violations] == ["PTL008"]


def test_ddl_mutators_without_txn_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def hack(engine, meta):
            engine.db.create_table(meta)
            engine.db.create_index(meta)
        """,
    )
    assert [v.code for v in violations] == ["PTL008", "PTL008"]


def test_ptl008_owning_modules_exempt(tmp_path):
    source = (
        "def replay(db, table, row):\n"
        "    db.insert_row(table, row)\n"
    )
    for allowed in ("storage.py", "wal.py"):
        path = tmp_path / allowed
        path.write_text(source)
        assert check_file(str(path)) == []
    flagged = tmp_path / "elsewhere.py"
    flagged.write_text(source)
    assert [v.code for v in check_file(str(flagged))] == ["PTL008"]


def test_non_database_receiver_not_flagged(tmp_path):
    # `gen.insert_row` on an arbitrary object is not the engine Database.
    violations = lint_source(
        tmp_path,
        """\
        def ok(gen, table, values):
            gen.insert_row(table, values)
        """,
    )
    assert violations == []


def test_ptl008_noqa_suppresses(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def embedded_only(conn, table, values):
            conn.db.insert_row(table, values)  # noqa: PTL008
        """,
    )
    assert violations == []


# ------------------------------------------------------------------- PTL009


def test_sharded_table_sql_flagged(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def peek(backend):
            return backend.query("SELECT id FROM performance_result")
        """,
    )
    assert [v.code for v in violations] == ["PTL009"]
    assert "performance_result" in violations[0].message


def test_sharded_table_in_variable_flagged_at_sink(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def peek(backend):
            sql = "SELECT focus_id FROM focus_has_resource WHERE resource_id = ?"
            return backend.query(sql, (1,))
        """,
    )
    assert [v.code for v in violations] == ["PTL009"]


def test_sharded_table_in_fstring_flagged(tmp_path):
    # literal table name inside an f-string still surfaces (the marks
    # placeholder is an UPPERCASE constant, so PTL001 stays quiet)
    violations = lint_source(
        tmp_path,
        """\
        MARKS = "?, ?"

        def probe(backend):
            return backend.query(
                f"SELECT 1 FROM resource_has_ancestor WHERE id IN ({MARKS})"
            )
        """,
    )
    assert [v.code for v in violations] == ["PTL009"]


def test_dimension_table_sql_clean(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def names(backend):
            return backend.query("SELECT name FROM resource")
        """,
    )
    assert violations == []


def test_ptl009_owning_modules_and_tests_exempt(tmp_path):
    source = (
        "def union(backend):\n"
        "    return backend.query(\"SELECT * FROM performance_result\")\n"
    )
    for allowed in ("shards.py", "bulkload.py", "query.py", "test_peek.py"):
        path = tmp_path / allowed
        path.write_text(source)
        assert check_file(str(path)) == [], allowed
    flagged = tmp_path / "elsewhere.py"
    flagged.write_text(source)
    assert [v.code for v in check_file(str(flagged))] == ["PTL009"]


def test_ptl009_noqa_suppresses(tmp_path):
    violations = lint_source(
        tmp_path,
        """\
        def audited(backend):
            sql = "SELECT COUNT(*) FROM performance_result"
            return backend.query(sql)  # noqa: PTL009
        """,
    )
    assert violations == []
