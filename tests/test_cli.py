"""CLI tests: every ptrack subcommand end to end."""

import os

import pytest

from repro.cli import main
from repro.synth.irs_gen import IRSRunSpec, generate_irs_run
from repro.synth.machines import MCR


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    """A generated study + loaded store file, shared by CLI tests."""
    root = tmp_path_factory.mktemp("cli")
    raw = root / "raw"
    generate_irs_run(IRSRunSpec("irs-cli-p0004-r0", MCR, 4), str(raw))
    generate_irs_run(IRSRunSpec("irs-cli-p0008-r0", MCR, 8), str(raw))
    index = root / "study.index"
    index.write_text(
        "irs-cli-p0004-r0 IRS MPI 4 1 t0 t1\n"
        "irs-cli-p0008-r0 IRS MPI 8 1 t0 t1\n"
    )
    out = root / "ptdf"
    assert main(["gen", str(raw), str(index), "--out", str(out)]) == 0
    db = str(root / "store.json")
    assert main(["init", "--db", db]) == 0
    ptdfs = sorted(str(out / f) for f in os.listdir(out))
    assert main(["load", "--db", db, *ptdfs]) == 0
    return db


class TestGenLoad:
    def test_gen_produces_ptdf(self, study, capsys):
        # (exercised by the fixture; here just assert store state via ls)
        assert main(["ls", "--db", study, "executions"]) == 0
        out = capsys.readouterr().out
        assert "irs-cli-p0004-r0" in out and "irs-cli-p0008-r0" in out

    def test_load_missing_file_errors(self, study, capsys):
        assert main(["load", "--db", study, "/no/such.ptdf"]) == 1

    def test_gen_missing_index_errors(self, tmp_path):
        assert main(["gen", str(tmp_path), str(tmp_path / "nope.index"),
                     "--out", str(tmp_path / "o")]) == 1


class TestParallelShardedLoad:
    @pytest.fixture()
    def ptdfs(self, tmp_path):
        from tests.core.test_sharded_load import _corpus_writer

        paths = []
        for i, execs in enumerate((range(0, 2), range(2, 4))):
            w = _corpus_writer(execs) if i == 0 else _corpus_writer(execs)
            path = str(tmp_path / f"part{i}.ptdf")
            w.write(path)
            paths.append(path)
        return paths

    def test_load_with_workers(self, ptdfs, tmp_path, capsys):
        db = str(tmp_path / "store.json")
        assert main(["init", "--db", db]) == 0
        assert main(["load", "--db", db, "--workers", "2",
                     "--quiet", *ptdfs]) == 0
        assert main(["ls", "--db", db, "executions"]) == 0
        assert "irs-3" in capsys.readouterr().out

    def test_load_into_sharded_directory(self, ptdfs, tmp_path, capsys):
        directory = str(tmp_path / "sharded")
        assert main(["load", "--db", directory, "--shards", "2",
                     "--workers", "2", *ptdfs]) == 0
        assert os.path.exists(os.path.join(directory, "shards.json"))
        assert os.path.exists(os.path.join(directory, "shard-0001.db"))
        out = capsys.readouterr().out
        assert "results" in out

    def test_workers_env_var(self, ptdfs, tmp_path, monkeypatch):
        monkeypatch.setenv("PTRACK_WORKERS", "2")
        db = str(tmp_path / "store.json")
        assert main(["init", "--db", db]) == 0
        assert main(["load", "--db", db, "--quiet", *ptdfs]) == 0
        monkeypatch.setenv("PTRACK_WORKERS", "banana")
        assert main(["load", "--db", db, "--quiet", *ptdfs]) == 2

    def test_parallel_lint_gate(self, tmp_path, capsys):
        bad = tmp_path / "bad.ptdf"
        bad.write_text('Resource "/x" "nope"\n')
        assert main(["load", "--workers", "2", "--quiet", str(bad)]) == 1
        assert "lint errors" in capsys.readouterr().err


class TestLs:
    @pytest.mark.parametrize("what", ["applications", "metrics", "tools", "types"])
    def test_listings(self, study, capsys, what):
        assert main(["ls", "--db", study, what]) == 0
        assert capsys.readouterr().out.strip()

    def test_resources_requires_type(self, study, capsys):
        assert main(["ls", "--db", study, "resources"]) == 2

    def test_resources_of_type(self, study, capsys):
        assert main(
            ["ls", "--db", study, "resources", "--type", "build/module/function"]
        ) == 0
        out = capsys.readouterr().out
        assert "/IRS/src/matsolve" in out

    def test_executions_filtered_by_application(self, study, capsys):
        assert main(["ls", "--db", study, "executions", "--application", "IRS"]) == 0
        assert "irs-cli" in capsys.readouterr().out


class TestReport:
    def test_summary(self, study, capsys):
        assert main(["report", "--db", study, "summary"]) == 0
        assert "performance_result" in capsys.readouterr().out

    def test_application(self, study, capsys):
        assert main(["report", "--db", study, "application", "IRS"]) == 0
        assert "irs-cli-p0004-r0" in capsys.readouterr().out

    def test_execution(self, study, capsys):
        assert main(["report", "--db", study, "execution", "irs-cli-p0004-r0"]) == 0
        assert "results:" in capsys.readouterr().out

    def test_missing_name(self, study, capsys):
        assert main(["report", "--db", study, "application"]) == 2


class TestQuery:
    def test_count_only(self, study, capsys):
        assert main(
            ["query", "--db", study, "--name", "/IRS/src/matsolve",
             "--relatives", "N", "--count-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "# whole filter:" in out

    def test_table_with_column_and_sort(self, study, capsys):
        assert main(
            ["query", "--db", study, "--name", "/IRS/src/matsolve",
             "--relatives", "N", "--column", "execution",
             "--sort", "value", "--desc", "--limit", "5"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        header = [l for l in lines if l.startswith("execution\t")]
        assert header
        data = [l for l in lines if l.startswith("irs-cli")]
        assert len(data) == 5

    def test_csv_export(self, study, tmp_path, capsys):
        csv_path = str(tmp_path / "out.csv")
        assert main(
            ["query", "--db", study, "--name", "/IRS/src/matsolve",
             "--relatives", "N", "--csv", csv_path]
        ) == 0
        assert os.path.exists(csv_path)
        assert open(csv_path).readline().startswith("execution,")

    def test_attr_clause(self, study, capsys):
        assert main(
            ["query", "--db", study, "--attr", "concurrency model=MPI",
             "--count-only"]
        ) == 0
        out = capsys.readouterr().out
        assert "match alone" in out

    def test_conjunction_shrinks(self, study, capsys):
        main(["query", "--db", study, "--name", "/IRS/src/matsolve",
              "--relatives", "N", "--count-only"])
        single = capsys.readouterr().out
        main(["query", "--db", study, "--name", "/IRS/src/matsolve",
              "--name", "/irs-cli-p0004-r0", "--count-only"])
        double = capsys.readouterr().out
        n_single = int(single.split("# whole filter: ")[1].split()[0])
        n_double = int(double.split("# whole filter: ")[1].split()[0])
        assert 0 < n_double < n_single

    def test_bad_attr_clause(self, study, capsys):
        assert main(["query", "--db", study, "--attr", "nonsense"]) == 1


class TestAttrsCompare:
    def test_attrs(self, study, capsys):
        assert main(["attrs", "--db", study, "/irs-cli-p0004-r0"]) == 0
        out = capsys.readouterr().out
        assert "number of processes = 4" in out

    def test_attrs_unknown_resource(self, study, capsys):
        assert main(["attrs", "--db", study, "/nope"]) == 1

    def test_compare(self, study, capsys):
        assert main(
            ["compare", "--db", study, "irs-cli-p0004-r0", "irs-cli-p0008-r0",
             "--metric", "Wall time", "--threshold", "1.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "common" in out


class TestBackendOption:
    def test_sqlite_backend(self, tmp_path, capsys):
        db = str(tmp_path / "s.db")
        assert main(["init", "--db", db, "--backend", "sqlite"]) == 0
        assert main(["ls", "--db", db, "--backend", "sqlite", "types"]) == 0
        assert "grid/machine" in capsys.readouterr().out


class TestChart:
    def test_ascii_chart(self, study, capsys):
        assert main(
            ["chart", "--db", study, "--metric", "CPU time",
             "--name", "/IRS/src/matsolve", "--application", "IRS"]
        ) == 0
        out = capsys.readouterr().out
        assert "min" in out and "#" in out

    def test_svg_chart(self, study, tmp_path, capsys):
        svg = str(tmp_path / "c.svg")
        assert main(
            ["chart", "--db", study, "--metric", "CPU time",
             "--name", "/IRS/src/matsolve", "--svg", svg,
             "irs-cli-p0004-r0", "irs-cli-p0008-r0"]
        ) == 0
        import xml.etree.ElementTree as ET

        ET.parse(svg)

    def test_csv_chart(self, study, tmp_path, capsys):
        csv_path = str(tmp_path / "c.csv")
        assert main(
            ["chart", "--db", study, "--metric", "CPU time",
             "--application", "IRS", "--csv", csv_path]
        ) == 0
        assert open(csv_path).readline() == "category,min,max\n"

    def test_no_data(self, study, capsys):
        assert main(
            ["chart", "--db", study, "--metric", "No Such Metric",
             "--application", "IRS"]
        ) == 1


class TestPredict:
    @pytest.fixture(scope="class")
    def sweep_db(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("predict")
        raw = root / "raw"
        lines = []
        for p in (2, 4, 8, 16):
            name = f"irs-sw-p{p:04d}-r0"
            generate_irs_run(IRSRunSpec(name, MCR, p), str(raw))
            lines.append(f"{name} IRS MPI {p} 1 t0 t1\n")
        index = root / "s.index"
        index.write_text("".join(lines))
        out = root / "ptdf"
        assert main(["gen", str(raw), str(index), "--out", str(out)]) == 0
        db = str(root / "db.json")
        assert main(["init", "--db", db]) == 0
        ptdfs = sorted(str(out / f) for f in os.listdir(out))
        assert main(["load", "--db", db, *ptdfs]) == 0
        return db

    def test_fit_and_report(self, sweep_db, capsys):
        assert main(
            ["predict", "--db", sweep_db, "--metric", "Wall time",
             "--application", "IRS"]
        ) == 0
        out = capsys.readouterr().out
        assert "t(p) =" in out
        assert "rel err" in out

    def test_extrapolate_stores_predictions(self, sweep_db, capsys):
        assert main(
            ["predict", "--db", sweep_db, "--metric", "Wall time",
             "--application", "IRS", "--extrapolate", "64", "128"]
        ) == 0
        out = capsys.readouterr().out
        assert "stored pred-amdahl-comm-p0064" in out
        main(["ls", "--db", sweep_db, "tools"])
        assert "prediction:amdahl-comm" in capsys.readouterr().out

    def test_too_few_points(self, study, capsys):
        assert main(
            ["predict", "--db", study, "--metric", "Wall time",
             "--application", "IRS"]
        ) == 1


class TestStats:
    def test_stats_json_reports_engine_counters(self, tmp_path, capsys):
        """The acceptance check: a file-backed quickstart load reports
        non-zero statement-cache hits, WAL records and loader rate."""
        db = str(tmp_path / "stats.db")
        assert main(
            ["stats", "--json", "--db", db, "examples/data/quickstart.ptdf"]
        ) == 0
        import json

        snap = json.loads(capsys.readouterr().out)
        assert snap["minidb.statement_cache.hits"]["value"] > 0
        assert snap["minidb.wal.records"]["value"] > 0
        assert snap["ptdf.load.records_per_s"]["value"] > 0
        assert snap["query.prfilter_evaluations"]["value"] > 0

    def test_stats_text_and_prom(self, capsys):
        assert main(["stats", "examples/data/quickstart.ptdf"]) == 0
        assert "minidb.statements" in capsys.readouterr().out
        assert main(["stats", "--prom", "examples/data/quickstart.ptdf"]) == 0
        assert "minidb_statements_total" in capsys.readouterr().out

    def test_stats_ptdf_and_trace_artifacts(self, tmp_path, capsys):
        tel = tmp_path / "telemetry.ptdf"
        trace = tmp_path / "trace.json"
        assert main(
            ["stats", "--ptdf", str(tel), "--trace", str(trace),
             "examples/data/quickstart.ptdf"]
        ) == 0
        import json

        assert "Execution ptrack-telemetry" in tel.read_text()
        assert json.loads(trace.read_text())["traceEvents"]

    def test_stats_leaves_metrics_disabled(self):
        from repro.obs import metrics

        assert main(["stats", "examples/data/quickstart.ptdf"]) == 0
        assert not metrics.enabled


class TestProfile:
    def test_profile_text_shows_statement_stats(self, capsys):
        assert main(["profile", "examples/data/quickstart.ptdf"]) == 0
        out = capsys.readouterr().out
        assert "calls" in out and "statement" in out
        assert "INSERT INTO" in out  # loader statements got fingerprinted
        assert "statements tracked" in out

    def test_profile_json_top_and_sort(self, capsys):
        import json

        assert main(
            ["profile", "--json", "--top", "3", "--sort", "calls",
             "examples/data/quickstart.ptdf"]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["statements"]) == 3
        calls = [s["calls"] for s in doc["statements"]]
        assert calls == sorted(calls, reverse=True)
        assert doc["calls"] > 0

    def test_profile_flight_records_slow_plans(self, capsys):
        # --slow-ms 0 flight-records every metered plan; the recorded
        # nodes carry the planner estimate next to the actual row count.
        assert main(
            ["profile", "--flight", "--slow-ms", "0",
             "examples/data/quickstart.ptdf"]
        ) == 0
        out = capsys.readouterr().out
        assert "est=" in out and "actual=" in out

    def test_profile_ptdf_artifact_lints_and_loads(self, tmp_path, capsys):
        out_file = tmp_path / "profile.ptdf"
        assert main(
            ["profile", "--ptdf", str(out_file),
             "examples/data/quickstart.ptdf"]
        ) == 0
        assert main(["lint", "--strict", str(out_file)]) == 0
        db = str(tmp_path / "profiles.json")
        assert main(["init", "--db", db]) == 0
        assert main(["load", "--db", db, str(out_file)]) == 0
        capsys.readouterr()
        assert main(["ls", "--db", db, "executions"]) == 0
        assert "ptrack-profile" in capsys.readouterr().out

    def test_profile_leaves_profiler_disabled(self):
        from repro.obs import profiler

        assert main(["profile", "examples/data/quickstart.ptdf"]) == 0
        assert not profiler.enabled


class TestLoadProgress:
    def test_quiet_suppresses_summaries(self, tmp_path, capsys):
        db = str(tmp_path / "q.json")
        assert main(["init", "--db", db]) == 0
        capsys.readouterr()
        assert main(
            ["load", "--quiet", "--db", db, "examples/data/quickstart.ptdf"]
        ) == 0
        assert capsys.readouterr().out == ""

    def test_progress_reports_records_per_second(self, tmp_path, capsys):
        db = str(tmp_path / "p.json")
        assert main(["init", "--db", db]) == 0
        capsys.readouterr()
        assert main(
            ["load", "--progress", "--db", db, "examples/data/quickstart.ptdf"]
        ) == 0
        err = capsys.readouterr().err
        assert "records/s" in err
        assert "quickstart.ptdf" in err

    def test_load_trace_artifact(self, tmp_path, capsys):
        import json

        db = str(tmp_path / "t.json")
        trace = tmp_path / "load-trace.json"
        assert main(["init", "--db", db]) == 0
        assert main(
            ["load", "--quiet", "--trace", str(trace), "--db", db,
             "examples/data/quickstart.ptdf"]
        ) == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert any(e["name"] == "load.file" for e in events)
