"""Statement profiler: aggregation, flight recorder, drift, overhead."""

import time

import pytest

import repro.minidb as minidb
from repro.core import PTDataStore
from repro.obs.export import profile_to_ptdf, render_flight_text, render_profile_text
from repro.obs.profiler import (
    MISESTIMATE_Q,
    StatementProfiler,
    plan_hash,
    profiler as global_profiler,
    qerror,
)
from repro.ptdf.lint import Linter


@pytest.fixture
def prof():
    """The global profiler, enabled for one test and always cleaned up."""
    global_profiler.enable(slow_seconds=0.0, sample_every=0,
                          max_statements=256)
    global_profiler.reset()
    yield global_profiler
    global_profiler.disable()
    global_profiler.reset()


def populated(n=50):
    conn = minidb.connect()
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    cur.executemany("INSERT INTO t VALUES (?, ?)", [(i, f"s{i}") for i in range(n)])
    return conn, cur


# ---------------------------------------------------------------- aggregation


def test_statements_aggregate_per_fingerprint(prof):
    conn, cur = populated()
    cur.execute("SELECT a FROM t WHERE a > 10")
    cur.fetchall()
    cur.execute("SELECT a FROM t WHERE a > 40")  # different literal, same shape
    cur.fetchall()
    conn.close()
    by_fp = {s["fingerprint"]: s for s in prof.snapshot()["statements"]}
    sel = by_fp["SELECT a FROM t WHERE a > ?"]
    assert sel["calls"] == 2
    assert sel["rows_returned"] == 39 + 9
    assert sel["rows_scanned"] == 100  # two full scans of 50 rows
    assert sel["total_seconds"] > 0
    assert sel["p95_seconds"] >= sel["mean_seconds"] > 0
    assert sel["plan_hash"]


def test_cache_hits_counted_per_fingerprint(prof):
    conn, cur = populated(5)
    for _ in range(4):
        cur.execute("SELECT a FROM t WHERE a > ?", (1,))
        cur.fetchall()
    conn.close()
    by_fp = {s["fingerprint"]: s for s in prof.snapshot()["statements"]}
    sel = by_fp["SELECT a FROM t WHERE a > ?"]
    assert sel["calls"] == 4
    assert sel["cache_hits"] == 3  # first execution parses, the rest hit


def test_execution_errors_are_recorded(prof):
    conn = minidb.connect()
    cur = conn.cursor()
    cur.execute("CREATE TABLE u (a INTEGER PRIMARY KEY)")
    cur.execute("INSERT INTO u VALUES (1)")
    with pytest.raises(minidb.Error):
        cur.execute("INSERT INTO u VALUES (1)")  # runtime UNIQUE violation
    conn.close()
    by_fp = {s["fingerprint"]: s for s in prof.snapshot()["statements"]}
    bad = by_fp["INSERT INTO u VALUES ( ? )"]
    assert bad["calls"] == 2
    assert bad["errors"] == 1


def test_unfetched_stream_finalizes_on_cursor_close(prof):
    conn, cur = populated()
    cur.execute("SELECT a FROM t WHERE a > 10")
    cur.close()  # drops the stream without draining it
    conn.close()
    by_fp = {s["fingerprint"]: s for s in prof.snapshot()["statements"]}
    sel = by_fp["SELECT a FROM t WHERE a > ?"]
    assert sel["calls"] == 1
    assert sel["rows_returned"] == 1  # just the execute-time prefetch row


def test_lru_evicts_least_recently_executed():
    # Literals normalize away, so distinct fingerprints need distinct
    # statement shapes; drive record() directly to test the table bounds.
    p = StatementProfiler(max_statements=4)
    p.enable(slow_seconds=60.0)
    for i in range(8):
        p.record(f"SELECT c{i} FROM t", f"SELECT c{i} FROM t", 0.001)
    p.record("SELECT c4 FROM t", "SELECT c4 FROM t", 0.001)  # refresh #4
    p.record("SELECT c9 FROM t", "SELECT c9 FROM t", 0.001)
    snap = p.snapshot()
    assert len(snap["statements"]) == 4
    assert snap["evicted"] == 5
    kept = {s["fingerprint"] for s in snap["statements"]}
    # 5 was the least recently executed once 4 was refreshed.
    assert kept == {"SELECT c4 FROM t", "SELECT c6 FROM t",
                    "SELECT c7 FROM t", "SELECT c9 FROM t"}


def test_disabled_profiler_records_nothing():
    p = StatementProfiler()
    p.record("SELECT ?", "SELECT 1", 0.1)
    assert p.snapshot()["statements"] == []


# ---------------------------------------------------------------- flight ring


def test_slow_statements_are_flight_recorded(prof):
    prof.slow_seconds = 0.0  # everything with a plan is "slow"
    conn, cur = populated()
    cur.execute("SELECT a FROM t WHERE a > 10")
    cur.fetchall()
    conn.close()
    flights = prof.snapshot()["flights"]
    assert flights, "metered SELECT must be recorded"
    flight = flights[-1]
    assert flight["trigger"] == "slow"
    assert flight["fingerprint"] == "SELECT a FROM t WHERE a > ?"
    ops = [n["op"] for n in flight["nodes"]]
    assert any("Scan" in op for op in ops)
    scan = next(n for n in flight["nodes"] if "Scan" in n["op"])
    # Per-node estimate AND actuals, captured without re-execution.
    assert scan["est_rows"] == 50
    assert scan["rows"] == 50
    assert scan["seconds"] is not None


def test_fast_statements_skip_the_recorder_without_sampling(prof):
    prof.slow_seconds = 60.0
    conn, cur = populated(3)
    cur.execute("SELECT a FROM t")
    cur.fetchall()
    conn.close()
    assert prof.snapshot()["flights"] == []


def test_sampling_records_every_nth(prof):
    prof.slow_seconds = 60.0
    prof.sample_every = 1
    conn, cur = populated(3)
    cur.execute("SELECT a FROM t")
    cur.fetchall()
    conn.close()
    flights = prof.snapshot()["flights"]
    assert flights and flights[-1]["trigger"] == "sample"


def test_flight_ring_is_bounded(prof):
    prof.enable(flight_capacity=3, slow_seconds=0.0)
    conn, cur = populated(2)
    for _ in range(10):
        cur.execute("SELECT a FROM t")
        cur.fetchall()
    conn.close()
    flights = prof.snapshot()["flights"]
    assert len(flights) == 3
    # Ring semantics: the survivors are the newest three.
    seqs = [f["seq"] for f in flights]
    assert seqs == sorted(seqs) and seqs[-1] > 3


def test_plan_hash_stable_across_executions():
    nodes = [
        {"depth": 0, "describe": "PROJECT"},
        {"depth": 1, "describe": "SCAN t AS t"},
    ]
    assert plan_hash(nodes) == plan_hash([dict(n) for n in nodes])
    assert plan_hash(nodes) != plan_hash(nodes[:1])


# ---------------------------------------------------------------- drift


def test_qerror_is_symmetric_and_floored():
    assert qerror(10, 10) == 1.0
    assert qerror(100, 10) == 10.0
    assert qerror(10, 100) == 10.0
    assert qerror(0, 0) == 1.0  # floor keeps empty results finite
    assert MISESTIMATE_Q > 1.0


def test_drift_tracks_per_operator_qerror(prof):
    conn, cur = populated(100)
    # The planner guesses 1/3 selectivity for a range predicate; a > 10
    # actually passes 89/100 rows, so FILTER drift is ~2.7 but below the
    # misestimate threshold.
    cur.execute("SELECT a FROM t WHERE a > 10")
    cur.fetchall()
    conn.close()
    drift = prof.snapshot()["drift"]
    assert drift["SeqScan"]["count"] == 1
    assert drift["SeqScan"]["mean_q"] == 1.0  # scan estimate is exact
    assert drift["FilterOp"]["count"] == 1
    assert 2.0 < drift["FilterOp"]["mean_q"] < 4.0
    assert drift["FilterOp"]["misestimates"] == 0


def test_misestimates_flagged_at_threshold(prof):
    conn, cur = populated(100)
    # Equality on a skewed non-indexed column: planner guesses ~10 rows,
    # zero match — q-error 10 >= 4 counts as a misestimate.
    cur.execute("SELECT a FROM t WHERE b = 'nope'")
    cur.fetchall()
    conn.close()
    drift = prof.snapshot()["drift"]
    assert drift["FilterOp"]["misestimates"] == 1
    assert drift["FilterOp"]["max_q"] >= MISESTIMATE_Q


# ---------------------------------------------------------------- renderers


def test_render_profile_text_ranks_and_summarizes(prof):
    conn, cur = populated()
    cur.execute("SELECT a FROM t WHERE a > 10")
    cur.fetchall()
    conn.close()
    text = render_profile_text(prof.snapshot(), top=5)
    assert "SELECT a FROM t WHERE a > ?" in text
    assert "statements tracked" in text
    assert "operator" in text  # the drift table


def test_render_flight_text_shows_est_vs_actual(prof):
    prof.slow_seconds = 0.0
    conn, cur = populated()
    cur.execute("SELECT a FROM t WHERE a > 10")
    cur.fetchall()
    conn.close()
    text = render_flight_text(prof.snapshot())
    assert "SCAN t AS t" in text
    assert "est=50 actual=50" in text


def test_render_profile_text_rejects_unknown_sort(prof):
    with pytest.raises(ValueError):
        render_profile_text(prof.snapshot(), sort="nope")


# ---------------------------------------------------------------- PTdf round trip


def test_profile_to_ptdf_lints_clean_and_loads(tmp_path, prof):
    conn, cur = populated()
    cur.execute("SELECT a FROM t WHERE a > 10")
    cur.fetchall()
    cur.execute("SELECT COUNT(*) FROM t")
    cur.fetchone()
    conn.close()
    profile = prof.snapshot()
    prof.disable()  # the store below runs its own minidb statements
    text = profile_to_ptdf("profile-test", profile=profile)
    diagnostics = Linter().lint_string(text)
    assert diagnostics == [], [str(d) for d in diagnostics]
    path = tmp_path / "profile.ptdf"
    path.write_text(text)
    store = PTDataStore()
    stats = store.load_file(str(path))
    assert stats.executions == 1
    assert store.executions() == ["profile-test"]
    statements = store.resources_of_type("execution/statement")
    assert len(statements) == len(profile["statements"])
    # Statement resources carry the fingerprint as an attribute.
    attrs = {a.name: a.value for a in store.attributes_of(statements[0].id)}
    assert "fingerprint" in attrs
    metric_names = set(store.metrics())
    assert "calls" in metric_names and "p95 time" in metric_names
    store.close()


# ---------------------------------------------------------------- overhead


def test_disabled_profiler_overhead_is_bounded():
    """A disabled record() exits on one predicate check — < 2 us/call."""
    p = StatementProfiler()
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        p.record("SELECT ?", "SELECT 1", 0.0)
    elapsed = time.perf_counter() - t0
    assert p.snapshot()["calls"] == 0
    assert elapsed < n * 2e-6, f"{elapsed / n * 1e9:.0f} ns per disabled record"


def test_disabled_profiler_keeps_query_path_unchanged():
    """With the profiler off the connection takes the untimed fast path:
    results are plain streams, no stats recorded anywhere."""
    assert not global_profiler.enabled
    conn, cur = populated(10)
    cur.execute("SELECT a FROM t WHERE a > 2")
    assert len(cur.fetchall()) == 7
    conn.close()
    assert global_profiler.snapshot()["statements"] == []


def test_enabled_profiler_within_tolerance_of_disabled(prof):
    """Profiled execution (with per-operator metering) stays within a
    generous 5x of the untimed path on a small scan workload; the
    scalability bench tracks the precise ratio in BENCH_scalability.json.
    """
    conn, cur = populated(2000)

    def drain():
        t0 = time.perf_counter()
        cur.execute("SELECT a FROM t WHERE a >= 0")
        n = len(cur.fetchall())
        assert n == 2000
        return time.perf_counter() - t0

    drain()  # warm plan cache
    enabled = min(drain() for _ in range(3))
    global_profiler.disable()
    disabled = min(drain() for _ in range(3))
    conn.close()
    assert enabled < disabled * 5, f"{enabled:.4f}s vs {disabled:.4f}s disabled"
