"""Exporters: text/JSON/Prometheus renders and the PTdf round trip."""

import json

import pytest

from repro.core import PTDataStore
from repro.obs.export import render_json, render_prometheus, render_text, to_ptdf
from repro.obs.metrics import MetricsRegistry
from repro.ptdf.lint import Linter


@pytest.fixture
def snapshot():
    r = MetricsRegistry(enabled=True)
    r.counter("minidb.statements").inc(42)
    r.counter("minidb.wal.bytes", unit="bytes").add(1024)
    r.gauge("ptdf.load.records_per_s", unit="records/s").set(80000.5)
    h = r.histogram("minidb.statement_seconds")
    for v in (0.001, 0.002, 0.5):
        h.observe(v)
    return r.snapshot()


def test_render_text(snapshot):
    text = render_text(snapshot)
    assert "minidb.statements" in text
    assert "42 count" in text
    assert "count=3" in text  # the histogram line


def test_render_json_round_trips(snapshot):
    doc = json.loads(render_json(snapshot))
    assert doc["minidb.statements"]["value"] == 42
    assert doc["minidb.statement_seconds"]["count"] == 3


def test_render_prometheus(snapshot):
    text = render_prometheus(snapshot)
    assert "minidb_statements_total 42" in text
    assert "ptdf_load_records_per_s 80000.5" in text
    assert 'minidb_statement_seconds_bucket{le="+Inf"} 3' in text
    assert "minidb_statement_seconds_count 3" in text
    # Cumulative buckets never decrease.
    counts = [
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("minidb_statement_seconds_bucket")
    ]
    assert counts == sorted(counts)


def test_render_prometheus_le_buckets_are_conformant():
    """Regression: ``le`` labels honour less-or-equal semantics.

    An observation exactly on a bucket bound must be counted by that
    bucket — 1.0 belongs to ``le="1"``, not only to ``le="2"`` — and the
    per-bound cumulative counts must equal the true number of
    observations <= bound.
    """
    r = MetricsRegistry(enabled=True)
    h = r.histogram("t.seconds")
    observations = (0.5, 1.0, 1.0, 2.0, 3.0)
    for v in observations:
        h.observe(v)
    text = render_prometheus(r.snapshot())
    buckets = {}
    for line in text.splitlines():
        if line.startswith("t_seconds_bucket"):
            label, _, count = line.partition("} ")
            le = label.split('le="', 1)[1].rstrip('"')
            bound = float("inf") if le == "+Inf" else float(le)
            buckets[bound] = int(count)
    for bound, cumulative in buckets.items():
        expected = sum(1 for v in observations if v <= bound)
        assert cumulative == expected, (bound, cumulative, expected)
    assert buckets[1.0] == 3  # 0.5, 1.0, 1.0 — the on-bound values count
    assert buckets[float("inf")] == len(observations)


def test_to_ptdf_lints_clean_strict(snapshot):
    text = to_ptdf("obs-test", snapshot=snapshot)
    diagnostics = Linter().lint_string(text)
    assert diagnostics == [], [str(d) for d in diagnostics]


def test_to_ptdf_loads_into_fresh_store(tmp_path, snapshot):
    text = to_ptdf("obs-test", snapshot=snapshot)
    path = tmp_path / "telemetry.ptdf"
    path.write_text(text)
    store = PTDataStore()
    stats = store.load_file(str(path))
    assert stats.executions == 1
    # One result per counter/gauge, four facets per non-empty histogram.
    assert stats.results == 3 + 4
    assert store.executions() == ["obs-test"]
    metric_names = set(store.metrics())
    assert "minidb.statements" in metric_names
    assert "minidb.statement_seconds (mean)" in metric_names
    store.close()
