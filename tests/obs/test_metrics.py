"""Metrics registry: correctness, isolation, thread safety, overhead."""

import math
import threading
import time

import pytest

import repro.minidb as minidb
from repro.obs.metrics import (
    MAX_EXP,
    MIN_EXP,
    Counter,
    Histogram,
    MetricsRegistry,
    metrics as global_metrics,
)


@pytest.fixture
def reg():
    return MetricsRegistry(enabled=True)


# ------------------------------------------------------------------- counters


def test_counter_inc_and_add(reg):
    c = reg.counter("c")
    c.inc()
    c.inc(4)
    c.add(10)
    assert c.value == 15


def test_counter_disabled_is_noop():
    r = MetricsRegistry()  # starts disabled
    c = r.counter("c")
    c.inc(100)
    assert c.value == 0
    r.enable()
    c.inc(1)
    assert c.value == 1
    r.disable()
    c.inc(1)
    assert c.value == 1


def test_same_name_returns_same_instrument(reg):
    assert reg.counter("x") is reg.counter("x")


def test_type_mismatch_raises(reg):
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


# --------------------------------------------------------------------- gauges


def test_gauge_set_inc_dec(reg):
    g = reg.gauge("g")
    g.set(10.0)
    g.inc(2.5)
    g.dec(0.5)
    assert g.value == 12.0


# ----------------------------------------------------------------- histograms


def test_histogram_stats(reg):
    h = reg.histogram("h")
    for v in (0.25, 0.5, 1.0, 4.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(5.75)
    assert h.mean == pytest.approx(5.75 / 4)
    snap = h._snapshot()
    assert snap["min"] == 0.25
    assert snap["max"] == 4.0


def test_histogram_bin_index_brackets_value():
    """Every finite-bin value v satisfies bound/2 < v <= bound.

    Bounds are le-inclusive so the Prometheus ``_bucket{le=...}`` series
    are conformant: a value exactly on a bound counts in that bucket.
    """
    for v in (1e-6, 0.001, 0.25, 1.0, 3.5, 100.0, 1000.0):
        i = Histogram.bin_index(v)
        bound = Histogram.bin_upper_bound(i)
        assert v <= bound
        assert v > bound / 2


def test_histogram_bin_bounds_are_le_inclusive():
    """Regression: an exact power of two lands in its own bound's bin."""
    for e in (-10, -1, 0, 1, 5):
        v = 2.0 ** e
        assert Histogram.bin_upper_bound(Histogram.bin_index(v)) == v


def test_histogram_underflow_and_overflow_bins():
    assert Histogram.bin_index(0.0) == 0
    assert Histogram.bin_index(2.0 ** (MIN_EXP - 3)) == 0
    # The smallest bound is itself le-inclusive.
    assert Histogram.bin_index(2.0 ** MIN_EXP) == 0
    assert math.isinf(Histogram.bin_upper_bound(Histogram.bin_index(2.0 ** (MAX_EXP + 4))))


def test_histogram_buckets_only_nonempty(reg):
    h = reg.histogram("h")
    h.observe(0.5)
    h.observe(0.5)
    h.observe(8.0)
    buckets = h.buckets()
    assert sum(n for _, n in buckets) == 3
    assert all(n > 0 for _, n in buckets)
    bounds = [b for b, _ in buckets]
    assert bounds == sorted(bounds)


# ------------------------------------------------------------------ snapshots


def test_snapshot_omits_zero_by_default(reg):
    reg.counter("fired").inc()
    reg.counter("never")
    reg.histogram("empty")
    snap = reg.snapshot()
    assert "fired" in snap
    assert "never" not in snap
    assert "empty" not in snap
    full = reg.snapshot(include_zero=True)
    assert "never" in full and "empty" in full


def test_snapshot_isolated_from_reset(reg):
    c = reg.counter("c")
    h = reg.histogram("h")
    c.inc(7)
    h.observe(0.5)
    snap = reg.snapshot()
    reg.reset()
    # The snapshot is a deep copy: reset must not reach into it.
    assert snap["c"]["value"] == 7
    assert snap["h"]["count"] == 1
    assert c.value == 0
    assert h.count == 0
    # Mutating the snapshot must not reach the registry either.
    snap["c"]["value"] = 999
    c.inc()
    assert c.value == 1


# -------------------------------------------------------------- thread safety


def test_counter_thread_safe(reg):
    c = reg.counter("c")
    n_threads, n_incs = 8, 5000

    def work():
        for _ in range(n_incs):
            c.inc()

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value == n_threads * n_incs


def test_histogram_thread_safe(reg):
    h = reg.histogram("h")
    n_threads, n_obs = 6, 2000

    def work():
        for _ in range(n_obs):
            h.observe(0.5)

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert h.count == n_threads * n_obs
    assert h.sum == pytest.approx(0.5 * n_threads * n_obs)


def test_concurrent_cursors_count_statements():
    """Engine instruments stay consistent under concurrent connections."""
    global_metrics.enable()
    global_metrics.reset()
    statements = global_metrics.counter("minidb.statements")
    errors = []
    per_thread = 40

    def work():
        try:
            conn = minidb.connect()
            cur = conn.cursor()
            cur.execute("CREATE TABLE t (a INTEGER)")
            for i in range(per_thread):
                cur.execute("INSERT INTO t VALUES (?)", (i,))
            cur.execute("SELECT COUNT(*) FROM t")
            assert cur.fetchone()[0] == per_thread
            conn.close()
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    try:
        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # CREATE + inserts + select, all four threads.
        assert statements.value == 4 * (per_thread + 2)
    finally:
        global_metrics.disable()
        global_metrics.reset()


# ------------------------------------------------------------------- overhead


def test_instrumented_load_within_tolerance_of_disabled(tmp_path):
    """Enabling the registry must not blow up a small load workload.

    A generous 3x bound: it cannot flake on a noisy CI box but still
    catches accidental per-row instrumentation on the hot path (the
    scalability bench tracks the precise overhead in
    BENCH_scalability.json).
    """
    from repro.core import PTDataStore
    from repro.obs.export import to_ptdf

    # A self-hosted workload: telemetry PTdf generated from a registry.
    r = MetricsRegistry(enabled=True)
    for i in range(300):
        r.counter(f"m{i}").inc(i + 1)
    path = tmp_path / "w.ptdf"
    path.write_text(to_ptdf("obs-overhead", registry=r))

    def timed_load():
        t0 = time.perf_counter()
        store = PTDataStore()
        store.load_file(str(path))
        store.close()
        return time.perf_counter() - t0

    timed_load()  # warm imports and caches
    disabled = min(timed_load() for _ in range(3))
    global_metrics.enable()
    try:
        enabled = min(timed_load() for _ in range(3))
    finally:
        global_metrics.disable()
        global_metrics.reset()
    assert enabled < disabled * 3, f"{enabled:.4f}s enabled vs {disabled:.4f}s disabled"


def test_disabled_counter_overhead_is_bounded():
    """A disabled inc() is one predicate check — generously < 2 us/call."""
    r = MetricsRegistry()
    c = r.counter("c")
    n = 200_000
    t0 = time.perf_counter()
    for _ in range(n):
        c.inc()
    elapsed = time.perf_counter() - t0
    assert c.value == 0
    assert elapsed < n * 2e-6, f"{elapsed / n * 1e9:.0f} ns per disabled inc"
