"""Span tracer: nesting, ring buffer, Chrome export, disabled no-op."""

import json

from repro.obs.tracing import _NULL_SPAN, Tracer


def test_nesting_depths():
    t = Tracer()
    t.enable()
    with t.span("outer"):
        with t.span("inner"):
            pass
        with t.span("sibling"):
            pass
    spans = t.spans()
    by_name = {s.name: s for s in spans}
    assert by_name["outer"].depth == 0
    assert by_name["inner"].depth == 1
    assert by_name["sibling"].depth == 1
    # Children close before the parent, so they are recorded first.
    assert [s.name for s in spans] == ["inner", "sibling", "outer"]


def test_ring_buffer_evicts_oldest():
    t = Tracer(capacity=4)
    t.enable()
    for i in range(6):
        with t.span(f"s{i}"):
            pass
    names = [s.name for s in t.spans()]
    assert names == ["s2", "s3", "s4", "s5"]


def test_chrome_event_shape():
    t = Tracer()
    t.enable()
    with t.span("load", cat="core", file="x.ptdf"):
        pass
    doc = t.to_chrome_trace()
    assert doc["displayTimeUnit"] == "ms"
    (event,) = doc["traceEvents"]
    assert event["name"] == "load"
    assert event["cat"] == "core"
    assert event["ph"] == "X"
    assert event["dur"] >= 0
    assert isinstance(event["ts"], float)
    assert event["args"] == {"file": "x.ptdf"}


def test_save_writes_json(tmp_path):
    t = Tracer()
    t.enable()
    with t.span("a"):
        pass
    path = tmp_path / "trace.json"
    assert t.save(str(path)) == 1
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == 1


def test_disabled_records_nothing_and_shares_null_span():
    t = Tracer()
    s = t.span("a")
    assert s is _NULL_SPAN
    assert s is t.span("b", cat="x", arg=1)
    with s:
        pass
    assert t.spans() == []


def test_clear():
    t = Tracer()
    t.enable()
    with t.span("a"):
        pass
    t.clear()
    assert t.spans() == []
