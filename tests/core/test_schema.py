"""Schema creation tests on both backends (paper Figure 1)."""

import pytest

from repro.core import schema as schema_mod
from repro.dbapi import open_backend
from repro.minidb.errors import IntegrityError


class TestSchemaCreation:
    def test_all_tables_created(self, backend):
        schema_mod.create_schema(backend)
        assert schema_mod.schema_is_present(backend)
        for t in schema_mod.TABLE_NAMES:
            assert backend.has_table(t), t

    def test_schema_absent_before_creation(self, backend):
        assert not schema_mod.schema_is_present(backend)

    def test_figure1_table_set(self):
        # Figure 1's tables plus the Section-6 complex-result extension.
        assert set(schema_mod.TABLE_NAMES) == {
            "performance_result_vector",
            "focus_framework",
            "application",
            "execution",
            "performance_tool",
            "metric",
            "resource_item",
            "resource_attribute",
            "resource_constraint",
            "resource_has_ancestor",
            "resource_has_descendant",
            "focus",
            "focus_has_resource",
            "performance_result",
            "performance_result_has_focus",
        }

    def test_unique_resource_name_enforced(self, backend):
        schema_mod.create_schema(backend)
        backend.execute(
            "INSERT INTO focus_framework (name, base_name) VALUES ('grid', 'grid')"
        )
        tid = backend.scalar("SELECT id FROM focus_framework WHERE name = 'grid'")
        backend.execute(
            "INSERT INTO resource_item (name, base_name, focus_framework_id) "
            "VALUES ('/m', 'm', ?)",
            (tid,),
        )
        with pytest.raises(IntegrityError):
            backend.execute(
                "INSERT INTO resource_item (name, base_name, focus_framework_id) "
                "VALUES ('/m', 'm', ?)",
                (tid,),
            )

    def test_fk_metric_enforced(self, backend):
        schema_mod.create_schema(backend)
        with pytest.raises(IntegrityError):
            backend.execute(
                "INSERT INTO performance_result "
                "(execution_id, metric_id, performance_tool_id, value, units) "
                "VALUES (1, 1, 1, 0.5, 's')"
            )

    def test_describe_schema_lists_every_table(self):
        text = "\n".join(schema_mod.describe_schema())
        for t in schema_mod.TABLE_NAMES:
            assert f"{t}:" in text

    def test_create_without_indexes(self, backend):
        schema_mod.create_schema(backend, with_indexes=False)
        assert schema_mod.schema_is_present(backend)
