"""Resource/ResourceType/ResourceTree model-object tests."""

import pytest

from repro.core.resources import Resource, ResourceTree, ResourceType


def _res(rid, name, type_name, parent=None):
    return Resource(
        id=rid, name=name, type_name=type_name, type_id=rid * 10, parent_id=parent
    )


class TestResourceType:
    def test_base_and_depth(self):
        t = ResourceType(1, "grid/machine/partition")
        assert t.base == "partition"
        assert t.depth == 3
        assert t.is_hierarchical

    def test_single_level(self):
        t = ResourceType(2, "application")
        assert t.base == "application"
        assert t.depth == 1
        assert not t.is_hierarchical


class TestResource:
    def test_derived_properties(self):
        r = _res(1, "/LLNL/Frost/batch", "grid/machine/partition")
        assert r.base == "batch"
        assert r.parent_name == "/LLNL/Frost"
        assert r.segments == ["LLNL", "Frost", "batch"]
        assert r.depth == 3

    def test_top_level(self):
        r = _res(1, "/LLNL", "grid")
        assert r.parent_name is None
        assert r.depth == 1


class TestResourceTree:
    @pytest.fixture
    def tree(self):
        root = ResourceTree(_res(1, "/M", "grid"))
        machine = ResourceTree(_res(2, "/M/frost", "grid/machine", 1))
        p1 = ResourceTree(_res(3, "/M/frost/b1", "grid/machine/partition", 2))
        p2 = ResourceTree(_res(4, "/M/frost/b2", "grid/machine/partition", 2))
        machine.children = [p1, p2]
        root.children = [machine]
        return root

    def test_walk_preorder(self, tree):
        names = [r.name for r in tree.walk()]
        assert names == ["/M", "/M/frost", "/M/frost/b1", "/M/frost/b2"]

    def test_render_indentation(self, tree):
        text = tree.render()
        lines = text.splitlines()
        assert lines[0] == "M"
        assert lines[1] == "  frost"
        assert lines[2] == "    b1"


class TestTreeFromStore:
    def test_build_tree_from_datastore(self, tiny_store):
        """Materialise a display tree by walking children_of."""

        def build(res):
            node = ResourceTree(res)
            node.children = [build(c) for c in tiny_store.children_of(res.id)]
            return node

        root = build(tiny_store.resource_by_name("/LLNL"))
        names = [r.name for r in root.walk()]
        assert "/LLNL/Frost/batch/n1/p1" in names
        assert len(names) == 1 + 1 + 1 + 2 + 4
