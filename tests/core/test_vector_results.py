"""Complex (vector) performance results — the Section-6 extension."""

import pytest

from repro.core import PrFilter, ByName, Expansion, PTDataStore
from repro.core.query import QueryEngine
from repro.ptdf.format import PerfResultSeriesRec, ResourceSet
from repro.ptdf.parser import parse_string
from repro.ptdf.writer import PTdfWriter, write_string


@pytest.fixture
def vstore(store):
    store.add_execution("e1", "app")
    store.add_resource("/e1", "execution", "e1")
    store.add_resource("/e1-global", "time")
    return store


class TestAddVectorResult:
    def test_single_result_row(self, vstore):
        pr_id = vstore.add_vector_result(
            "e1",
            ResourceSet(("/e1", "/e1-global")),
            "Paradyn",
            "cpu_inclusive",
            [1.0, None, 3.0, 4.0],
            units="paradyn units",
            start_time=0.0,
            bin_width=0.2,
        )
        assert vstore.count_rows("performance_result") == 1
        # None bins are not stored (the nan rule).
        assert vstore.count_rows("performance_result_vector") == 3
        vec = vstore.vector_of(pr_id)
        assert [v[0] for v in vec] == [0, 2, 3]
        assert vec[1][1] == pytest.approx(0.4)  # bin 2 starts at 2*0.2
        assert vec[1][2] == pytest.approx(0.6)

    def test_scalar_value_is_mean(self, vstore):
        pr_id = vstore.add_vector_result(
            "e1", ResourceSet(("/e1",)), "t", "m", [2.0, 4.0, None]
        )
        value = vstore.backend.scalar(
            "SELECT value FROM performance_result WHERE id = ?", (pr_id,)
        )
        assert value == pytest.approx(3.0)

    def test_value_type_marked(self, vstore):
        vstore.add_vector_result("e1", ResourceSet(("/e1",)), "t", "m", [1.0])
        vt = vstore.backend.scalar("SELECT value_type FROM performance_result")
        assert vt == "vector"

    def test_unknown_execution(self, vstore):
        with pytest.raises(Exception):
            vstore.add_vector_result("nope", ResourceSet(("/e1",)), "t", "m", [1.0])


class TestQueryVectorResults:
    def test_fetch_includes_series(self, vstore):
        vstore.add_vector_result(
            "e1", ResourceSet(("/e1", "/e1-global")), "Paradyn", "m",
            [1.0, None, 3.0], start_time=10.0, bin_width=0.5,
        )
        qe = QueryEngine(vstore)
        results = qe.fetch(PrFilter([ByName("/e1", Expansion.NONE)]))
        assert len(results) == 1
        r = results[0]
        assert r.is_vector
        assert r.series_values() == [1.0, 3.0]
        assert r.series[0] == (0, 10.0, 10.5, 1.0)
        assert r.value == pytest.approx(2.0)

    def test_scalar_results_have_empty_series(self, vstore):
        vstore.add_perf_result("e1", ResourceSet(("/e1",)), "t", "m", 5.0, "u")
        qe = QueryEngine(vstore)
        r = qe.fetch(PrFilter([ByName("/e1", Expansion.NONE)]))[0]
        assert not r.is_vector
        assert r.series == ()

    def test_mixed_fetch(self, vstore):
        vstore.add_perf_result("e1", ResourceSet(("/e1",)), "t", "scalar-m", 5.0, "u")
        vstore.add_vector_result("e1", ResourceSet(("/e1",)), "t", "vec-m", [1.0, 2.0])
        qe = QueryEngine(vstore)
        results = qe.fetch(PrFilter([ByName("/e1", Expansion.NONE)]))
        kinds = {r.metric: r.is_vector for r in results}
        assert kinds == {"scalar-m": False, "vec-m": True}

    def test_prfilter_applies_to_vectors(self, vstore):
        vstore.add_vector_result(
            "e1", ResourceSet(("/e1", "/e1-global")), "t", "m", [1.0]
        )
        qe = QueryEngine(vstore)
        assert len(qe.fetch(PrFilter([ByName("/e1-global", Expansion.NONE)]))) == 1
        assert qe.fetch(PrFilter([ByName("/nonexistent")])) == []


class TestPTdfSeriesRecord:
    def test_roundtrip(self):
        rec = PerfResultSeriesRec(
            "e1", (ResourceSet(("/e1",)),), "Paradyn", "cpu", "u", 0.0, 0.2,
            (1.5, None, 2.5),
        )
        assert parse_string(write_string([rec])) == [rec]

    def test_writer_helper(self):
        w = PTdfWriter()
        w.add_perf_result_series(
            "e1", ResourceSet(("/e1",)), "t", "m", "u", 0.0, 1.0, [1.0, None]
        )
        assert len(w) == 1
        assert w.records[0].values == (1.0, None)

    def test_load_through_store(self, vstore):
        text = (
            "PerfResultSeries e1 /e1(primary) Paradyn cpu u 0.0 0.25 1.0,nan,3.0\n"
        )
        stats = vstore.load_string(text)
        assert stats.results == 1
        assert vstore.count_rows("performance_result_vector") == 2

    def test_bad_series_value(self, vstore):
        from repro.ptdf.parser import PTdfParseError

        with pytest.raises(PTdfParseError):
            vstore.load_string(
                "PerfResultSeries e1 /e1(primary) t m u 0.0 0.25 1.0,bogus\n"
            )


class TestStorageEconomics:
    """The point of the extension: far fewer result/focus rows per histogram."""

    def test_series_mode_uses_fewer_rows(self):
        from repro.ptdf.ptdfgen import IndexEntry
        from repro.synth.paradyn_gen import ParadynSpec, generate_paradyn_export
        from repro.tools.paradyn import ParadynConverter
        import tempfile

        d = tempfile.mkdtemp()
        spec = ParadynSpec("ve1", processes=2, modules=4, functions_per_module=3,
                           histograms=4, bins=100)
        export = generate_paradyn_export(spec, d)
        entry = IndexEntry("ve1", "IRS", "MPI", 2, 1, "t0", "t1")

        stats = {}
        for mode in ("results", "series"):
            conv = ParadynConverter(bins_as=mode)
            w = PTdfWriter()
            w.add_application("IRS")
            w.add_execution("ve1", "IRS")
            conv.convert_index(export.index_path, entry, w)
            ds = PTDataStore()
            ds.load_records(w.records)
            stats[mode] = ds.db_stats()
        assert stats["series"]["performance_result"] == 4
        assert stats["results"]["performance_result"] > 200
        # Same measured values, one row per bin either way in the vector table.
        assert (
            stats["series"]["performance_result_vector"]
            == stats["results"]["performance_result"]
        )
        # Dramatically fewer resources (no per-bin time/interval resources).
        assert stats["series"]["resource_item"] < stats["results"]["resource_item"] / 5
