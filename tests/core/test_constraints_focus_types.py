"""Constraint filters and focus-type-restricted queries.

Covers two paper behaviours not exercised elsewhere:

* resource constraints as navigable relations ("if process 8 runs on node
  16, we would add an entry to resource_constraint"), and
* sender/receiver contexts for measurements that span processes ("such as
  the transit time of a message between two processes").
"""

import pytest

from repro.core import ByConstraint, ByName, Expansion, PrFilter
from repro.core.query import QueryEngine
from repro.ptdf.format import ResourceSet


@pytest.fixture
def transit_store(store):
    """Two processes on two nodes, message-transit results between them."""
    store.add_execution("mpi-run", "app")
    store.add_resource("/M/c/b/n16", "grid/machine/partition/node")
    store.add_resource("/M/c/b/n17", "grid/machine/partition/node")
    store.add_resource("/mpi-run", "execution", "mpi-run")
    store.add_resource("/mpi-run/p8", "execution/process", "mpi-run")
    store.add_resource("/mpi-run/p9", "execution/process", "mpi-run")
    # "if process 8 runs on node 16, we would add an entry to
    # resource_constraint containing the resources for process 8 and node 16"
    store.add_resource_constraint("/mpi-run/p8", "/M/c/b/n16")
    store.add_resource_constraint("/mpi-run/p9", "/M/c/b/n17")
    # Message transit time: one result, sender and receiver contexts.
    store.add_perf_result(
        "mpi-run",
        (
            ResourceSet(("/mpi-run", "/mpi-run/p8"), "sender"),
            ResourceSet(("/mpi-run", "/mpi-run/p9"), "receiver"),
        ),
        "tracer",
        "Message transit time",
        0.0042,
        "seconds",
    )
    # An ordinary per-process result for contrast.
    store.add_perf_result(
        "mpi-run",
        ResourceSet(("/mpi-run", "/mpi-run/p8")),
        "tracer",
        "CPU time",
        1.5,
        "seconds",
    )
    return store


class TestByConstraint:
    def test_processes_on_node(self, transit_store):
        fam = transit_store.resolve_filter(ByConstraint("/M/c/b/n16"))
        names = {transit_store.resource_by_id(i).name for i in fam.resource_ids}
        assert names == {"/mpi-run/p8"}

    def test_reverse_direction(self, transit_store):
        fam = transit_store.resolve_filter(
            ByConstraint("/mpi-run/p9", direction="from")
        )
        names = {transit_store.resource_by_id(i).name for i in fam.resource_ids}
        assert names == {"/M/c/b/n17"}

    def test_missing_target_empty(self, transit_store):
        assert len(transit_store.resolve_filter(ByConstraint("/nope"))) == 0

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            ByConstraint("/x", direction="sideways")

    def test_in_pr_filter(self, transit_store):
        """Results measured on the process that ran on node 16."""
        qe = QueryEngine(transit_store)
        prf = PrFilter([ByConstraint("/M/c/b/n16")])
        results = qe.fetch(prf)
        metrics = {r.metric for r in results}
        assert metrics == {"Message transit time", "CPU time"}

    def test_describe(self):
        assert "->" in ByConstraint("/x").describe()
        assert "<-" in ByConstraint("/x", direction="from").describe()


class TestFocusTypes:
    def test_transit_result_has_both_contexts(self, transit_store):
        qe = QueryEngine(transit_store)
        results = [
            r for r in qe.fetch(PrFilter()) if r.metric == "Message transit time"
        ]
        assert len(results) == 1
        types = sorted(c.focus_type for c in results[0].contexts)
        assert types == ["receiver", "sender"]

    def test_sender_restricted_query(self, transit_store):
        """Find transit times by their sending process only."""
        qe = QueryEngine(transit_store)
        fam = transit_store.resolve_filter(ByName("/mpi-run/p8", Expansion.NONE))
        sender_ids = qe.result_ids([fam], focus_type="sender")
        results = qe.fetch_results(sender_ids)
        assert [r.metric for r in results] == ["Message transit time"]

    def test_receiver_side_does_not_match_sender_query(self, transit_store):
        qe = QueryEngine(transit_store)
        fam = transit_store.resolve_filter(ByName("/mpi-run/p9", Expansion.NONE))
        assert qe.result_ids([fam], focus_type="sender") == set()
        assert len(qe.result_ids([fam], focus_type="receiver")) == 1

    def test_primary_restriction_excludes_transit(self, transit_store):
        qe = QueryEngine(transit_store)
        fam = transit_store.resolve_filter(ByName("/mpi-run", Expansion.DESCENDANTS))
        primary = qe.fetch_results(qe.result_ids([fam], focus_type="primary"))
        assert [r.metric for r in primary] == ["CPU time"]

    def test_empty_filter_with_focus_type(self, transit_store):
        qe = QueryEngine(transit_store)
        assert len(qe.result_ids([], focus_type="sender")) == 1
        assert len(qe.result_ids([], focus_type="child")) == 0

    def test_unrestricted_matches_either_context(self, transit_store):
        qe = QueryEngine(transit_store)
        fam = transit_store.resolve_filter(ByName("/mpi-run/p9", Expansion.NONE))
        results = qe.fetch_results(qe.result_ids([fam]))
        assert {r.metric for r in results} == {"Message transit time"}
