"""Scatter-gather pr-filter evaluation: parity with the serial engine."""

import pytest

from repro.core.datastore import PTDataStore
from repro.core.filters import (
    AttributeClause,
    ByAttributes,
    ByName,
    ByType,
    Expansion,
    FamilySpec,
    PrFilter,
)
from repro.core.query import QueryEngine, ShardedQueryEngine
from repro.core.shards import ShardedPTDataStore
from repro.ptdf.parser import parse_string

from .test_sharded_load import _corpus


@pytest.fixture(scope="module")
def stores():
    text = _corpus()
    serial = PTDataStore(backend_kind="minidb")
    serial.load_string(text)
    sharded = ShardedPTDataStore(n_shards=3)
    sharded.load_records(parse_string(text))
    yield serial, sharded
    serial.close()
    sharded.close()


FILTER_CASES = {
    "empty": PrFilter(),
    "machine-descendants": PrFilter([ByName("/LLNL/BGL", Expansion.DESCENDANTS)]),
    "machine-exact": PrFilter([ByName("/LLNL/BGL", Expansion.NONE)]),
    "node-ancestors": PrFilter(
        [ByName("/LLNL/BGL/batch/n2", Expansion.ANCESTORS)]
    ),
    "node-both": PrFilter([ByName("/LLNL/BGL/batch/n1", Expansion.BOTH)]),
    "conjunction": PrFilter(
        [
            ByName("/IRS/src/funcB", Expansion.NONE),
            ByName("/irs-3", Expansion.DESCENDANTS),
        ]
    ),
    "by-type": PrFilter([ByType("grid/machine/partition/node")]),
    "by-attribute": PrFilter(
        [ByAttributes((AttributeClause("memory MB", ">", "512"),))]
    ),
    "no-match": PrFilter(
        [
            ByName("/IRS/src/funcB", Expansion.NONE),
            ByName("/LLNL", Expansion.NONE),
        ]
    ),
}


class TestScatterGatherParity:
    @pytest.mark.parametrize("label", sorted(FILTER_CASES))
    def test_evaluate_matches_serial(self, stores, label):
        serial, sharded = stores
        prf = FILTER_CASES[label]
        assert QueryEngine(serial).evaluate(prf) == sharded.query_engine().evaluate(prf)

    def test_fetch_results_identical(self, stores):
        serial, sharded = stores
        prf = FILTER_CASES["machine-descendants"]
        ids = QueryEngine(serial).evaluate(prf)
        got = sharded.query_engine().fetch_results(ids)
        want = QueryEngine(serial).fetch_results(ids)
        assert got == want  # full objects: contexts, series, ordering

    def test_fetch_includes_vector_series(self, stores):
        serial, sharded = stores
        engine = sharded.query_engine()
        results = engine.fetch_results(engine.evaluate(PrFilter()))
        vectors = [r for r in results if r.value_type == "vector"]
        assert vectors and all(r.series for r in vectors)

    def test_count_for_family_matches(self, stores):
        serial, sharded = stores
        f = ByName("/LLNL/BGL", Expansion.DESCENDANTS)
        assert ShardedQueryEngine(sharded).count_for_family(
            serial.resolve_filter_spec(f)
        ) == QueryEngine(serial).count_for_family(serial.resolve_filter(f))

    def test_matching_focus_ids_union(self, stores):
        serial, sharded = stores
        f = ByName("/irs-1", Expansion.DESCENDANTS)
        assert ShardedQueryEngine(sharded).matching_focus_ids(
            serial.resolve_filter_spec(f)
        ) == QueryEngine(serial).matching_focus_ids(serial.resolve_filter(f))

    def test_accepts_eager_resource_family(self, stores):
        # ResourceFamily (fully expanded) and FamilySpec (pushdown) agree
        serial, sharded = stores
        f = ByName("/LLNL/BGL", Expansion.DESCENDANTS)
        engine = sharded.query_engine()
        eager = engine.result_ids([serial.resolve_filter(f)])
        pushed = engine.result_ids([serial.resolve_filter_spec(f)])
        assert eager == pushed


class TestFamilySpec:
    def test_resolve_filter_spec_descendants_stay_lazy(self, stores):
        serial, _ = stores
        spec = serial.resolve_filter_spec(
            ByName("/LLNL/BGL", Expansion.DESCENDANTS)
        )
        assert isinstance(spec, FamilySpec)
        assert spec.include_descendants
        assert spec.base_ids == frozenset({serial.resource_id("/LLNL/BGL")})
        assert spec.extra_ids == frozenset()

    def test_resolve_filter_spec_ancestors_eager(self, stores):
        serial, _ = stores
        spec = serial.resolve_filter_spec(
            ByName("/LLNL/BGL/batch/n2", Expansion.ANCESTORS)
        )
        assert not spec.include_descendants
        assert serial.resource_id("/LLNL") in spec.extra_ids
        assert serial.resource_id("/LLNL/BGL/batch/n2") in spec.base_ids

    def test_spec_membership_equals_eager_family(self, stores):
        serial, sharded = stores
        for f in (
            ByName("/LLNL/BGL", Expansion.BOTH),
            ByType("execution/process", Expansion.ANCESTORS),
        ):
            eager = serial.resolve_filter(f).resource_ids
            spec = serial.resolve_filter_spec(f)
            engine = ShardedQueryEngine(sharded)
            union = set(spec.base_ids) | set(spec.extra_ids)
            for i in range(sharded.n_shards):
                union |= engine._family_ids_on(sharded.shard_eval_index(i), spec)
            # per-shard expansion can only surface descendants that have
            # results; those are exactly the ones that can ever match
            assert union <= eager
            assert set(spec.base_ids) <= eager
