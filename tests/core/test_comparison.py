"""Comparison-operator tests (align/difference/ratio/distill)."""

import math

import pytest

from repro.core.comparison import (
    AlignedPair,
    align_executions,
    compare_executions,
    context_signature,
    distill,
    distill_results,
)
from repro.core import ByName, Expansion, PrFilter
from repro.core.query import QueryEngine


class TestDistill:
    def test_basic_stats(self):
        d = distill([1.0, 2.0, 3.0, 4.0])
        assert d.count == 4
        assert d.minimum == 1.0 and d.maximum == 4.0
        assert d.mean == 2.5 and d.total == 10.0
        assert math.isclose(d.stddev, math.sqrt(1.25))

    def test_imbalance(self):
        d = distill([1.0, 1.0, 2.0])
        assert math.isclose(d.imbalance, 2.0 / (4.0 / 3.0))

    def test_none_values_skipped(self):
        assert distill([1.0, None, 3.0]).count == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            distill([])

    def test_distill_results(self, tiny_store):
        qe = QueryEngine(tiny_store)
        results = qe.fetch(PrFilter([ByName("/irs-a", Expansion.DESCENDANTS)]))
        d = distill_results(results)
        assert d.count == 4
        assert d.minimum == 10.0 and d.maximum == 21.0


class TestContextSignature:
    def test_execution_resources_abstracted(self, tiny_store):
        qe = QueryEngine(tiny_store)
        a = qe.fetch(PrFilter([ByName("/irs-a", Expansion.DESCENDANTS)]))
        b = qe.fetch(PrFilter([ByName("/irs-b", Expansion.DESCENDANTS)]))
        sig_a = {context_signature(tiny_store, r) for r in a}
        sig_b = {context_signature(tiny_store, r) for r in b}
        # signatures overlap despite different executions/process counts
        assert sig_a & sig_b

    def test_code_resources_kept(self, tiny_store):
        qe = QueryEngine(tiny_store)
        r = qe.fetch(PrFilter([ByName("/IRS/src/funcA", Expansion.NONE)]))[0]
        sig = context_signature(tiny_store, r)
        assert "/IRS/src/funcA" in sig
        assert "<execution>" in sig


class TestAlign:
    def test_alignment_pairs_common_contexts(self, tiny_store):
        pairs = align_executions(tiny_store, "irs-a", "irs-b", metric="CPU time")
        common = [p for p in pairs if p.left is not None and p.right is not None]
        assert len(common) >= 2  # funcA and funcB on shared processors

    def test_difference_and_ratio(self):
        p = AlignedPair("m", ("sig",), 10.0, 15.0)
        assert p.difference == 5.0
        assert p.ratio == 1.5

    def test_missing_side(self):
        p = AlignedPair("m", (), None, 1.0)
        assert p.difference is None and p.ratio is None
        p2 = AlignedPair("m", (), 0.0, 1.0)
        assert p2.ratio is None

    def test_unknown_execution(self, tiny_store):
        with pytest.raises(ValueError):
            align_executions(tiny_store, "nope", "irs-a")


class TestCompareExecutions:
    def test_classification(self, tiny_store):
        cmp = compare_executions(tiny_store, "irs-a", "irs-b", metric="CPU time")
        assert cmp.left == "irs-a" and cmp.right == "irs-b"
        assert cmp.common
        # irs-b values are +0.5 on shared contexts: a mild regression
        regs = cmp.regressions(threshold=1.01)
        assert regs
        assert all(p.ratio >= 1.01 for p in regs)

    def test_improvements_empty_here(self, tiny_store):
        cmp = compare_executions(tiny_store, "irs-a", "irs-b", metric="CPU time")
        assert cmp.improvements(threshold=0.5) == []

    def test_reversed_comparison_flips(self, tiny_store):
        fwd = compare_executions(tiny_store, "irs-a", "irs-b", metric="CPU time")
        rev = compare_executions(tiny_store, "irs-b", "irs-a", metric="CPU time")
        assert len(fwd.common) == len(rev.common)
        f = {(p.metric, p.signature): p.ratio for p in fwd.common}
        r = {(p.metric, p.signature): p.ratio for p in rev.common}
        for key, ratio in f.items():
            assert math.isclose(ratio * r[key], 1.0)
