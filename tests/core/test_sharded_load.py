"""Sharded + parallel loading: differential identity against the serial
store, deterministic ids, crash handling and manifest behaviour."""

import os

import pytest

from repro.core.datastore import PTDataStore
from repro.core.pload import (
    ParallelLoadError,
    load_files,
    resolve_workers,
)
from repro.core.schema import SHARD_TABLE_NAMES, TABLE_NAMES
from repro.core.shards import ShardedPTDataStore, ShardRouter
from repro.minidb.errors import ProgrammingError
from repro.ptdf.format import ResourceSet
from repro.ptdf.lint import PTdfLintError
from repro.ptdf.parser import parse_string
from repro.ptdf.writer import PTdfWriter


def _corpus_writer(execs=range(6), procs=4):
    w = PTdfWriter()
    w.add_application("IRS")
    w.add_resource("/LLNL", "grid")
    w.add_resource("/LLNL/BGL", "grid/machine")
    w.add_resource("/LLNL/BGL/batch", "grid/machine/partition")
    for n in range(4):
        node = f"/LLNL/BGL/batch/n{n}"
        w.add_resource(node, "grid/machine/partition/node")
        w.add_resource_attribute(node, "memory MB", str(256 * (n + 1)))
    w.add_resource("/IRS", "build")
    w.add_resource("/IRS/src", "build/module")
    for fn in ("funcA", "funcB"):
        w.add_resource(f"/IRS/src/{fn}", "build/module/function")
    for e in execs:
        ename = f"irs-{e}"
        w.add_execution(ename, "IRS")
        w.add_resource(f"/{ename}", "execution", ename)
        for p in range(procs):
            pr = f"/{ename}/proc{p}"
            w.add_resource(pr, "execution/process", ename)
            for fn in ("funcA", "funcB"):
                node = f"/LLNL/BGL/batch/n{p % 4}"
                w.add_perf_result(
                    ename,
                    ResourceSet((f"/{ename}", pr, f"/IRS/src/{fn}", node)),
                    "testtool",
                    "CPU time",
                    e * 10.0 + p,
                    "seconds",
                )
        w.add_perf_result_series(
            ename,
            ResourceSet((f"/{ename}",)),
            "testtool",
            "mem",
            "MB",
            0.0,
            1.0,
            (1.0, None, 3.0),
        )
    return w


def _corpus():
    return _corpus_writer().render()


def _crash_task(path):  # must be module-level: workers import it by name
    os._exit(17)


def _serial_rows(store, table):
    return {tuple(r) for r in store.backend.query(f"SELECT * FROM {table}")}


def assert_identical(serial, sharded):
    for table in TABLE_NAMES:
        assert sharded.table_rows(table) == _serial_rows(serial, table), table


class TestShardRouter:
    def test_deterministic_and_in_range(self):
        router = ShardRouter(7)
        for eid in range(1, 2000):
            s = router.shard_of(eid)
            assert 0 <= s < 7
            assert s == router.shard_of(eid)

    def test_spreads_consecutive_ids(self):
        router = ShardRouter(4)
        hits = {router.shard_of(eid) for eid in range(1, 40)}
        assert hits == {0, 1, 2, 3}

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestShardedDifferential:
    def test_union_identical_to_serial(self):
        text = _corpus()
        serial = PTDataStore(backend_kind="minidb")
        serial.load_string(text)
        sharded = ShardedPTDataStore(n_shards=3)
        sharded.load_records(parse_string(text))
        assert_identical(serial, sharded)

    def test_results_partitioned_not_duplicated(self):
        sharded = ShardedPTDataStore(n_shards=3)
        sharded.load_records(parse_string(_corpus()))
        per_shard = [
            {r[0] for r in b.query("SELECT id FROM performance_result")}
            for b in sharded.shard_backends
        ]
        all_ids = set().union(*per_shard)
        assert sum(len(s) for s in per_shard) == len(all_ids)
        assert len(all_ids) == sharded.count_rows("performance_result")
        # catalog holds no fact rows
        assert _serial_rows(sharded.catalog, "performance_result") == set()

    def test_incremental_load_extends_ids(self):
        sharded = ShardedPTDataStore(n_shards=2)
        sharded.load_records(parse_string(_corpus_writer(range(3)).render()))
        sharded.load_records(
            parse_string(_corpus_writer(range(3, 6)).render())
        )
        serial = PTDataStore(backend_kind="minidb")
        serial.load_string(_corpus_writer(range(3)).render())
        serial.load_string(_corpus_writer(range(3, 6)).render())
        assert_identical(serial, sharded)

    def test_rollback_on_bad_record_restores_state(self):
        sharded = ShardedPTDataStore(n_shards=2)
        sharded.load_records(parse_string(_corpus()))
        sharded.commit()
        before = {t: sharded.table_rows(t) for t in TABLE_NAMES}
        bad = _corpus_writer(range(6, 8)).render() + (
            "\nPerfResult irs-7 /missing-resource(primary) "
            "tool metric 1.0 seconds\n"
        )
        with pytest.raises(ProgrammingError):
            sharded.load_records(parse_string(bad))
        for table in TABLE_NAMES:
            assert sharded.table_rows(table) == before[table], table
        # replication bookkeeping rebuilt: a clean retry still works
        sharded.load_records(parse_string(_corpus_writer(range(6, 8)).render()))

    def test_shard_indexes_built_after_load(self):
        sharded = ShardedPTDataStore(n_shards=2)
        sharded.load_records(parse_string(_corpus()))
        for backend in sharded.shard_backends:
            assert backend.has_index("idx_shard_pr_exec")
            assert backend.has_index("idx_shard_fhr_resource")

    def test_execution_details_counts_from_owning_shard(self):
        sharded = ShardedPTDataStore(n_shards=3)
        sharded.load_records(parse_string(_corpus()))
        details = sharded.execution_details("irs-2")
        assert details["results"] == 2 * 4 + 1  # scalar grid + one vector
        assert "CPU time" in details["metrics"]


class TestShardedDirectory:
    def test_persist_and_reopen(self, tmp_path):
        directory = str(tmp_path / "store")
        with ShardedPTDataStore(n_shards=2, directory=directory) as sharded:
            sharded.load_records(parse_string(_corpus()))
        assert os.path.exists(os.path.join(directory, "shards.json"))
        reopened = ShardedPTDataStore(directory=directory)
        assert reopened.n_shards == 2
        serial = PTDataStore(backend_kind="minidb")
        serial.load_string(_corpus())
        assert_identical(serial, reopened)

    def test_resharding_refused(self, tmp_path):
        directory = str(tmp_path / "store")
        ShardedPTDataStore(n_shards=2, directory=directory).close()
        with pytest.raises(ProgrammingError, match="resharding"):
            ShardedPTDataStore(n_shards=4, directory=directory)


class TestParallelLoad:
    def _write_files(self, tmp_path, parts=3):
        paths = []
        for i in range(parts):
            w = _corpus_writer(range(i * 2, i * 2 + 2)) if i == 0 else None
            if w is None:
                w = PTdfWriter()
                for e in range(i * 2, i * 2 + 2):
                    ename = f"irs-{e}"
                    w.add_execution(ename, "IRS")
                    w.add_resource(f"/{ename}", "execution", ename)
                    for p in range(4):
                        pr = f"/{ename}/proc{p}"
                        w.add_resource(pr, "execution/process", ename)
                        # cross-file refs to file 0's machine + build
                        w.add_perf_result(
                            ename,
                            ResourceSet(
                                (f"/{ename}", pr, "/IRS/src/funcA",
                                 f"/LLNL/BGL/batch/n{p % 4}")
                            ),
                            "testtool",
                            "CPU time",
                            float(e + p),
                            "seconds",
                        )
            path = str(tmp_path / f"part{i}.ptdf")
            w.write(path)
            paths.append(path)
        return paths

    def test_parallel_equals_serial(self, tmp_path):
        paths = self._write_files(tmp_path)
        serial = PTDataStore(backend_kind="minidb")
        for p in paths:
            serial.load_file(p)
        sharded = ShardedPTDataStore(n_shards=2)
        load_files(sharded, paths, workers=2, lint=True)
        assert_identical(serial, sharded)

    def test_parallel_plain_store_equals_serial(self, tmp_path):
        paths = self._write_files(tmp_path)
        serial = PTDataStore(backend_kind="minidb")
        for p in paths:
            serial.load_file(p)
        parallel = PTDataStore(backend_kind="minidb")
        load_files(parallel, paths, workers=2, lint=True)
        for table in TABLE_NAMES:
            assert _serial_rows(parallel, table) == _serial_rows(
                serial, table
            ), table

    def test_lint_gate_blocks_before_any_write(self, tmp_path):
        bad = tmp_path / "bad.ptdf"
        bad.write_text('Resource "/r1" "execution" "irs-none"\n')
        sharded = ShardedPTDataStore(n_shards=2)
        with pytest.raises(PTdfLintError) as excinfo:
            load_files(sharded, [str(bad)], workers=2, lint=True)
        assert any(d.code == "PT006" for d in excinfo.value.diagnostics)
        assert sharded.count_rows("performance_result") == 0

    def test_parse_error_becomes_pt000_diagnostic(self, tmp_path):
        bad = tmp_path / "bad.ptdf"
        bad.write_text('PerfResult "e" too many fields here oops "x" 1 2 3\n')
        with pytest.raises(PTdfLintError) as excinfo:
            load_files(
                ShardedPTDataStore(n_shards=2), [str(bad)], workers=2,
                lint=True,
            )
        assert any(d.code == "PT000" for d in excinfo.value.diagnostics)

    def test_worker_crash_raises_structured_error(self, tmp_path, monkeypatch):
        import repro.core.pload as pload_mod

        ok = tmp_path / "ok.ptdf"
        ok.write_text('Application "x"\n')
        monkeypatch.setattr(pload_mod, "_parse_task", _crash_task)
        with pytest.raises(ParallelLoadError) as excinfo:
            load_files(
                ShardedPTDataStore(n_shards=2), [str(ok)], workers=2,
                lint=False,
            )
        assert excinfo.value.phase == "parse"
        assert "worker process died" in excinfo.value.cause

    def test_workers_env_and_validation(self, monkeypatch):
        monkeypatch.setenv("PTRACK_WORKERS", "3")
        assert resolve_workers(None) == 3
        monkeypatch.setenv("PTRACK_WORKERS", "nope")
        with pytest.raises(ValueError):
            resolve_workers(None)
        monkeypatch.delenv("PTRACK_WORKERS")
        assert resolve_workers(None) == 0
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_serial_fallback_matches(self, tmp_path):
        paths = self._write_files(tmp_path)
        a = ShardedPTDataStore(n_shards=2)
        load_files(a, paths, workers=0, lint=True)
        b = ShardedPTDataStore(n_shards=2)
        load_files(b, paths, workers=2, lint=True)
        for table in TABLE_NAMES:
            assert a.table_rows(table) == b.table_rows(table), table


class TestShardSchema:
    def test_shard_tables_subset_of_schema(self):
        assert set(SHARD_TABLE_NAMES) <= set(TABLE_NAMES)

    def test_sharded_tables_have_no_fks_on_shards(self):
        sharded = ShardedPTDataStore(n_shards=1)
        sharded.load_records(parse_string(_corpus()))
        backend = sharded.shard_backends[0]
        # execution rows live only in the catalog; had the shard schema
        # kept its FK, these fact rows could never have been inserted
        assert backend.scalar("SELECT COUNT(*) FROM performance_result") > 0
        assert not backend.has_table("execution")
