"""The bulk load path must be indistinguishable from the per-row path.

Byte-identity is the contract: same rows, same rowids, same id counters,
same LoadStats — so snapshots, WALs and every downstream query agree no
matter which path loaded the data.  A failed bulk load must leave the
store exactly as it was.
"""

import pytest

from repro.core import PTDataStore
from repro.minidb.errors import ProgrammingError
from repro.ptdf.format import (
    ApplicationRec,
    ExecutionRec,
    PerfResultRec,
    PerfResultSeriesRec,
    ResourceAttributeRec,
    ResourceConstraintRec,
    ResourceRec,
    ResourceSet,
    ResourceTypeRec,
)

MACHINE_TYPE = "grid/machine/node/processor"
CODE_TYPE = "application/module/function"


def sample_records(run: str = "run-1"):
    """One small but full-coverage PTdf stream (every record kind)."""
    recs = [
        ApplicationRec("irs"),
        ResourceTypeRec(MACHINE_TYPE),
        ResourceTypeRec(CODE_TYPE),
        ResourceTypeRec("execution"),
        ResourceTypeRec("time"),
        ExecutionRec(run, "irs"),
        ResourceRec(f"/grid/mcr/node3/cpu1-{run}", MACHINE_TYPE),
        ResourceRec(f"/grid/mcr/node3/cpu2-{run}", MACHINE_TYPE),
        ResourceRec("/irs/src/matsolve", CODE_TYPE),
        ResourceRec(f"/{run}", "execution", execution=run),
        ResourceRec("/all", "time"),
        ResourceAttributeRec(f"/{run}", "trial", "3", "string"),
        ResourceAttributeRec(
            f"/{run}", "ran-on", f"/grid/mcr/node3/cpu1-{run}", "resource"
        ),
        ResourceConstraintRec(f"/{run}", f"/grid/mcr/node3/cpu2-{run}"),
    ]
    for i, cpu in enumerate((f"cpu1-{run}", f"cpu2-{run}")):
        recs.append(
            PerfResultRec(
                execution=run,
                resource_sets=(
                    ResourceSet((f"/grid/mcr/node3/{cpu}", "/irs/src/matsolve")),
                ),
                tool="mpiP",
                metric="wall_time",
                value=10.5 + i,
                units="seconds",
            )
        )
    recs.append(
        PerfResultSeriesRec(
            execution=run,
            resource_sets=(ResourceSet((f"/grid/mcr/node3/cpu1-{run}", "/all"),)),
            tool="SvPablo",
            metric="flops",
            units="mflops",
            start_time=0.0,
            bin_width=0.5,
            values=(1.0, None, 3.0, 4.0),
        )
    )
    return recs


def full_state(store):
    db = store.backend.connection.db
    return {
        name: (
            dict(db.table(name).rows),
            db.table(name).next_rowid,
            db.table(name).next_auto,
        )
        for name in db.catalog.tables
    }


def test_bulk_and_per_row_paths_are_byte_identical():
    bulk, per_row = PTDataStore(), PTDataStore(bulk_load=False)
    stats_b = [bulk.load_records(sample_records(f"run-{i}")) for i in range(3)]
    stats_p = [per_row.load_records(sample_records(f"run-{i}")) for i in range(3)]
    assert stats_b == stats_p
    assert full_state(bulk) == full_state(per_row)


def test_bulk_flag_per_call_overrides_store_default():
    a, b = PTDataStore(), PTDataStore()
    a.load_records(sample_records(), bulk=True)
    b.load_records(sample_records(), bulk=False)
    assert full_state(a) == full_state(b)


def test_stats_count_every_kind():
    stats = PTDataStore().load_records(sample_records())
    assert stats.applications == 1
    assert stats.executions == 1
    assert stats.results == 3
    assert stats.attributes == 2
    assert stats.constraints == 1
    assert stats.resources > 0
    assert stats.foci > 0


def test_failed_bulk_load_leaves_store_untouched():
    store = PTDataStore()
    store.load_records(sample_records("run-0"))
    before = full_state(store)
    bad = sample_records("run-1")
    # Unknown execution mid-stream: the whole load must be rolled back.
    bad.insert(
        len(bad) - 1,
        PerfResultRec(
            execution="never-loaded",
            resource_sets=(ResourceSet(("/all",)),),
            tool="mpiP",
            metric="wall_time",
            value=1.0,
            units="seconds",
        ),
    )
    with pytest.raises(ProgrammingError):
        store.load_records(bad)
    assert full_state(store) == before
    # The store is still usable and consistent after the failure.
    stats = store.load_records(sample_records("run-1"))
    assert stats.results == 3


def test_failed_bulk_load_rewinds_caches():
    store = PTDataStore()
    store.load_records(sample_records("run-0"))
    exec_ids = dict(store._exec_ids)
    bad = [
        ExecutionRec("ghost", "irs"),
        PerfResultRec(
            execution="missing",
            resource_sets=(ResourceSet(("/nowhere",)),),
            tool="t",
            metric="m",
            value=1.0,
            units="u",
        ),
    ]
    with pytest.raises(ProgrammingError):
        store.load_records(bad)
    assert store._exec_ids == exec_ids  # "ghost" did not survive the failure
