"""Prediction/model tests (Section-6 extension)."""

import math

import pytest

from repro.core import ByName, Expansion, PrFilter
from repro.core.predictions import (
    AmdahlCommModel,
    compare_predictions,
    cross_validate,
    fit_amdahl_comm,
    fit_model_to_history,
    store_predictions,
)
from repro.core.query import QueryEngine


class TestAmdahlCommModel:
    def test_predict_formula(self):
        m = AmdahlCommModel(serial=2.0, parallel=100.0, comm=0.5)
        assert m.predict(1) == pytest.approx(102.0)
        assert m.predict(4) == pytest.approx(2.0 + 25.0 + 1.0)

    def test_describe(self):
        m = AmdahlCommModel(1.0, 2.0, 3.0)
        assert "t(p) =" in m.describe()


class TestFitting:
    def test_exact_recovery(self):
        true = AmdahlCommModel(serial=3.0, parallel=240.0, comm=0.7)
        points = [(p, true.predict(p)) for p in (1, 2, 4, 8, 16, 64)]
        fit = fit_amdahl_comm(points)
        assert fit.serial == pytest.approx(3.0, abs=1e-6)
        assert fit.parallel == pytest.approx(240.0, rel=1e-6)
        assert fit.comm == pytest.approx(0.7, abs=1e-6)

    def test_noisy_fit_close(self):
        import numpy as np

        rng = np.random.default_rng(42)
        true = AmdahlCommModel(2.0, 300.0, 1.0)
        points = [
            (p, true.predict(p) * float(rng.uniform(0.97, 1.03)))
            for p in (1, 2, 4, 8, 16, 32, 64)
        ]
        fit = fit_amdahl_comm(points)
        for p in (2, 128):
            assert abs(fit.predict(p) - true.predict(p)) / true.predict(p) < 0.25

    def test_requires_three_distinct_counts(self):
        with pytest.raises(ValueError):
            fit_amdahl_comm([(2, 10.0), (2, 11.0), (4, 6.0)])

    def test_negative_coefficients_clamped(self):
        # Superlinear data would fit negative serial time; clamp at 0.
        points = [(1, 100.0), (2, 40.0), (4, 15.0), (8, 5.0)]
        fit = fit_amdahl_comm(points)
        assert fit.serial >= 0 and fit.parallel >= 0 and fit.comm >= 0


@pytest.fixture
def history_store(store):
    """Executions following a known scaling law with nproc attributes."""
    true = AmdahlCommModel(2.0, 200.0, 0.8)
    store.add_application("app")
    from repro.ptdf.format import ResourceSet

    for p in (2, 4, 8, 16, 32):
        name = f"run-p{p:03d}"
        store.add_execution(name, "app")
        store.add_resource(f"/{name}", "execution", name)
        store.add_resource_attribute(f"/{name}", "number of processes", str(p))
        store.add_perf_result(
            name, ResourceSet((f"/{name}",)), "timer", "Wall time", true.predict(p),
            "seconds",
        )
    return store, true


class TestHistoryFitting:
    def test_fit_model_to_history(self, history_store):
        store, true = history_store
        execs = [f"run-p{p:03d}" for p in (2, 4, 8, 16, 32)]
        model, points = fit_model_to_history(store, execs, "Wall time")
        assert len(points) == 5
        assert model.predict(64) == pytest.approx(true.predict(64), rel=0.01)

    def test_compare_predictions(self, history_store):
        store, true = history_store
        execs = [f"run-p{p:03d}" for p in (2, 4, 8, 16, 32)]
        model, _ = fit_model_to_history(store, execs, "Wall time")
        rows = compare_predictions(store, model, execs, "Wall time")
        assert len(rows) == 5
        assert all(r.relative_error < 0.01 for r in rows)

    def test_cross_validate(self, history_store):
        store, _ = history_store
        execs = [f"run-p{p:03d}" for p in (2, 4, 8, 16, 32)]
        rows = cross_validate(store, execs, "Wall time")
        assert len(rows) == 5
        assert all(r.relative_error < 0.05 for r in rows)

    def test_cross_validate_needs_four(self, history_store):
        store, _ = history_store
        with pytest.raises(ValueError):
            cross_validate(store, ["run-p002", "run-p004"], "Wall time")


class TestStorePredictions:
    def test_predictions_queryable(self, history_store):
        store, true = history_store
        created = store_predictions(
            store, true, "app", "Wall time", process_counts=(64, 128)
        )
        assert len(created) == 2
        qe = QueryEngine(store)
        results = qe.fetch(PrFilter([ByName(f"/{created[0]}", Expansion.NONE)]))
        assert len(results) == 1
        r = results[0]
        assert r.tool == "prediction:amdahl-comm"
        assert r.value == pytest.approx(true.predict(64))

    def test_prediction_attributes(self, history_store):
        store, true = history_store
        created = store_predictions(store, true, "app", "Wall time", (64,))
        rid = store.resource_id(f"/{created[0]}")
        attrs = {a.name: a.value for a in store.attributes_of(rid)}
        assert attrs["number of processes"] == "64"
        assert "t(p) =" in attrs["model"]

    def test_repeated_store_gets_unique_names(self, history_store):
        store, true = history_store
        a = store_predictions(store, true, "app", "Wall time", (64,))
        b = store_predictions(store, true, "app", "Wall time", (64,))
        assert a[0] != b[0]

    def test_direct_comparison_to_actual(self, history_store):
        """The paper's goal: predictions comparable to actual runs."""
        store, true = history_store
        created = store_predictions(store, true, "app", "Wall time", (16,))
        from repro.core.diagnosis import scaling_study

        pts = scaling_study(store, [created[0], "run-p016"], "Wall time")
        assert len(pts) == 2
        values = [pt.value for pt in pts]
        assert values[0] == pytest.approx(values[1], rel=0.01)
