"""Diagnosis-helper tests: load balance, scaling, bottlenecks, history."""

import pytest

from repro.core.diagnosis import (
    ScalingPoint,
    load_balance,
    rank_bottlenecks,
    scaling_study,
    scan_history,
)


class TestLoadBalance:
    def test_whole_execution(self, tiny_store):
        rep = load_balance(tiny_store, "irs-a", "CPU time")
        assert rep.stats.count == 4
        assert rep.spread == rep.stats.maximum - rep.stats.minimum

    def test_single_function(self, tiny_store):
        rep = load_balance(tiny_store, "irs-a", "CPU time", function="/IRS/src/funcA")
        assert rep.stats.count == 2
        assert rep.stats.minimum == 10.0 and rep.stats.maximum == 11.0

    def test_missing_data_raises(self, tiny_store):
        with pytest.raises(ValueError):
            load_balance(tiny_store, "irs-a", "no such metric")


class TestScaling:
    def test_points_sorted_by_nproc(self, tiny_store):
        # attach nproc attributes to the execution resources
        for name, p in (("irs-a", 2), ("irs-b", 4)):
            tiny_store.add_resource_attribute(
                f"/{name}", "number of processes", str(p)
            )
        pts = scaling_study(tiny_store, ["irs-b", "irs-a"], "CPU time")
        assert [pt.processes for pt in pts] == [2, 4]

    def test_speedup_efficiency(self):
        base = ScalingPoint("e1", 1, 100.0)
        p4 = ScalingPoint("e4", 4, 30.0)
        assert p4.speedup(base) == pytest.approx(100.0 / 30.0)
        assert p4.efficiency(base) == pytest.approx(100.0 / 30.0 / 4)

    def test_fallback_nproc_from_result_count(self, tiny_store):
        pts = scaling_study(tiny_store, ["irs-a"], "CPU time")
        assert pts[0].processes == 4  # 4 results for irs-a


class TestBottlenecks:
    def test_ranking_order_and_shares(self, tiny_store):
        ranked = rank_bottlenecks(
            tiny_store, "irs-a", "CPU time", type_path="build/module/function"
        )
        assert [b.label for b in ranked] == ["/IRS/src/funcB", "/IRS/src/funcA"]
        assert ranked[0].value > ranked[1].value
        assert sum(b.share for b in ranked) == pytest.approx(1.0)

    def test_top_limit(self, tiny_store):
        ranked = rank_bottlenecks(
            tiny_store, "irs-a", "CPU time", type_path="build/module/function", top=1
        )
        assert len(ranked) == 1


class TestHistoryScan:
    def test_regressions_found(self, tiny_store):
        regs = scan_history(
            tiny_store, ["irs-a", "irs-b"], metric="CPU time", threshold=1.01
        )
        assert regs
        for r in regs:
            assert r.after > r.before
            assert r.factor > 1.0

    def test_high_threshold_empty(self, tiny_store):
        assert (
            scan_history(tiny_store, ["irs-a", "irs-b"], metric="CPU time", threshold=3.0)
            == []
        )

    def test_single_execution_no_pairs(self, tiny_store):
        assert scan_history(tiny_store, ["irs-a"], metric="CPU time") == []
