"""QueryEngine tests: materialisation, counts, free resources."""

import pytest

from repro.core import ByName, ByType, Expansion, PrFilter
from repro.core.query import QueryEngine, _chunks


class TestChunks:
    def test_small_list_single_chunk(self):
        assert list(_chunks([1, 2, 3], 10)) == [[1, 2, 3]]

    def test_exact_boundary(self):
        chunks = list(_chunks(list(range(800)), 400))
        assert [len(c) for c in chunks] == [400, 400]

    def test_empty(self):
        assert list(_chunks([], 400)) == []


class TestFetchResults:
    def test_materialised_fields(self, tiny_store):
        qe = QueryEngine(tiny_store)
        results = qe.fetch(PrFilter([ByName("/irs-a", Expansion.DESCENDANTS)]))
        assert len(results) == 4
        r = results[0]
        assert r.execution == "irs-a"
        assert r.tool == "testtool"
        assert r.units == "seconds"
        assert r.metric == "CPU time"
        assert len(r.contexts) == 1
        assert len(r.contexts[0].resource_ids) == 4

    def test_fetch_empty(self, tiny_store):
        qe = QueryEngine(tiny_store)
        assert qe.fetch_results([]) == []
        assert qe.fetch_results([99999]) == []

    def test_context_focus_types(self, tiny_store):
        qe = QueryEngine(tiny_store)
        results = qe.fetch(PrFilter([ByName("/irs-a", Expansion.DESCENDANTS)]))
        assert all(c.focus_type == "primary" for r in results for c in r.contexts)

    def test_resource_ids_union(self, tiny_store):
        qe = QueryEngine(tiny_store)
        r = qe.fetch(PrFilter([ByName("/irs-a", Expansion.DESCENDANTS)]))[0]
        assert r.resource_ids == r.contexts[0].resource_ids

    def test_large_id_list_chunks(self, tiny_store):
        # Exercise the chunked-IN path with a fake large id list.
        qe = QueryEngine(tiny_store)
        ids = list(range(1, 1200))
        results = qe.fetch_results(ids)
        assert len(results) == 12  # only the real ids resolve


class TestCounts:
    def test_counts_shrink_with_conjunction(self, tiny_store):
        qe = QueryEngine(tiny_store)
        fam_fn = tiny_store.resolve_filter(ByName("/IRS/src/funcA", Expansion.NONE))
        fam_exec = tiny_store.resolve_filter(ByName("/irs-a", Expansion.DESCENDANTS))
        c_fn = qe.count_for_family(fam_fn)
        c_exec = qe.count_for_family(fam_exec)
        c_both = qe.count_for_filter([fam_fn, fam_exec])
        assert c_both <= min(c_fn, c_exec)
        assert (c_fn, c_exec, c_both) == (6, 4, 2)

    def test_empty_family_yields_zero(self, tiny_store):
        qe = QueryEngine(tiny_store)
        fam = tiny_store.resolve_filter(ByName("/nope"))
        assert qe.count_for_family(fam) == 0
        assert qe.count_for_filter([fam]) == 0


class TestFreeResources:
    def test_varying_types_listed(self, tiny_store):
        qe = QueryEngine(tiny_store)
        results = qe.fetch(PrFilter([ByName("/irs-a", Expansion.DESCENDANTS)]))
        free = qe.free_resources(results)
        # function and processor and process vary across the 4 results
        assert "build/module/function" in free
        assert "grid/machine/partition/node/processor" in free
        assert set(free["build/module/function"]) == {"/IRS/src/funcA", "/IRS/src/funcB"}

    def test_identical_type_hidden(self, tiny_store):
        qe = QueryEngine(tiny_store)
        results = qe.fetch(PrFilter([ByName("/irs-a", Expansion.DESCENDANTS)]))
        free = qe.free_resources(results)
        # every context includes /irs-a itself: identical -> hidden
        assert "execution" not in free

    def test_specified_ids_excluded(self, tiny_store):
        qe = QueryEngine(tiny_store)
        fam = tiny_store.resolve_filter(ByName("/IRS/src/funcA", Expansion.NONE))
        results = qe.fetch_results(qe.result_ids([fam]))
        free = qe.free_resources(results, specified_ids=set(fam.resource_ids))
        assert "build/module/function" not in free

    def test_names_of_type_for_result(self, tiny_store):
        qe = QueryEngine(tiny_store)
        r = qe.fetch(PrFilter([ByName("/irs-a", Expansion.DESCENDANTS)]))[0]
        fns = qe.resource_names_of_type_for_result(r, "build/module/function")
        assert len(fns) == 1 and fns[0].startswith("/IRS/src/func")
        assert qe.resource_names_of_type_for_result(r, "time") == []


class TestByTypeQueries:
    def test_machine_level_only(self, tiny_store):
        # "only those results that are machine-level measurements"
        from repro.ptdf.format import ResourceSet

        tiny_store.add_perf_result(
            "irs-a",
            ResourceSet(("/LLNL/Frost",)),
            "testtool",
            "Total power",
            42.0,
            "kW",
        )
        qe = QueryEngine(tiny_store)
        results = qe.fetch(PrFilter([ByType("grid/machine")]))
        assert [r.metric for r in results] == ["Total power"]
