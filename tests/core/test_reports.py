"""Text report tests."""

from repro.core.datastore import LoadStats
from repro.core.reports import (
    application_report,
    execution_report,
    load_report,
    store_summary,
)


class TestStoreSummary:
    def test_contains_all_tables(self, tiny_store):
        text = store_summary(tiny_store)
        assert "resource_item" in text
        assert "performance_result" in text
        assert "applications: IRS" in text

    def test_counts_present(self, tiny_store):
        text = store_summary(tiny_store)
        assert "executions: 2" in text


class TestApplicationReport:
    def test_lists_executions(self, tiny_store):
        text = application_report(tiny_store, "IRS")
        assert "irs-a" in text and "irs-b" in text
        assert "Application: IRS" in text


class TestExecutionReport:
    def test_details(self, tiny_store):
        text = execution_report(tiny_store, "irs-a")
        assert "application:      IRS" in text
        assert "CPU time" in text

    def test_attributes_included(self, tiny_store):
        tiny_store.add_resource_attribute("/irs-a", "number of processes", "2")
        text = execution_report(tiny_store, "irs-a")
        assert "number of processes" in text


class TestLoadReport:
    def test_all_fields_rendered(self):
        stats = LoadStats(executions=3, resources=50, attributes=9, results=120, foci=40)
        text = load_report("IRS", stats, ptdf_files=3, ptdf_lines=200, db_growth_bytes=4096)
        assert "executions loaded" in text
        assert "120" in text
        assert "PTdf files" in text
        assert "4096" in text

    def test_optional_fields_omitted(self):
        text = load_report("IRS", LoadStats())
        assert "PTdf files" not in text
        assert "DB growth" not in text
