"""Algebraic properties of pr-filter evaluation, via hypothesis.

These hold by the Section-2.2 semantics and must hold in the SQL
implementation:

* **monotonicity** — adding a family to a pr-filter never grows the
  result set (∀-quantification only gets stricter);
* **family-order irrelevance** — a pr-filter is a *set* of families;
* **expansion monotonicity** — widening a family (N → D → B) never
  shrinks its match count;
* **focus-type restriction** — restricting to one focus type yields a
  subset of the unrestricted result.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import ByName, Expansion, PrFilter
from repro.core.query import QueryEngine

NAMES = [
    "/IRS/src/funcA",
    "/IRS/src/funcB",
    "/irs-a",
    "/irs-b",
    "/LLNL/Frost",
    "/LLNL/Frost/batch/n0",
    "/LLNL/Frost/batch/n1/p1",
    "batch",
    "p0",
]

_shared = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


class TestFilterAlgebra:
    @_shared
    @given(
        picks=st.lists(st.sampled_from(NAMES), min_size=1, max_size=3),
        extra=st.sampled_from(NAMES),
    )
    def test_adding_family_is_monotone(self, tiny_store, picks, extra):
        qe = QueryEngine(tiny_store)
        base = qe.evaluate(PrFilter([ByName(n) for n in picks]))
        tightened = qe.evaluate(PrFilter([ByName(n) for n in picks + [extra]]))
        assert tightened <= base

    @_shared
    @given(picks=st.lists(st.sampled_from(NAMES), min_size=2, max_size=4))
    def test_family_order_irrelevant(self, tiny_store, picks):
        qe = QueryEngine(tiny_store)
        fwd = qe.evaluate(PrFilter([ByName(n) for n in picks]))
        rev = qe.evaluate(PrFilter([ByName(n) for n in reversed(picks)]))
        assert fwd == rev

    @_shared
    @given(name=st.sampled_from(NAMES))
    def test_duplicate_family_is_idempotent(self, tiny_store, name):
        qe = QueryEngine(tiny_store)
        once = qe.evaluate(PrFilter([ByName(name)]))
        twice = qe.evaluate(PrFilter([ByName(name), ByName(name)]))
        assert once == twice

    @_shared
    @given(name=st.sampled_from(NAMES))
    def test_expansion_monotone(self, tiny_store, name):
        qe = QueryEngine(tiny_store)
        counts = {}
        for exp in (Expansion.NONE, Expansion.DESCENDANTS, Expansion.BOTH):
            fam = tiny_store.resolve_filter(ByName(name, exp))
            counts[exp] = qe.count_for_family(fam)
        assert counts[Expansion.NONE] <= counts[Expansion.DESCENDANTS]
        assert counts[Expansion.DESCENDANTS] <= counts[Expansion.BOTH]

    @_shared
    @given(
        name=st.sampled_from(NAMES),
        focus_type=st.sampled_from(["primary", "sender", "receiver", "parent"]),
    )
    def test_focus_type_restriction_is_subset(self, tiny_store, name, focus_type):
        qe = QueryEngine(tiny_store)
        fam = tiny_store.resolve_filter(ByName(name))
        unrestricted = qe.result_ids([fam])
        restricted = qe.result_ids([fam], focus_type=focus_type)
        assert restricted <= unrestricted

    @_shared
    @given(picks=st.lists(st.sampled_from(NAMES), max_size=3))
    def test_count_equals_fetch_length(self, tiny_store, picks):
        qe = QueryEngine(tiny_store)
        families = [tiny_store.resolve_filter(ByName(n)) for n in picks]
        assert qe.count_for_filter(families) == len(
            qe.fetch_results(qe.result_ids(families))
        )


class TestLoaderProperties:
    def test_reloading_results_doubles_results_not_foci(self, store):
        text = (
            "Application A\nExecution e A\nResource /e execution e\n"
            "Resource /e/p0 execution/process e\n"
            'PerfResult e /e,/e/p0(primary) t m 1.0 u\n'
            'PerfResult e /e,/e/p0(primary) t m2 2.0 u\n'
        )
        store.load_string(text)
        first = store.db_stats()
        store.load_string(text)
        second = store.db_stats()
        assert second["performance_result"] == 2 * first["performance_result"]
        assert second["focus"] == first["focus"]  # contexts are shared
        assert second["resource_item"] == first["resource_item"]
