"""Resource filter and pr-filter tests, including the Section-2.2 property.

The key invariant: the SQL evaluation path (focus-set intersection in
QueryEngine) agrees with the pure in-memory reference semantics
``∀ R ∈ PRF: ∃ r ∈ C: r ∈ R`` for every generated filter.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    AttributeClause,
    ByAttributes,
    ByName,
    ByType,
    Expansion,
    PrFilter,
)
from repro.core.filters import COMPARATORS, ResourceFamily, filter_results, matches
from repro.core.query import QueryEngine


class TestComparators:
    def test_numeric_comparisons(self):
        assert COMPARATORS["<"]("374", "375")
        assert COMPARATORS[">="]("375", "375")
        assert not COMPARATORS[">"]("374", "375")

    def test_text_fallback(self):
        assert COMPARATORS["="]("Linux", "Linux")
        assert COMPARATORS["<"]("AIX", "Linux")

    def test_contains(self):
        assert COMPARATORS["contains"]("Red Hat Linux", "Linux")
        assert not COMPARATORS["contains"](None, "x")

    def test_clause_validation(self):
        with pytest.raises(ValueError):
            AttributeClause("a", "~=", "v")

    def test_clause_test(self):
        c = AttributeClause("clock MHz", ">", "1000")
        assert c.test("1500") and not c.test("375")


class TestMatchesSemantics:
    def test_empty_filter_matches_all(self):
        assert matches([], {1, 2})
        assert matches([], set())

    def test_each_family_must_intersect(self):
        fams = [{1, 2}, {3}]
        assert matches(fams, {1, 3})
        assert matches(fams, {2, 3, 9})
        assert not matches(fams, {1, 2})  # second family misses
        assert not matches(fams, {3})  # first family misses

    def test_empty_family_never_matches(self):
        assert not matches([set()], {1})

    @settings(max_examples=200, deadline=None)
    @given(
        families=st.lists(
            st.frozensets(st.integers(0, 15), max_size=6), max_size=4
        ),
        context=st.frozensets(st.integers(0, 15), max_size=8),
    )
    def test_matches_equals_quantifier_definition(self, families, context):
        expected = all(any(r in fam for r in context) for fam in families)
        assert matches(families, context) == expected


class TestResolveFilter:
    def test_by_type(self, tiny_store):
        fam = tiny_store.resolve_filter(ByType("grid/machine/partition/node/processor"))
        assert len(fam) == 4

    def test_by_full_name_no_expansion(self, tiny_store):
        fam = tiny_store.resolve_filter(ByName("/LLNL/Frost", Expansion.NONE))
        assert len(fam) == 1

    def test_by_full_name_with_descendants(self, tiny_store):
        fam = tiny_store.resolve_filter(ByName("/LLNL/Frost", Expansion.DESCENDANTS))
        # Frost + batch + 2 nodes + 4 processors
        assert len(fam) == 8

    def test_by_name_ancestors(self, tiny_store):
        fam = tiny_store.resolve_filter(
            ByName("/LLNL/Frost/batch/n0/p0", Expansion.ANCESTORS)
        )
        assert len(fam) == 5  # self + 4 ancestors

    def test_by_name_both(self, tiny_store):
        fam = tiny_store.resolve_filter(ByName("/LLNL/Frost/batch", Expansion.BOTH))
        assert len(fam) == 1 + 2 + 2 + 4  # self, ancestors, nodes, processors

    def test_by_base_name(self, tiny_store):
        # "batch" as a base name: the batch partition of any machine.
        fam = tiny_store.resolve_filter(ByName("batch", Expansion.NONE))
        assert len(fam) == 1
        tiny_store.add_resource("/LLNL/MCR/batch", "grid/machine/partition")
        fam = tiny_store.resolve_filter(ByName("batch", Expansion.NONE))
        assert len(fam) == 2

    def test_missing_name_empty_family(self, tiny_store):
        fam = tiny_store.resolve_filter(ByName("/nope", Expansion.DESCENDANTS))
        assert len(fam) == 0

    def test_by_attributes(self, tiny_store):
        fam = tiny_store.resolve_filter(
            ByAttributes((AttributeClause("clock MHz", "=", "375"),))
        )
        assert len(fam) == 4

    def test_by_attributes_conjunction(self, tiny_store):
        fam = tiny_store.resolve_filter(
            ByAttributes(
                (
                    AttributeClause("clock MHz", "=", "375"),
                    AttributeClause("vendor", "=", "IBM"),
                )
            )
        )
        assert len(fam) == 4
        fam2 = tiny_store.resolve_filter(
            ByAttributes(
                (
                    AttributeClause("clock MHz", "=", "375"),
                    AttributeClause("vendor", "=", "Intel"),
                )
            )
        )
        assert len(fam2) == 0

    def test_by_attributes_with_type_scope(self, tiny_store):
        tiny_store.add_resource("/other", "build")
        tiny_store.add_resource_attribute("/other", "clock MHz", "375")
        scoped = tiny_store.resolve_filter(
            ByAttributes(
                (AttributeClause("clock MHz", "=", "375"),),
                type_path="grid/machine/partition/node/processor",
            )
        )
        unscoped = tiny_store.resolve_filter(
            ByAttributes((AttributeClause("clock MHz", "=", "375"),))
        )
        assert len(unscoped) == 5 and len(scoped) == 4

    def test_attribute_with_expansion(self, tiny_store):
        fam = tiny_store.resolve_filter(
            ByAttributes(
                (AttributeClause("vendor", "=", "IBM"),),
                expansion=Expansion.ANCESTORS,
            )
        )
        # 4 processors + their shared ancestors (node x2, batch, Frost, LLNL)
        assert len(fam) == 9


class TestPrFilterEvaluation:
    def test_single_family(self, tiny_store):
        qe = QueryEngine(tiny_store)
        prf = PrFilter([ByName("/IRS/src/funcA", Expansion.NONE)])
        results = qe.fetch(prf)
        assert len(results) == 6  # 2 + 4 processes across two executions
        assert all(r.metric == "CPU time" for r in results)

    def test_conjunction_of_families(self, tiny_store):
        qe = QueryEngine(tiny_store)
        prf = PrFilter(
            [
                ByName("/IRS/src/funcA", Expansion.NONE),
                ByName("/irs-a", Expansion.DESCENDANTS),
            ]
        )
        assert len(qe.fetch(prf)) == 2

    def test_empty_filter_matches_everything(self, tiny_store):
        qe = QueryEngine(tiny_store)
        assert len(qe.evaluate(PrFilter())) == 12

    def test_count_matches_fetch(self, tiny_store):
        qe = QueryEngine(tiny_store)
        fam = tiny_store.resolve_filter(ByName("/irs-b", Expansion.DESCENDANTS))
        assert qe.count_for_family(fam) == len(
            qe.fetch_results(qe.result_ids([fam]))
        )

    def test_sql_path_equals_reference_semantics(self, tiny_store):
        """The paper's formal semantics vs the focus-intersection SQL path."""
        qe = QueryEngine(tiny_store)
        all_results = qe.fetch_results(qe.evaluate(PrFilter()))
        filters = [
            ByName("/IRS/src/funcB", Expansion.NONE),
            ByName("/LLNL/Frost/batch/n0", Expansion.DESCENDANTS),
        ]
        prf = PrFilter(filters)
        families = [f.resource_ids for f in tiny_store.resolve_prfilter(prf)]
        expected_ids = {r.id for r in filter_results(families, all_results)}
        assert qe.evaluate(prf) == expected_ids

    # Read-only use of the store fixture: safe to share across examples.
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        picks=st.lists(
            st.sampled_from(
                [
                    ("/IRS/src/funcA", Expansion.NONE),
                    ("/IRS/src/funcB", Expansion.NONE),
                    ("/irs-a", Expansion.DESCENDANTS),
                    ("/irs-b", Expansion.DESCENDANTS),
                    ("/LLNL/Frost", Expansion.DESCENDANTS),
                    ("/LLNL/Frost/batch/n0", Expansion.DESCENDANTS),
                    ("/LLNL/Frost/batch/n1/p1", Expansion.NONE),
                    ("batch", Expansion.DESCENDANTS),
                ]
            ),
            max_size=3,
        )
    )
    def test_random_prfilters_agree_with_reference(self, tiny_store, picks):
        qe = QueryEngine(tiny_store)
        all_results = qe.fetch_results(qe.evaluate(PrFilter()))
        prf = PrFilter([ByName(n, e) for n, e in picks])
        families = [f.resource_ids for f in tiny_store.resolve_prfilter(prf)]
        expected = {r.id for r in filter_results(families, all_results)}
        assert qe.evaluate(prf) == expected


class TestDescribe:
    def test_prfilter_describe(self):
        prf = PrFilter([ByName("/a"), ByType("grid")])
        text = prf.describe()
        assert "name=/a" in text and "type=grid" in text

    def test_empty_describe(self):
        assert PrFilter().describe() == "<empty>"

    def test_family_membership(self):
        fam = ResourceFamily("x", frozenset({1, 2}))
        assert 1 in fam and 3 not in fam and len(fam) == 2
