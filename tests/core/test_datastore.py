"""PTDataStore tests: the Figure-6 load API, lookups, hierarchy expansion."""

import pytest

from repro.core import Expansion, PTDataStore
from repro.minidb.errors import ProgrammingError
from repro.ptdf.basetypes import BASE_HIERARCHIES, BASE_NONHIERARCHICAL
from repro.ptdf.format import ResourceSet


class TestTypeSystem:
    def test_base_types_loaded_on_init(self, store):
        names = {t.name for t in store.resource_types()}
        assert "grid/machine/partition/node/processor" in names
        assert "grid" in names  # prefixes too
        assert set(BASE_NONHIERARCHICAL) <= names

    def test_type_parents(self, store):
        machine = store.resource_type("grid/machine")
        grid = store.resource_type("grid")
        assert machine.parent_id == grid.id
        assert grid.parent_id is None

    def test_top_level_types(self, store):
        tops = {t.name for t in store.top_level_types()}
        assert {"grid", "build", "environment", "execution", "time"} <= tops

    def test_child_types(self, store):
        grid = store.resource_type("grid")
        kids = store.child_types(grid.id)
        assert [k.base for k in kids] == ["machine"]

    def test_type_extension(self, store):
        # "an analyst ... can add a brand new resource hierarchy"
        store.add_resource_type("syncObject/syncClass/syncInstance")
        t = store.resource_type("syncObject/syncClass")
        assert t is not None and t.base == "syncClass"

    def test_extend_existing_hierarchy(self, store):
        # "adding another level to the Time hierarchy"
        store.add_resource_type("time/interval/phase")
        t = store.resource_type("time/interval/phase")
        assert t.parent_id == store.resource_type("time/interval").id

    def test_add_type_idempotent(self, store):
        a = store.add_resource_type("grid/machine")
        b = store.add_resource_type("grid/machine")
        assert a == b

    def test_skip_base_types(self):
        ds = PTDataStore(load_base_types=False)
        assert ds.resource_types() == []


class TestResources:
    def test_add_and_lookup(self, store):
        rid = store.add_resource("/LLNL", "grid")
        res = store.resource_by_name("/LLNL")
        assert res.id == rid and res.type_name == "grid" and res.parent_id is None

    def test_ancestors_auto_created(self, store):
        store.add_resource("/LLNL/Frost/batch/n1/p0", "grid/machine/partition/node/processor")
        node = store.resource_by_name("/LLNL/Frost/batch/n1")
        assert node is not None and node.type_name == "grid/machine/partition/node"
        assert store.resource_by_name("/LLNL").type_name == "grid"

    def test_depth_mismatch_rejected(self, store):
        with pytest.raises(ValueError):
            store.add_resource("/a/b", "grid")

    def test_idempotent_add(self, store):
        a = store.add_resource("/LLNL", "grid")
        b = store.add_resource("/LLNL", "grid")
        assert a == b
        assert store.count_rows("resource_item") == 1

    def test_full_names_unique(self, store):
        store.add_resource("/M/batch", "grid/machine")
        store.add_resource("/N/batch", "grid/machine")
        batches = store.resources_with_base_name("batch")
        assert {r.name for r in batches} == {"/M/batch", "/N/batch"}

    def test_children_of(self, store):
        store.add_resource("/M/a", "grid/machine")
        store.add_resource("/M/b", "grid/machine")
        m = store.resource_by_name("/M")
        assert [c.base for c in store.children_of(m.id)] == ["a", "b"]

    def test_execution_binding(self, store):
        store.add_execution("e1", "app")
        store.add_resource("/e1", "execution", "e1")
        res = store.resource_by_name("/e1")
        assert res.execution_id == store.execution_id("e1")

    def test_unknown_execution_rejected(self, store):
        with pytest.raises(ProgrammingError):
            store.add_resource("/x", "execution", "nope")

    def test_unique_resource_name(self, store):
        store.add_resource("/r", "grid")
        assert store.unique_resource_name("/r") == "/r_1"
        assert store.unique_resource_name("/fresh") == "/fresh"


class TestAttributesAndConstraints:
    def test_attribute_round_trip(self, store):
        store.add_resource("/M/frost/b/n/p0", "grid/machine/partition/node/processor")
        store.add_resource_attribute("/M/frost/b/n/p0", "vendor", "IBM")
        store.add_resource_attribute("/M/frost/b/n/p0", "clock MHz", "375")
        rid = store.resource_id("/M/frost/b/n/p0")
        attrs = {a.name: a.value for a in store.attributes_of(rid)}
        assert attrs == {"vendor": "IBM", "clock MHz": "375"}
        assert store.attribute_value(rid, "vendor") == "IBM"

    def test_resource_valued_attribute_creates_constraint(self, store):
        # "Adding a resourceConstraint is equivalent to adding an attribute
        # of type resource."
        store.add_execution("e", "app")
        store.add_resource("/e/p8", "execution/process", "e")
        store.add_resource("/M/n16", "grid/machine")
        store.add_resource_attribute("/e/p8", "runs on", "/M/n16", attr_type="resource")
        constrained = store.constraints_of(store.resource_id("/e/p8"))
        assert [c.name for c in constrained] == ["/M/n16"]

    def test_explicit_constraint(self, store):
        store.add_resource("/a", "grid")
        store.add_resource("/b", "build")
        store.add_resource_constraint("/a", "/b")
        assert store.count_rows("resource_constraint") == 1

    def test_attribute_on_unknown_resource(self, store):
        with pytest.raises(ProgrammingError):
            store.add_resource_attribute("/nope", "a", "v")


class TestHierarchyExpansion:
    @pytest.fixture
    def tree(self, store):
        store.add_resource("/M/f/b/n0/p0", "grid/machine/partition/node/processor")
        store.add_resource("/M/f/b/n0/p1", "grid/machine/partition/node/processor")
        store.add_resource("/M/f/b/n1/p0", "grid/machine/partition/node/processor")
        return store

    def test_descendants(self, tree):
        m = tree.resource_id("/M/f")
        desc = tree.descendants_of(m)
        names = {tree.resource_by_id(d).name for d in desc}
        assert names == {
            "/M/f/b",
            "/M/f/b/n0",
            "/M/f/b/n0/p0",
            "/M/f/b/n0/p1",
            "/M/f/b/n1",
            "/M/f/b/n1/p0",
        }

    def test_ancestors(self, tree):
        p = tree.resource_id("/M/f/b/n0/p1")
        anc = {tree.resource_by_id(a).name for a in tree.ancestors_of(p)}
        assert anc == {"/M", "/M/f", "/M/f/b", "/M/f/b/n0"}

    def test_closure_and_walk_agree(self, backend_kind):
        ds_closure = PTDataStore(backend_kind=backend_kind, use_closure_tables=True)
        ds_walk = PTDataStore(backend_kind=backend_kind, use_closure_tables=False)
        for ds in (ds_closure, ds_walk):
            ds.add_resource("/M/f/b/n0/p0", "grid/machine/partition/node/processor")
            ds.add_resource("/M/f/b/n1/p0", "grid/machine/partition/node/processor")
        for name in ("/M", "/M/f/b", "/M/f/b/n1/p0"):
            a = ds_closure.resource_id(name)
            b = ds_walk.resource_id(name)
            assert {
                ds_closure.resource_by_id(x).name for x in ds_closure.descendants_of(a)
            } == {ds_walk.resource_by_id(x).name for x in ds_walk.descendants_of(b)}
            assert {
                ds_closure.resource_by_id(x).name for x in ds_closure.ancestors_of(a)
            } == {ds_walk.resource_by_id(x).name for x in ds_walk.ancestors_of(b)}

    def test_walk_mode_writes_no_closure_rows(self, backend_kind):
        ds = PTDataStore(backend_kind=backend_kind, use_closure_tables=False)
        ds.add_resource("/M/f", "grid/machine")
        assert ds.count_rows("resource_has_ancestor") == 0


class TestResults:
    @pytest.fixture
    def ds(self, store):
        store.add_execution("e1", "app")
        store.add_resource("/e1", "execution", "e1")
        store.add_resource("/e1/p0", "execution/process", "e1")
        return store

    def test_add_perf_result(self, ds):
        pr = ds.add_perf_result(
            "e1", ResourceSet(("/e1", "/e1/p0")), "tool", "CPU time", 1.25, "seconds"
        )
        assert pr == 1
        assert ds.count_rows("performance_result") == 1
        assert ds.count_rows("focus") == 1
        assert ds.count_rows("focus_has_resource") == 2

    def test_focus_dedup(self, ds):
        # "a single context can apply to multiple performance results"
        for i in range(3):
            ds.add_perf_result(
                "e1", ResourceSet(("/e1", "/e1/p0")), "tool", f"m{i}", float(i), "u"
            )
        assert ds.count_rows("focus") == 1
        assert ds.count_rows("performance_result_has_focus") == 3

    def test_multiple_resource_sets(self, ds):
        # the Section 4.2 caller/callee extension
        ds.add_perf_result(
            "e1",
            (ResourceSet(("/e1",)), ResourceSet(("/e1/p0",), "parent")),
            "mpiP",
            "time",
            9.0,
            "ms",
        )
        assert ds.count_rows("performance_result_has_focus") == 2
        rows = ds.backend.query(
            "SELECT focus_type FROM performance_result_has_focus ORDER BY focus_type"
        )
        assert [r[0] for r in rows] == ["parent", "primary"]

    def test_unknown_execution_rejected(self, ds):
        with pytest.raises(ProgrammingError):
            ds.add_perf_result("nope", ResourceSet(("/e1",)), "t", "m", 1.0, "u")

    def test_metrics_and_tools_registered(self, ds):
        ds.add_perf_result("e1", ResourceSet(("/e1",)), "mpiP", "MPI time", 1.0, "s")
        assert "MPI time" in ds.metrics()
        assert "mpiP" in ds.tools()

    def test_execution_details(self, ds):
        ds.add_perf_result("e1", ResourceSet(("/e1",)), "t", "m", 1.0, "u")
        d = ds.execution_details("e1")
        assert d["application"] == "app"
        assert d["results"] == 1
        assert d["metrics"] == ["m"]
        assert d["resources"] == 2


class TestLoading:
    def test_load_string_counts(self, store):
        stats = store.load_string(
            """
            Application IRS
            Execution e1 IRS
            Resource /e1 execution e1
            Resource /IRS build
            ResourceAttribute /IRS lang C
            PerfResult e1 /e1,/IRS(primary) tool "CPU time" 5.0 seconds
            """
        )
        assert stats.applications == 1
        assert stats.executions == 1
        assert stats.resources == 2
        assert stats.attributes == 1
        assert stats.results == 1
        assert stats.foci == 1

    def test_reload_is_idempotent_for_definitions(self, store):
        text = "Application A\nExecution e A\nResource /e execution e\n"
        store.load_string(text)
        stats = store.load_string(text)
        assert stats.applications == 0
        assert stats.executions == 0
        assert stats.resources == 0

    def test_cache_warm_on_reopen(self, tmp_path, backend_kind):
        if backend_kind == "sqlite":
            path = str(tmp_path / "pt.sqlite")
        else:
            path = str(tmp_path / "pt.minidb")
        ds = PTDataStore(backend_kind=backend_kind, database=path)
        ds.load_string("Application A\nExecution e A\nResource /e execution e\n")
        ds.backend.commit()
        ds.close()
        ds2 = PTDataStore(backend_kind=backend_kind, database=path)
        # Definitions are visible without reloading.
        assert ds2.executions() == ["e"]
        assert ds2.has_resource("/e")
        ds2.close()
