"""Backend abstraction tests: dialect smoothing and error normalisation."""

import pytest

from repro.dbapi import MinidbBackend, SqliteBackend, open_backend
from repro.minidb.errors import (
    DatabaseError,
    IntegrityError,
    OperationalError,
    ProgrammingError,
)


class TestOpenBackend:
    def test_minidb_default(self):
        b = open_backend()
        assert isinstance(b, MinidbBackend)
        assert b.name == "minidb"
        b.close()

    @pytest.mark.parametrize("alias", ["sqlite", "sqlite3", "SQLITE"])
    def test_sqlite_aliases(self, alias):
        b = open_backend(alias)
        assert isinstance(b, SqliteBackend)
        b.close()

    def test_unknown_backend(self):
        with pytest.raises(ProgrammingError):
            open_backend("oracle")


class TestExecutionHelpers:
    @pytest.fixture(autouse=True)
    def _table(self, backend):
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        backend.executemany(
            "INSERT INTO t (v) VALUES (?)", [("a",), ("b",), ("c",)]
        )

    def test_query(self, backend):
        rows = backend.query("SELECT v FROM t ORDER BY id")
        assert rows == [("a",), ("b",), ("c",)]

    def test_query_one(self, backend):
        assert backend.query_one("SELECT v FROM t WHERE id = ?", (2,)) == ("b",)
        assert backend.query_one("SELECT v FROM t WHERE id = 99") is None

    def test_scalar(self, backend):
        assert backend.scalar("SELECT COUNT(*) FROM t") == 3
        assert backend.scalar("SELECT v FROM t WHERE id = 99") is None

    def test_insert_returns_key(self, backend):
        rid = backend.insert("INSERT INTO t (v) VALUES (?)", ("d",))
        assert rid == 4

    def test_has_table(self, backend):
        assert backend.has_table("t")
        assert backend.has_table("T")  # case-insensitive
        assert not backend.has_table("nope")

    def test_rollback(self, backend):
        backend.commit()
        backend.execute("INSERT INTO t (v) VALUES ('x')")
        backend.rollback()
        assert backend.scalar("SELECT COUNT(*) FROM t") == 3

    def test_db_size_bytes_positive(self, backend):
        backend.commit()
        assert backend.db_size_bytes() > 0


class TestErrorNormalisation:
    """Both backends raise the same PEP-249 classes for the same faults."""

    @pytest.fixture(autouse=True)
    def _table(self, backend):
        backend.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT UNIQUE)")
        backend.execute("INSERT INTO t (v) VALUES ('a')")

    def test_unique_violation(self, backend):
        with pytest.raises(IntegrityError):
            backend.execute("INSERT INTO t (v) VALUES ('a')")

    def test_missing_table(self, backend):
        with pytest.raises((ProgrammingError, OperationalError)):
            backend.execute("SELECT * FROM no_such_table")

    def test_syntax_error(self, backend):
        with pytest.raises((ProgrammingError, OperationalError)):
            backend.execute("SELEKT broken")

    def test_all_errors_are_database_errors(self, backend):
        for sql in ("INSERT INTO t (v) VALUES ('a')", "SELECT * FROM nope", "SELEKT"):
            with pytest.raises(DatabaseError):
                backend.execute(sql)
