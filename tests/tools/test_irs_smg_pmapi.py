"""Converter tests: IRS, SMG2000, PMAPI (generator -> parser -> store)."""

import pytest

from repro.core import PTDataStore
from repro.ptdf.ptdfgen import IndexEntry
from repro.ptdf.writer import PTdfWriter
from repro.synth.irs_gen import IRSRunSpec, generate_irs_run
from repro.synth.machines import MCR, UV
from repro.synth.pmapi_gen import generate_pmapi_file
from repro.synth.smg_gen import SMGRunSpec, generate_smg_run
from repro.tools.irs import IRSConverter
from repro.tools.pmapi import PMAPIConverter
from repro.tools.smg2000 import SMGConverter


def _entry(execution, app="IRS", nproc=4):
    return IndexEntry(execution, app, "MPI", nproc, 1, "t0", "t1")


def _writer(entry):
    w = PTdfWriter()
    w.add_application(entry.application)
    w.add_execution(entry.execution, entry.application)
    return w


class TestIRSConverter:
    @pytest.fixture
    def files(self, tmp_path):
        return generate_irs_run(IRSRunSpec("irs-c", MCR, 4), str(tmp_path), drop_rate=0.1)

    def test_sniff(self, files, tmp_path):
        conv = IRSConverter()
        assert all(conv.sniff(f) for f in files)
        other = tmp_path / "other.txt"
        other.write_text("not irs output")
        assert not conv.sniff(str(other))

    def test_summary_results(self, files):
        conv = IRSConverter()
        entry = _entry("irs-c")
        w = _writer(entry)
        summary = [f for f in files if f.endswith(".out")][0]
        n = conv.convert(summary, entry, w)
        assert n == 5  # wall, cpu, iterations, energy error, memory HWM

    def test_table_results_skip_dashes(self, files):
        conv = IRSConverter()
        entry = _entry("irs-c")
        w = _writer(entry)
        tables = [f for f in files if ".timing." in f]
        total = sum(conv.convert(f, entry, w) for f in tables)
        # 80 funcs x 4 stats x 5 metrics minus ~10% dropped
        assert 1300 < total < 1560

    def test_loadable_and_queryable(self, files):
        conv = IRSConverter()
        entry = _entry("irs-c")
        w = _writer(entry)
        for f in files:
            conv.convert(f, entry, w)
        ds = PTDataStore()
        stats = ds.load_records(w.records)
        assert stats.results > 1300
        # metric naming: "<metric> (<stat>)" per paper's 4-stat scheme
        assert "CPU time (aggregate)" in ds.metrics()
        assert "CPU time (max)" in ds.metrics()
        # function resources in the build hierarchy
        fns = ds.resources_of_type("build/module/function")
        assert len(fns) == 80

    def test_metric_count_matches_paper(self, files):
        conv = IRSConverter()
        entry = _entry("irs-c")
        w = _writer(entry)
        for f in files:
            conv.convert(f, entry, w)
        ds = PTDataStore()
        ds.load_records(w.records)
        # Table 1: 25 metrics for IRS (5 metrics x 4 stats + 5 summary)
        assert len(ds.metrics()) == 25


class TestSMGConverter:
    def test_eight_native_values(self, tmp_path):
        path = generate_smg_run(SMGRunSpec("smg-c", UV, 8), str(tmp_path))
        conv = SMGConverter()
        assert conv.sniff(path)
        entry = _entry("smg-c", app="SMG2000", nproc=8)
        w = _writer(entry)
        n = conv.convert(path, entry, w)
        assert n == 8  # the paper's "eight data values"

    def test_driver_parameters_stored_as_attributes(self, tmp_path):
        path = generate_smg_run(SMGRunSpec("smg-c", UV, 8), str(tmp_path))
        entry = _entry("smg-c", app="SMG2000", nproc=8)
        w = _writer(entry)
        SMGConverter().convert(path, entry, w)
        ds = PTDataStore()
        ds.load_records(w.records)
        rid = ds.resource_id("/smg-c")
        attrs = {a.name for a in ds.attributes_of(rid)}
        assert "driver nx, ny, nz" in attrs
        assert "driver Px, Py, Pz" in attrs

    def test_embedded_pmapi_delegated(self, tmp_path):
        path = generate_smg_run(SMGRunSpec("smg-c", UV, 4, with_pmapi=True), str(tmp_path))
        entry = _entry("smg-c", app="SMG2000", nproc=4)
        w = _writer(entry)
        n = SMGConverter().convert(path, entry, w)
        assert n == 8 + 4 * 6  # native + ranks x counters

    def test_metric_names(self, tmp_path):
        path = generate_smg_run(SMGRunSpec("smg-c", UV, 8), str(tmp_path))
        entry = _entry("smg-c", app="SMG2000", nproc=8)
        w = _writer(entry)
        SMGConverter().convert(path, entry, w)
        ds = PTDataStore()
        ds.load_records(w.records)
        assert "SMG Solve Wall time" in ds.metrics()
        assert "Iterations" in ds.metrics()


class TestPMAPIConverter:
    def test_standalone_file(self, tmp_path):
        path = generate_pmapi_file("e1", 3, str(tmp_path))
        conv = PMAPIConverter()
        assert conv.sniff(path)
        entry = _entry("e1")
        w = _writer(entry)
        n = conv.convert(path, entry, w)
        assert n == 3 * 6

    def test_process_contexts(self, tmp_path):
        path = generate_pmapi_file("e1", 2, str(tmp_path))
        entry = _entry("e1")
        w = _writer(entry)
        PMAPIConverter().convert(path, entry, w)
        ds = PTDataStore()
        ds.load_records(w.records)
        procs = ds.resources_of_type("execution/process")
        assert {p.base for p in procs} == {"p0", "p1"}

    def test_counter_values_are_counts(self, tmp_path):
        path = generate_pmapi_file("e1", 2, str(tmp_path))
        entry = _entry("e1")
        w = _writer(entry)
        PMAPIConverter().convert(path, entry, w)
        ds = PTDataStore()
        ds.load_records(w.records)
        rows = ds.backend.query(
            "SELECT p.value FROM performance_result p "
            "JOIN metric m ON m.id = p.metric_id WHERE m.name = 'PM_CYC'"
        )
        assert len(rows) == 2 and all(v > 0 for (v,) in rows)

    def test_sniff_rejects_other(self, tmp_path):
        f = tmp_path / "x.txt"
        f.write_text("something else")
        assert not PMAPIConverter().sniff(str(f))
