"""Failure injection: converters must survive malformed tool output.

Real tool files get truncated, interleaved with stderr noise, or edited by
hand; converters should parse what they can and never crash ("providing
conversion support is the most useful way to keep PerfTrack useful").
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ptdf.ptdfgen import IndexEntry
from repro.ptdf.writer import PTdfWriter
from repro.synth.irs_gen import IRSRunSpec, generate_irs_run
from repro.synth.machines import MCR, UV
from repro.synth.mpip_gen import MpiPSpec, generate_mpip_report
from repro.synth.paradyn_gen import ParadynSpec, generate_paradyn_export
from repro.synth.smg_gen import SMGRunSpec, generate_smg_run
from repro.tools import ALL_CONVERTERS
from repro.tools.irs import IRSConverter
from repro.tools.mpip import MpiPConverter
from repro.tools.paradyn import ParadynConverter
from repro.tools.smg2000 import SMGConverter


def _entry():
    return IndexEntry("rx", "APP", "MPI", 4, 1, "t0", "t1")


def _writer():
    w = PTdfWriter()
    w.add_application("APP")
    w.add_execution("rx", "APP")
    return w


@pytest.fixture(scope="module")
def originals(tmp_path_factory):
    d = str(tmp_path_factory.mktemp("robust"))
    files = {}
    files["irs"] = generate_irs_run(IRSRunSpec("rx", MCR, 4), d)[1]  # a timing table
    files["smg"] = generate_smg_run(SMGRunSpec("rx-smg", UV, 4, with_pmapi=True), d)
    files["mpip"] = generate_mpip_report(MpiPSpec("rx-mpip", 4, callsites=5), d)
    export = generate_paradyn_export(
        ParadynSpec("rx-par", processes=2, modules=3, functions_per_module=2,
                    histograms=2, bins=20),
        d,
    )
    files["paradyn_hist"] = export.histogram_paths[0]
    files["paradyn_res"] = export.resources_path
    return files


_CONVERTERS = {
    "irs": IRSConverter(),
    "smg": SMGConverter(),
    "mpip": MpiPConverter(),
    "paradyn_hist": ParadynConverter(),
}


class TestTruncation:
    @pytest.mark.parametrize("kind", sorted(_CONVERTERS))
    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.9])
    def test_truncated_files_never_crash(self, originals, tmp_path, kind, fraction):
        text = open(originals[kind]).read()
        cut = text[: int(len(text) * fraction)]
        path = str(tmp_path / f"{kind}-{fraction}.txt")
        open(path, "w").write(cut)
        conv = _CONVERTERS[kind]
        w = _writer()
        n = conv.convert(path, _entry(), w)
        assert n >= 0
        # whatever was produced must be loadable
        from repro.core import PTDataStore

        PTDataStore().load_records(w.records)


class TestNoiseInjection:
    @pytest.mark.parametrize("kind", sorted(_CONVERTERS))
    def test_interleaved_garbage_lines(self, originals, tmp_path, kind):
        lines = open(originals[kind]).read().splitlines()
        noisy = []
        for i, line in enumerate(lines):
            noisy.append(line)
            if i % 7 == 3:
                noisy.append("stderr: WARNING something unrelated 123 !!")
        path = str(tmp_path / f"{kind}-noisy.txt")
        open(path, "w").write("\n".join(noisy))
        conv = _CONVERTERS[kind]
        clean_w, noisy_w = _writer(), _writer()
        n_clean = conv.convert(originals[kind], _entry(), clean_w)
        n_noisy = conv.convert(path, _entry(), noisy_w)
        # garbage lines are skipped, real data still extracted
        assert n_noisy >= n_clean * 0.9

    def test_paradyn_resources_with_garbage(self, originals, tmp_path):
        lines = open(originals["paradyn_res"]).read().splitlines()
        lines.insert(2, "not-a-path at all")
        lines.insert(5, "/UnknownRoot/whatever/deep")
        path = str(tmp_path / "res-noisy.txt")
        open(path, "w").write("\n".join(lines))
        w = _writer()
        n = ParadynConverter().convert_resources_file(path, _entry(), w)
        assert n > 0


class TestRandomInput:
    @settings(max_examples=30, deadline=None)
    @given(blob=st.text(max_size=2000))
    def test_random_text_never_crashes_any_converter(self, tmp_path_factory, blob):
        d = tmp_path_factory.mktemp("fuzz")
        path = str(d / "random.txt")
        open(path, "w", encoding="utf-8").write(blob)
        for conv in ALL_CONVERTERS:
            if conv.sniff(path):
                w = _writer()
                conv.convert(path, _entry(), w)

    @settings(max_examples=20, deadline=None)
    @given(data=st.binary(max_size=1000))
    def test_binary_input_never_crashes(self, tmp_path_factory, data):
        d = tmp_path_factory.mktemp("fuzzbin")
        path = str(d / "random.bin")
        open(path, "wb").write(data)
        for conv in ALL_CONVERTERS:
            if conv.sniff(path):
                w = _writer()
                conv.convert(path, _entry(), w)


class TestPTdfGenWithBrokenFiles:
    def test_gen_skips_unreadable_directory_entries(self, originals, tmp_path):
        import os
        from repro.ptdf.ptdfgen import PTdfGen

        raw = tmp_path / "raw"
        raw.mkdir()
        (raw / "rx.good").write_text(open(originals["irs"]).read())
        (raw / "rx.junk").write_text("\x00\x01 binary-ish junk")
        (raw / "rx.subdir").mkdir()  # a directory with a matching prefix
        index = tmp_path / "i.index"
        index.write_text("rx APP MPI 4 1 t0 t1\n")
        gen = PTdfGen(ALL_CONVERTERS)
        reports = gen.generate(str(raw), str(index), out_dir=str(tmp_path / "out"))
        assert reports[0].results > 0
        assert any("rx.junk" in s for s in reports[0].skipped)
