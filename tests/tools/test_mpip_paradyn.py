"""Converter tests: mpiP (multi-resource-set) and Paradyn (Fig. 11 mapping)."""

import pytest

from repro.core import PTDataStore
from repro.ptdf.ptdfgen import IndexEntry
from repro.ptdf.writer import PTdfWriter
from repro.synth.mpip_gen import MpiPSpec, generate_mpip_report
from repro.synth.paradyn_gen import ParadynSpec, generate_paradyn_export
from repro.tools.mpip import MpiPConverter
from repro.tools.paradyn import ParadynConverter


def _entry(execution, app="SMG2000", nproc=4):
    return IndexEntry(execution, app, "MPI", nproc, 1, "t0", "t1")


def _writer(entry):
    w = PTdfWriter()
    w.add_application(entry.application)
    w.add_execution(entry.execution, entry.application)
    return w


@pytest.fixture
def mpip_loaded(tmp_path):
    path = generate_mpip_report(MpiPSpec("e1", 4, callsites=5), str(tmp_path))
    entry = _entry("e1")
    w = _writer(entry)
    n = MpiPConverter().convert(path, entry, w)
    ds = PTDataStore()
    ds.load_records(w.records)
    return ds, n


class TestMpiPConverter:
    def test_result_count(self, mpip_loaded):
        ds, n = mpip_loaded
        # tasks: (4+1)x2; aggregate: min(5,20); stats: 5 sites x 5 rows x 4 vals
        assert n == 10 + 5 + 100

    def test_caller_callee_resource_sets(self, mpip_loaded):
        """Section 4.2: each callsite value carries primary + parent contexts."""
        ds, _ = mpip_loaded
        rows = ds.backend.query(
            "SELECT COUNT(*) FROM performance_result_has_focus WHERE focus_type = 'parent'"
        )
        assert rows[0][0] == 105  # every callsite result has a parent context

    def test_mpi_functions_in_environment_hierarchy(self, mpip_loaded):
        ds, _ = mpip_loaded
        fns = ds.resources_of_type("environment/module/function")
        assert fns
        assert all(f.name.startswith("/libmpi/mpi/MPI_") for f in fns)

    def test_callers_in_build_hierarchy(self, mpip_loaded):
        ds, _ = mpip_loaded
        callers = ds.resources_of_type("build/module/function")
        assert any(c.base.startswith("hypre_") for c in callers)

    def test_callsites_are_codeblocks_with_line(self, mpip_loaded):
        ds, _ = mpip_loaded
        blocks = ds.resources_of_type("build/module/function/codeBlock")
        assert blocks
        line = ds.attribute_value(blocks[0].id, "line")
        assert line is not None and int(line) > 0

    def test_star_rows_use_execution_context(self, mpip_loaded):
        ds, _ = mpip_loaded
        # App/MPI time for the '*' row: context is exactly the execution.
        rows = ds.backend.query(
            "SELECT COUNT(*) FROM performance_result p "
            "JOIN metric m ON m.id = p.metric_id "
            "JOIN performance_result_has_focus prf ON prf.performance_result_id = p.id "
            "JOIN focus f ON f.id = prf.focus_id "
            "WHERE m.name = 'Application time'"
        )
        assert rows[0][0] == 5  # 4 ranks + aggregate row

    def test_metric_names(self, mpip_loaded):
        ds, _ = mpip_loaded
        metrics = set(ds.metrics())
        assert {
            "Application time",
            "MPI time",
            "Aggregate MPI time",
            "Call count",
            "Call time (max)",
            "Call time (mean)",
            "Call time (min)",
        } <= metrics


@pytest.fixture
def paradyn_export(tmp_path):
    spec = ParadynSpec(
        "pe1", processes=2, threads_per_process=2, modules=6,
        functions_per_module=4, histograms=4, bins=30, nan_rate=0.2,
        sync_objects=4,
    )
    return generate_paradyn_export(spec, str(tmp_path)), spec


class TestParadynMapping:
    def test_code_maps_to_build(self, paradyn_export):
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        m = conv.map_resource(entry, "/Code/module_005.c/fn_005_001")
        names = dict(m.names)
        assert names["/IRS/module_005.c/fn_005_001"] == "build/module/function"

    def test_dynamic_module_maps_to_environment(self, paradyn_export):
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        m = conv.map_resource(entry, "/Code/libshared_000.so/fn_000_001")
        types = {t for _n, t in m.names}
        assert "environment/module/function" in types

    def test_default_module_defaults_to_build(self):
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        m = conv.map_resource(entry, "/Code/DEFAULT_MODULE/builtin_000")
        types = {t for _n, t in m.names}
        assert "build/module/function" in types

    def test_machine_node_becomes_attribute(self):
        """Fig. 11: machine nodes are stored as attributes of processes."""
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        m = conv.map_resource(entry, "/Machine/mcr042/irs{123}")
        names = dict(m.names)
        assert "/pe1/irs{123}" in names
        assert names["/pe1/irs{123}"] == "execution/process"
        assert ("/pe1/irs{123}", "machine node", "mcr042") in m.attributes

    def test_thread_mapping(self):
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        m = conv.map_resource(entry, "/Machine/mcr042/irs{123}/thr_1")
        names = dict(m.names)
        assert names["/pe1/irs{123}/thr_1"] == "execution/process/thread"

    def test_syncobject_new_hierarchy(self):
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        m = conv.map_resource(entry, "/SyncObject/Message/obj_002")
        names = dict(m.names)
        assert names["/syncObjects/Message/obj_002"] == "syncObject/syncClass/syncInstance"

    def test_roots_unmapped(self):
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        assert conv.map_resource(entry, "/Code") is None
        assert conv.map_resource(entry, "/Machine") is None
        assert conv.map_resource(entry, "/Machine/mcr001") is None


class TestParadynConversion:
    def test_full_export_conversion(self, paradyn_export):
        export, spec = paradyn_export
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        w = _writer(entry)
        conv.convert_resources_file(export.resources_path, entry, w)
        n = conv.convert_index(export.index_path, entry, w)
        ds = PTDataStore()
        ds.load_records(w.records)
        # nan bins dropped: results < histograms x bins
        assert 0 < n < spec.histograms * spec.bins
        assert ds.count_rows("performance_result") == n

    def test_nan_bins_not_recorded(self, paradyn_export):
        export, spec = paradyn_export
        hist = export.histogram_paths[0]
        non_nan = sum(
            1
            for line in open(hist)
            if line.strip() and not line.startswith("#") and line.strip() != "nan"
        )
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        w = _writer(entry)
        assert conv.convert_histogram(hist, entry, w) == non_nan

    def test_bins_in_time_hierarchy_with_bounds(self, paradyn_export):
        export, _spec = paradyn_export
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        w = _writer(entry)
        conv.convert_histogram(export.histogram_paths[0], entry, w)
        ds = PTDataStore()
        ds.load_records(w.records)
        bins = ds.resources_of_type("time/interval")
        assert bins
        b0 = bins[0]
        start = float(ds.attribute_value(b0.id, "start time"))
        end = float(ds.attribute_value(b0.id, "end time"))
        assert end - start == pytest.approx(0.2)

    def test_global_phase_at_time_top_level(self, paradyn_export):
        export, _spec = paradyn_export
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        w = _writer(entry)
        conv.convert_histogram(export.histogram_paths[0], entry, w)
        ds = PTDataStore()
        ds.load_records(w.records)
        phases = ds.resources_of_type("time")
        assert [p.name for p in phases] == ["/pe1-global"]

    def test_local_phase_extends_type_hierarchy(self, paradyn_export):
        export, _spec = paradyn_export
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        w = _writer(entry)
        conv.convert_histogram(
            export.histogram_paths[0], entry, w, phase="phase1"
        )
        ds = PTDataStore()
        ds.load_records(w.records)
        assert ds.resource_type("time/interval/interval") is not None
        bins = ds.resources_of_type("time/interval/interval")
        assert bins and bins[0].name.startswith("/pe1-global/phase1/bin_")

    def test_sync_type_registered(self, paradyn_export):
        export, _spec = paradyn_export
        conv = ParadynConverter()
        entry = _entry("pe1", app="IRS")
        w = _writer(entry)
        conv.convert_resources_file(export.resources_path, entry, w)
        ds = PTDataStore()
        ds.load_records(w.records)
        assert ds.resource_type("syncObject/syncClass/syncInstance") is not None


class TestParadynLocalPhases:
    def test_generator_emits_phase_headers(self, tmp_path):
        spec = ParadynSpec(
            "lp-gen", processes=2, modules=3, functions_per_module=2,
            histograms=6, bins=10, local_phases=2,
        )
        export = generate_paradyn_export(spec, str(tmp_path))
        phased = [
            p for p in export.histogram_paths if "# phase:" in open(p).read()
        ]
        assert phased  # every third histogram carries a local phase

    def test_phase_header_maps_to_nested_interval(self, tmp_path):
        spec = ParadynSpec(
            "lp-conv", processes=2, modules=3, functions_per_module=2,
            histograms=6, bins=10, local_phases=2,
        )
        export = generate_paradyn_export(spec, str(tmp_path))
        entry = _entry("lp-conv", app="IRS")
        w = _writer(entry)
        ParadynConverter().convert_index(export.index_path, entry, w)
        ds = PTDataStore()
        ds.load_records(w.records)
        # Local phases are time/interval; their bins are a level deeper.
        phases = [
            r for r in ds.resources_of_type("time/interval")
            if r.base.startswith("phase_")
        ]
        assert phases
        nested = ds.resources_of_type("time/interval/interval")
        assert nested
        assert all(n.name.split("/")[-2].startswith("phase_") for n in nested)


class TestMpiPMetricNaming:
    def test_per_call_mode_expands_metric_table(self, tmp_path):
        path = generate_mpip_report(MpiPSpec("mn1", 4, callsites=12), str(tmp_path))
        entry = _entry("mn1")
        stores = {}
        for naming in ("generic", "per-call"):
            w = _writer(entry)
            MpiPConverter(metric_naming=naming).convert(path, entry, w)
            ds = PTDataStore()
            ds.load_records(w.records)
            stores[naming] = set(ds.metrics())
        # Same data, many more metric names in per-call mode (the paper's
        # Table-1 SMG-UV row counted 259 metrics this way).
        assert len(stores["per-call"]) > len(stores["generic"])
        assert any(m.startswith("MPI_") and "time (mean)" in m
                   for m in stores["per-call"])

    def test_invalid_naming_rejected(self):
        with pytest.raises(ValueError):
            MpiPConverter(metric_naming="fancy")

    def test_result_counts_identical_across_naming(self, tmp_path):
        path = generate_mpip_report(MpiPSpec("mn2", 2, callsites=3), str(tmp_path))
        entry = _entry("mn2", nproc=2)
        counts = []
        for naming in ("generic", "per-call"):
            w = _writer(entry)
            counts.append(MpiPConverter(metric_naming=naming).convert(path, entry, w))
        assert counts[0] == counts[1]
