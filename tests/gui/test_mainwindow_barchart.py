"""Main-window table and bar-chart view-model tests (Figures 4 and 5)."""

import pytest

from repro.core import ByName, Expansion, PrFilter
from repro.core.query import QueryEngine
from repro.gui.barchart import BarChart, Series, min_max_chart
from repro.gui.mainwindow import FIXED_COLUMNS, MainWindow


@pytest.fixture
def window(tiny_store):
    qe = QueryEngine(tiny_store)
    w = MainWindow(qe)
    w.show_results(qe.fetch(PrFilter([ByName("/irs-a", Expansion.DESCENDANTS)])))
    return w


class TestTable:
    def test_fixed_columns(self, window):
        assert window.columns == list(FIXED_COLUMNS)
        assert len(window.rows) == 4

    def test_cell_access(self, window):
        assert window.cell(0, "execution") == "irs-a"
        assert window.cell(0, "units") == "seconds"

    def test_sort_by_value(self, window):
        window.sort("value")
        values = [r.cell("value") for r in window.rows]
        assert values == sorted(values)
        window.sort("value", descending=True)
        assert [r.cell("value") for r in window.rows] == sorted(values, reverse=True)

    def test_filter_predicate(self, window):
        remaining = window.filter(lambda r: r.cell("value") >= 11)
        assert remaining == 3

    def test_filter_column_substring(self, window):
        window.add_column("build/module/function")
        remaining = window.filter_column("build/module/function", "funca")
        assert remaining == 2

    def test_as_table_shape(self, window):
        table = window.as_table()
        assert len(table) == 4
        assert len(table[0]) == len(window.columns)


class TestAddColumns:
    def test_addable_columns_lists_varying_types(self, window):
        addable = window.addable_columns()
        assert "build/module/function" in addable
        assert "execution" not in addable  # identical across rows

    def test_add_column_fills_cells(self, window):
        window.add_column("build/module/function")
        assert "build/module/function" in window.columns
        cells = {r.cell("build/module/function") for r in window.rows}
        assert cells == {"/IRS/src/funcA", "/IRS/src/funcB"}

    def test_add_column_idempotent(self, window):
        window.add_column("build/module/function")
        window.add_column("build/module/function")
        assert window.columns.count("build/module/function") == 1

    def test_add_attribute_column(self, window):
        window.add_attribute_column(
            "grid/machine/partition/node/processor", "clock MHz"
        )
        col = "grid/machine/partition/node/processor:clock MHz"
        assert col in window.columns
        assert all(r.cell(col) == "375" for r in window.rows)


class TestCsvRoundTrip:
    def test_export_import(self, window, tmp_path):
        window.add_column("build/module/function")
        path = str(tmp_path / "table.csv")
        window.save_csv(path)
        cols, rows = MainWindow.load_csv(path)
        assert cols == window.columns
        assert len(rows) == 4

    def test_load_empty_csv(self, tmp_path):
        path = str(tmp_path / "empty.csv")
        open(path, "w").close()
        assert MainWindow.load_csv(path) == ([], [])


class TestSeriesHandoff:
    def test_series_for(self, window):
        window.add_column("build/module/function")
        series = window.series_for("build/module/function")
        assert len(series) == 4
        assert all(isinstance(v, float) for _l, v in series)


class TestBarChart:
    def test_multi_series_categories(self):
        chart = BarChart("Load balance", "seconds")
        s_min, s_max = Series("min"), Series("max")
        for p, lo, hi in (("2", 1.0, 1.5), ("4", 0.9, 2.0)):
            s_min.add(p, lo)
            s_max.add(p, hi)
        chart.add_series(s_min)
        chart.add_series(s_max)
        assert chart.categories == ["2", "4"]
        assert chart.max_value() == 2.0

    def test_ascii_render(self):
        chart = min_max_chart("T", ["2", "4"], [1.0, 0.9], [1.5, 2.0])
        text = chart.render_ascii(width=10)
        assert "T" in text
        assert "min" in text and "max" in text
        # the tallest bar is full width
        assert "#" * 10 in text

    def test_ascii_deterministic(self):
        chart = min_max_chart("T", ["2"], [1.0], [2.0])
        assert chart.render_ascii() == chart.render_ascii()

    def test_csv_export(self, tmp_path):
        chart = min_max_chart("T", ["2", "4"], [1.0, 0.9], [1.5, 2.0])
        text = chart.to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "category,min,max"
        assert lines[1].startswith("2,")
        path = str(tmp_path / "chart.csv")
        chart.save_csv(path)
        assert open(path).read() == text

    def test_missing_category_value(self):
        chart = BarChart()
        a = Series("a")
        a.add("x", 1.0)
        b = Series("b")
        b.add("y", 2.0)
        chart.add_series(a)
        chart.add_series(b)
        csv_text = chart.to_csv()
        assert "x,1.0,\n" in csv_text

    def test_empty_chart(self):
        chart = BarChart("empty")
        assert chart.max_value() == 0.0
        assert chart.categories == []
        assert "empty" in chart.render_ascii()
