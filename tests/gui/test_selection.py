"""Selection-dialog view-model tests (paper Figure 3 behaviours)."""

import pytest

from repro.core import Expansion
from repro.gui.selection import SelectionDialog


@pytest.fixture
def dialog(tiny_store):
    return SelectionDialog(tiny_store)


class TestTypeMenu:
    def test_menu_lists_types(self, dialog):
        menu = dialog.resource_type_menu()
        assert "grid/machine" in menu
        assert "build/module/function" in menu

    def test_choose_unknown_type(self, dialog):
        with pytest.raises(ValueError):
            dialog.choose_type("not/a/type")

    def test_lazy_lists_empty_before_choice(self, dialog):
        assert dialog.resource_names() == []
        assert dialog.attribute_names() == []


class TestResourceLists:
    def test_base_names_of_type(self, dialog):
        dialog.choose_type("grid/machine/partition/node/processor")
        assert dialog.resource_names() == ["p0", "p1"]

    def test_children_expansion(self, dialog):
        dialog.choose_type("grid/machine")
        kids = dialog.children_of_name("/LLNL/Frost")
        assert kids == ["/LLNL/Frost/batch"]
        grandkids = dialog.children_of_name("/LLNL/Frost/batch")
        assert grandkids == ["/LLNL/Frost/batch/n0", "/LLNL/Frost/batch/n1"]

    def test_attribute_names_scoped_to_type(self, dialog):
        dialog.choose_type("grid/machine/partition/node/processor")
        assert dialog.attribute_names() == ["clock MHz", "vendor"]
        dialog.choose_type("grid/machine")
        assert dialog.attribute_names() == []

    def test_attribute_values(self, dialog):
        dialog.choose_type("grid/machine/partition/node/processor")
        assert dialog.attribute_values("vendor") == ["IBM"]

    def test_view_attributes(self, dialog):
        attrs = dialog.view_attributes("/LLNL/Frost/batch/n0/p0")
        assert attrs == {"clock MHz": "375", "vendor": "IBM"}

    def test_view_attributes_unknown(self, dialog):
        with pytest.raises(ValueError):
            dialog.view_attributes("/nope")


class TestFilterBuilding:
    def test_add_name_default_descendants(self, dialog):
        param = dialog.add_name("/LLNL/Frost")
        assert param.filter.expansion is Expansion.DESCENDANTS
        assert param.count == 12  # everything ran on Frost

    def test_per_family_and_total_counts(self, dialog):
        p1 = dialog.add_name("/IRS/src/funcA", Expansion.NONE)
        assert p1.count == 6
        assert dialog.total_count() == 6
        p2 = dialog.add_name("/irs-a")
        assert p2.count == 4
        assert dialog.total_count() == 2  # funcA within irs-a

    def test_add_type_family(self, dialog):
        dialog.choose_type("grid/machine")
        param = dialog.add_type()
        # No machine-level-only measurements exist in the tiny study.
        assert param.count == 0
        assert dialog.total_count() == 0

    def test_add_attribute_family(self, dialog):
        dialog.choose_type("grid/machine/partition/node/processor")
        param = dialog.add_attribute("clock MHz", "=", "375")
        assert param.count == 12

    def test_set_relatives_flag(self, dialog):
        dialog.add_name("/LLNL/Frost", Expansion.NONE)
        assert dialog.total_count() == 0  # no machine-level results
        updated = dialog.set_relatives(0, Expansion.DESCENDANTS)
        assert updated.count == 12
        assert dialog.total_count() == 12

    def test_remove_row(self, dialog):
        dialog.add_name("/IRS/src/funcA", Expansion.NONE)
        dialog.add_name("/irs-a")
        dialog.remove(0)
        assert len(dialog.selected) == 1
        assert dialog.total_count() == 4

    def test_empty_filter_counts_everything(self, dialog):
        assert dialog.total_count() == 12

    def test_retrieve(self, dialog):
        dialog.add_name("/irs-b")
        results = dialog.retrieve()
        assert len(results) == 8
        assert all(r.execution == "irs-b" for r in results)

    def test_pr_filter_export(self, dialog):
        dialog.add_name("/irs-a")
        prf = dialog.pr_filter()
        assert len(prf) == 1
