"""SVG renderer tests."""

import xml.etree.ElementTree as ET

import pytest

from repro.gui.barchart import BarChart, Series, min_max_chart
from repro.gui.svg import barchart_to_svg, save_svg, series_to_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def _parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestBarchartSvg:
    @pytest.fixture
    def chart(self):
        return min_max_chart("Load balance", ["2", "4", "8"], [1.0, 0.9, 0.8],
                             [1.2, 1.5, 1.9], value_label="seconds")

    def test_well_formed_xml(self, chart):
        root = _parse(barchart_to_svg(chart))
        assert root.tag == f"{SVG_NS}svg"

    def test_bar_count(self, chart):
        root = _parse(barchart_to_svg(chart))
        rects = root.findall(f"{SVG_NS}rect")
        # background + 6 bars + 2 legend swatches
        assert len(rects) == 1 + 6 + 2

    def test_bar_heights_proportional(self, chart):
        root = _parse(barchart_to_svg(chart))
        bars = [
            r for r in root.findall(f"{SVG_NS}rect")
            if r.find(f"{SVG_NS}title") is not None
        ]
        by_title = {r.find(f"{SVG_NS}title").text: float(r.get("height")) for r in bars}
        assert by_title["max 8: 1.9"] > by_title["max 2: 1.2"]
        # tallest bar spans (nearly) the full plot height
        assert max(by_title.values()) > 250

    def test_title_and_labels_present(self, chart):
        text = barchart_to_svg(chart)
        assert "Load balance" in text
        assert "seconds" in text
        assert ">2<" in text and ">8<" in text

    def test_escaping(self):
        chart = BarChart('a <"dangerous"> & title')
        s = Series("s<1>")
        s.add("c&d", 1.0)
        chart.add_series(s)
        text = barchart_to_svg(chart)
        assert "<\"dangerous\">" not in text
        _parse(text)  # must stay well-formed

    def test_empty_chart_renders(self):
        text = barchart_to_svg(BarChart("empty"))
        _parse(text)

    def test_missing_category_skipped(self):
        chart = BarChart()
        a = Series("a")
        a.add("x", 1.0)
        b = Series("b")
        b.add("y", 2.0)
        chart.add_series(a)
        chart.add_series(b)
        root = _parse(barchart_to_svg(chart))
        bars = [
            r for r in root.findall(f"{SVG_NS}rect")
            if r.find(f"{SVG_NS}title") is not None
        ]
        assert len(bars) == 2

    def test_deterministic(self, chart):
        assert barchart_to_svg(chart) == barchart_to_svg(chart)

    def test_save(self, chart, tmp_path):
        path = str(tmp_path / "chart.svg")
        save_svg(barchart_to_svg(chart), path)
        _parse(open(path).read())


class TestSeriesSvg:
    def test_polyline_points(self):
        points = [(0.0, 1.0), (1.0, 2.0), (2.0, 0.5)]
        root = _parse(series_to_svg(points, title="hist"))
        poly = root.find(f"{SVG_NS}polyline")
        assert poly is not None
        coords = poly.get("points").split()
        assert len(coords) == 3

    def test_empty_series(self):
        _parse(series_to_svg([], title="empty"))

    def test_from_vector_result(self, store):
        from repro.core import PrFilter
        from repro.core.query import QueryEngine
        from repro.ptdf.format import ResourceSet

        store.add_execution("e1", "app")
        store.add_resource("/e1", "execution", "e1")
        store.add_vector_result(
            "e1", ResourceSet(("/e1",)), "Paradyn", "cpu", [1.0, None, 2.0],
            start_time=0.0, bin_width=0.5,
        )
        r = QueryEngine(store).fetch(PrFilter())[0]
        points = [((s + e) / 2, v) for _i, s, e, v in r.series]
        text = series_to_svg(points, title=r.metric)
        root = _parse(text)
        assert root.find(f"{SVG_NS}polyline") is not None
