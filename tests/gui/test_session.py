"""Session save/load tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AttributeClause,
    ByAttributes,
    ByConstraint,
    ByName,
    ByType,
    Expansion,
    PrFilter,
)
from repro.gui.session import Session, filter_from_dict, filter_to_dict


FILTERS = [
    ByName("/LLNL/Frost", Expansion.DESCENDANTS),
    ByName("batch", Expansion.NONE),
    ByType("grid/machine", Expansion.BOTH),
    ByAttributes(
        (AttributeClause("clock MHz", ">", "1000"), AttributeClause("vendor", "=", "IBM")),
        type_path="grid/machine/partition/node/processor",
        expansion=Expansion.ANCESTORS,
    ),
    ByConstraint("/M/n16", direction="from", expansion=Expansion.NONE),
]


class TestFilterSerialisation:
    @pytest.mark.parametrize("f", FILTERS, ids=[type(f).__name__ + str(i) for i, f in enumerate(FILTERS)])
    def test_round_trip(self, f):
        assert filter_from_dict(filter_to_dict(f)) == f

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            filter_from_dict({"kind": "bogus"})


class TestSessionPersistence:
    def test_save_load(self, tmp_path):
        session = Session(
            name="frost-study",
            pr_filter=PrFilter(list(FILTERS)),
            columns=["build/module/function"],
            sort_column="value",
            sort_descending=True,
            notes="looking at load balance",
        )
        path = str(tmp_path / "s.json")
        session.save(path)
        loaded = Session.load(path)
        assert loaded == session

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ValueError):
            Session.load(str(path))

    @settings(max_examples=50, deadline=None)
    @given(
        notes=st.text(max_size=100),
        sort_desc=st.booleans(),
        picks=st.lists(st.sampled_from(FILTERS), max_size=4),
    )
    def test_dict_round_trip_property(self, notes, sort_desc, picks):
        s = Session(pr_filter=PrFilter(list(picks)), notes=notes,
                    sort_descending=sort_desc)
        assert Session.from_dict(s.to_dict()) == s


class TestSessionRun:
    def test_rerun_reproduces_table(self, tiny_store):
        session = Session(
            pr_filter=PrFilter([ByName("/irs-a", Expansion.DESCENDANTS)]),
            columns=["build/module/function"],
            sort_column="value",
        )
        window = session.run(tiny_store)
        assert len(window.rows) == 4
        assert "build/module/function" in window.columns
        values = [r.cell("value") for r in window.rows]
        assert values == sorted(values)

    def test_saved_session_reruns_identically(self, tiny_store, tmp_path):
        session = Session(pr_filter=PrFilter([ByName("/IRS/src/funcA", Expansion.NONE)]))
        path = str(tmp_path / "s.json")
        session.save(path)
        w1 = session.run(tiny_store)
        w2 = Session.load(path).run(tiny_store)
        assert w1.to_csv() == w2.to_csv()

    def test_specified_ids_excluded_from_free_resources(self, tiny_store):
        session = Session(pr_filter=PrFilter([ByName("/IRS/src/funcA", Expansion.NONE)]))
        window = session.run(tiny_store)
        assert "build/module/function" not in window.addable_columns()
