"""End-to-end case-study tests at reduced scale (paper Section 4)."""

import pytest

from repro.core import ByName, Expansion, PTDataStore, PrFilter
from repro.core.query import QueryEngine
from repro.studies import run_noise_study, run_paradyn_study, run_purple_study


@pytest.fixture(scope="module")
def purple():
    return run_purple_study(process_counts=(2, 4), runs_per_count=1)


class TestPurpleStudy:
    def test_execution_count(self, purple):
        # 2 machines x 2 process counts
        assert purple.table1.executions_loaded == 4
        assert len(purple.executions) == 4

    def test_six_files_per_execution(self, purple):
        assert purple.table1.files_per_exec == 6.0

    def test_results_per_exec_near_paper(self, purple):
        # Paper Table 1: ~1,514 results/exec for IRS.
        assert 1400 < purple.table1.results_per_exec < 1600

    def test_metric_count_matches_paper(self, purple):
        assert purple.table1.metrics == 25

    def test_db_growth_positive(self, purple):
        assert purple.table1.db_growth_bytes > 0

    def test_machines_described(self, purple):
        assert purple.store.has_resource("/LLNL/MCR")
        assert purple.store.has_resource("/LLNL/Frost")

    def test_build_capture_loaded(self, purple):
        rid = purple.store.resource_id("/irs-build-mcr")
        attrs = {a.name for a in purple.store.attributes_of(rid)}
        assert "compilation flags" in attrs

    def test_queryable_by_function(self, purple):
        qe = QueryEngine(purple.store)
        results = qe.fetch(PrFilter([ByName("/IRS/src/main", Expansion.NONE)]))
        # main appears in every execution's tables (4 stats x 5 metrics, minus drops)
        assert len(results) > 4 * 15


class TestNoiseStudy:
    @pytest.fixture(scope="class")
    def reports(self):
        return run_noise_study(
            uv_executions=2, bgl_executions=2, uv_processes=(4, 8), mpip_callsites=8
        )

    def test_uv_vs_bgl_shape(self, reports):
        uv, bgl = reports
        # The paper's shape: UV executions dwarf BG/L's 8 native values.
        assert bgl.table1.results_per_exec == 8.0
        assert uv.table1.results_per_exec > 20 * bgl.table1.results_per_exec

    def test_shared_store(self, reports):
        uv, bgl = reports
        assert uv.store is bgl.store

    def test_uv_has_mpip_data(self, reports):
        uv, _ = reports
        assert "mpiP" in uv.store.tools()
        assert "PMAPI" in uv.store.tools()

    def test_bgl_machine_attributes(self, reports):
        _, bgl = reports
        mid = bgl.store.resource_id("/LLNL/BGL")
        attrs = {a.name: a.value for a in bgl.store.attributes_of(mid)}
        assert attrs["total nodes"] == "16384"

    def test_run_environment_captured(self, reports):
        uv, _ = reports
        execution = uv.executions[0]
        rid = uv.store.resource_id(f"/{execution}")
        attrs = {a.name for a in uv.store.attributes_of(rid)}
        assert "number of processes" in attrs


class TestParadynStudy:
    @pytest.fixture(scope="class")
    def report(self):
        return run_paradyn_study(
            executions=2, modules=8, functions_per_module=4, histograms=6, bins=100
        )

    def test_execution_count(self, report):
        assert report.table1.executions_loaded == 2

    def test_nan_bins_dropped(self, report):
        assert report.table1.results_per_exec < 6 * 100

    def test_resources_dominate(self, report):
        # Paradyn's defining trait in Table 1: huge resource counts/exec.
        assert report.table1.resources_per_exec > 100

    def test_paradyn_tool_registered(self, report):
        assert "Paradyn" in report.store.tools()

    def test_syncobjects_loaded(self, report):
        assert report.store.resource_type("syncObject/syncClass/syncInstance")

    def test_per_exec_variation(self, report):
        # Dynamic instrumentation: executions differ in result counts.
        counts = [
            report.store.execution_details(e)["results"] for e in report.executions
        ]
        assert counts[0] != counts[1]


class TestCrossStudyIntegration:
    def test_all_studies_share_one_store(self):
        """The paper's vision: one data store holding every study."""
        store = PTDataStore()
        purple = run_purple_study(store=store, process_counts=(2,), runs_per_count=1)
        uv, bgl = run_noise_study(
            store=store, uv_executions=1, bgl_executions=1, mpip_callsites=4
        )
        paradyn = run_paradyn_study(
            store=store, executions=1, modules=4, functions_per_module=3,
            histograms=3, bins=50,
        )
        apps = store.applications()
        assert "IRS" in apps and "SMG2000" in apps
        tools = set(store.tools())
        assert {"IRS benchmark", "SMG2000 benchmark", "mpiP", "PMAPI", "Paradyn"} <= tools
        # Cross-tool query: everything measured on any execution still
        # navigates through one pr-filter interface.
        qe = QueryEngine(store)
        total = len(qe.evaluate(PrFilter()))
        assert total == (
            purple.load_stats.results
            + uv.load_stats.results
            + bgl.load_stats.results
            + paradyn.load_stats.results
        )
