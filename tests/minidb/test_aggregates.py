"""GROUP BY / aggregate execution tests."""

import pytest

import repro.minidb as minidb


@pytest.fixture
def conn():
    c = minidb.connect()
    c.executescript(
        """
        CREATE TABLE m (run TEXT, metric TEXT, value REAL);
        INSERT INTO m VALUES
            ('r1', 'time', 10.0), ('r1', 'time', 12.0), ('r1', 'flops', 5.0),
            ('r2', 'time', 20.0), ('r2', 'time', NULL), ('r2', 'flops', 7.0);
        """
    )
    yield c
    c.close()


def q(conn, sql, params=()):
    return conn.execute(sql, params).fetchall()


class TestAggregates:
    def test_count_star_vs_count_column(self, conn):
        assert q(conn, "SELECT COUNT(*), COUNT(value) FROM m") == [(6, 5)]

    def test_sum_avg_min_max(self, conn):
        rows = q(conn, "SELECT SUM(value), AVG(value), MIN(value), MAX(value) FROM m")
        total = 10 + 12 + 5 + 20 + 7
        assert rows == [(total, total / 5, 5.0, 20.0)]

    def test_aggregate_ignores_null(self, conn):
        assert q(conn, "SELECT AVG(value) FROM m WHERE run = 'r2' AND metric = 'time'") == [
            (20.0,)
        ]

    def test_count_distinct(self, conn):
        assert q(conn, "SELECT COUNT(DISTINCT run) FROM m") == [(2,)]

    def test_sum_over_empty_is_null(self, conn):
        assert q(conn, "SELECT SUM(value) FROM m WHERE run = 'nope'") == [(None,)]

    def test_count_over_empty_is_zero(self, conn):
        assert q(conn, "SELECT COUNT(*) FROM m WHERE run = 'nope'") == [(0,)]

    def test_total_over_empty_is_zero_float(self, conn):
        assert q(conn, "SELECT TOTAL(value) FROM m WHERE run = 'nope'") == [(0.0,)]

    def test_group_concat(self, conn):
        rows = q(conn, "SELECT GROUP_CONCAT(metric) FROM m WHERE run = 'r1'")
        assert rows == [("time,time,flops",)]


class TestGroupBy:
    def test_group_by_single(self, conn):
        rows = q(
            conn,
            "SELECT run, COUNT(*) FROM m GROUP BY run ORDER BY run",
        )
        assert rows == [("r1", 3), ("r2", 3)]

    def test_group_by_two_columns(self, conn):
        rows = q(
            conn,
            "SELECT run, metric, SUM(value) FROM m GROUP BY run, metric "
            "ORDER BY run, metric",
        )
        assert rows == [
            ("r1", "flops", 5.0),
            ("r1", "time", 22.0),
            ("r2", "flops", 7.0),
            ("r2", "time", 20.0),
        ]

    def test_having(self, conn):
        rows = q(
            conn,
            "SELECT metric, COUNT(value) AS n FROM m GROUP BY metric "
            "HAVING COUNT(value) >= 3 ORDER BY metric",
        )
        assert rows == [("time", 3)]

    def test_group_by_expression(self, conn):
        rows = q(
            conn,
            "SELECT UPPER(run), COUNT(*) FROM m GROUP BY UPPER(run) ORDER BY 1",
        )
        assert rows == [("R1", 3), ("R2", 3)]

    def test_order_by_aggregate(self, conn):
        rows = q(
            conn,
            "SELECT metric FROM m GROUP BY metric ORDER BY SUM(value) DESC",
        )
        assert rows == [("time",), ("flops",)]

    def test_aggregate_in_expression(self, conn):
        rows = q(conn, "SELECT MAX(value) - MIN(value) FROM m WHERE metric = 'time'")
        assert rows == [(10.0,)]

    def test_aggregate_outside_group_context_rejected(self, conn):
        with pytest.raises(minidb.ProgrammingError):
            q(conn, "SELECT value FROM m WHERE SUM(value) > 1")

    def test_where_applies_before_grouping(self, conn):
        rows = q(
            conn,
            "SELECT run, COUNT(*) FROM m WHERE metric = 'time' GROUP BY run ORDER BY run",
        )
        assert rows == [("r1", 2), ("r2", 2)]
