"""CAST expression and miscellaneous engine-behaviour tests."""

import pytest

import repro.minidb as minidb


@pytest.fixture
def conn():
    c = minidb.connect()
    yield c
    c.close()


def q(conn, sql, params=()):
    return conn.execute(sql, params).fetchall()


class TestCast:
    def test_string_to_integer(self, conn):
        assert q(conn, "SELECT CAST('42' AS INTEGER)") == [(42,)]

    def test_float_to_integer_sqlite_behaviour(self, conn):
        # Stays fractional in our affinity model (sqlite truncates; our
        # NUMERIC-leaning coercion preserves); integral floats become int.
        assert q(conn, "SELECT CAST(3.0 AS INTEGER)") == [(3,)]

    def test_number_to_text(self, conn):
        assert q(conn, "SELECT CAST(5 AS TEXT), CAST(2.5 AS TEXT)") == [("5", "2.5")]

    def test_uncastable_text_to_number_is_zero(self, conn):
        assert q(conn, "SELECT CAST('abc' AS INTEGER), CAST('x' AS REAL)") == [(0, 0.0)]

    def test_null_passthrough(self, conn):
        assert q(conn, "SELECT CAST(NULL AS INTEGER)") == [(None,)]

    def test_two_word_type(self, conn):
        assert q(conn, "SELECT CAST('2.5' AS DOUBLE PRECISION)") == [(2.5,)]

    def test_sized_type(self, conn):
        assert q(conn, "SELECT CAST(42 AS VARCHAR(10))") == [("42",)]

    def test_cast_in_where(self, conn):
        conn.execute("CREATE TABLE t (v TEXT)")
        conn.execute("INSERT INTO t VALUES ('10'), ('9'), ('100')")
        rows = q(conn, "SELECT v FROM t WHERE CAST(v AS INTEGER) > 9 ORDER BY CAST(v AS INTEGER)")
        assert rows == [("10",), ("100",)]

    def test_cast_agrees_with_sqlite(self, conn):
        import sqlite3

        s = sqlite3.connect(":memory:")
        for sql in (
            "SELECT CAST('42' AS INTEGER)",
            "SELECT CAST(5 AS TEXT)",
            "SELECT CAST(NULL AS REAL)",
            "SELECT CAST('abc' AS INTEGER)",
        ):
            assert q(conn, sql) == s.execute(sql).fetchall(), sql
        s.close()


class TestStatementCache:
    def test_repeated_execution_uses_cache(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        for i in range(5):
            conn.execute("INSERT INTO t VALUES (?)", (i,))
        assert len(conn._statement_cache) >= 2
        assert q(conn, "SELECT COUNT(*) FROM t") == [(5,)]

    def test_cache_bounded(self, conn):
        for i in range(600):
            conn.execute(f"SELECT {i}")
        assert len(conn._statement_cache) <= 512


class TestEdgeCases:
    def test_empty_in_list(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t VALUES (1)")
        assert q(conn, "SELECT a FROM t WHERE a IN ()") == []
        assert q(conn, "SELECT a FROM t WHERE a NOT IN ()") == [(1,)]

    def test_select_negative_limit_means_all(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        assert len(q(conn, "SELECT a FROM t LIMIT -1")) == 2

    def test_union_then_order_by_position(self, conn):
        rows = q(conn, "SELECT 2 UNION SELECT 1 ORDER BY 1")
        assert rows == [(1,), (2,)]

    def test_deep_expression_nesting(self, conn):
        expr = "1" + " + 1" * 200
        assert q(conn, f"SELECT {expr}") == [(201,)]

    def test_quoted_identifier_with_space(self, conn):
        conn.execute('CREATE TABLE t ("clock MHz" INTEGER)')
        conn.execute('INSERT INTO t ("clock MHz") VALUES (375)')
        assert q(conn, 'SELECT "clock MHz" FROM t') == [(375,)]

    def test_self_referential_fk(self, conn):
        conn.execute(
            "CREATE TABLE node (id INTEGER PRIMARY KEY, parent INTEGER REFERENCES node(id))"
        )
        conn.execute("INSERT INTO node (id, parent) VALUES (1, NULL)")
        conn.execute("INSERT INTO node (id, parent) VALUES (2, 1)")
        with pytest.raises(minidb.IntegrityError):
            conn.execute("INSERT INTO node (id, parent) VALUES (3, 99)")
        with pytest.raises(minidb.IntegrityError):
            conn.execute("DELETE FROM node WHERE id = 1")

    def test_group_concat_deterministic(self, conn):
        conn.execute("CREATE TABLE t (g INTEGER, v TEXT)")
        conn.execute("INSERT INTO t VALUES (1, 'a'), (1, 'b'), (2, 'c')")
        rows = q(conn, "SELECT g, GROUP_CONCAT(v) FROM t GROUP BY g ORDER BY g")
        assert rows == [(1, "a,b"), (2, "c")]


class TestExplainCoverage:
    @pytest.fixture
    def planned(self, conn):
        conn.executescript(
            "CREATE TABLE a (id INTEGER PRIMARY KEY, v INTEGER);"
            "CREATE TABLE b (aid INTEGER, w INTEGER);"
            "CREATE INDEX idx_b ON b (aid);"
        )
        return conn

    def _plan(self, conn, sql):
        return "\n".join(r[0] for r in conn.execute("EXPLAIN " + sql).fetchall())

    def test_explain_update_uses_index(self, planned):
        assert "USING INDEX __a_pk" in self._plan(planned, "UPDATE a SET v = 1 WHERE id = 3")

    def test_explain_delete_scan(self, planned):
        assert "SCAN a" in self._plan(planned, "DELETE FROM a WHERE v = 1")

    def test_explain_union(self, planned):
        p = self._plan(planned, "SELECT v FROM a UNION SELECT w FROM b")
        assert "UNION" in p

    def test_explain_aggregate_and_order(self, planned):
        p = self._plan(planned, "SELECT v, COUNT(*) FROM a GROUP BY v ORDER BY v")
        assert "AGGREGATE" in p and "ORDER BY" in p

    def test_explain_constant_row(self, planned):
        assert "CONSTANT ROW" in self._plan(planned, "SELECT 1")

    def test_explain_in_probe(self, planned):
        p = self._plan(planned, "SELECT * FROM b WHERE aid IN (1, 2, 3)")
        assert "IN-PROBE (3 keys)" in p

    def test_explain_insert(self, planned):
        assert "INSERT" in self._plan(planned, "INSERT INTO a (v) VALUES (1)")


class TestExecuteScript:
    def test_splits_on_semicolons_outside_strings(self, conn):
        conn.executescript(
            "CREATE TABLE s (v TEXT); INSERT INTO s VALUES ('a;b'); -- c;\n"
            "INSERT INTO s VALUES (';');"
        )
        assert q(conn, "SELECT v FROM s ORDER BY v") == [(";",), ("a;b",)]

    def test_trailing_statement_without_semicolon(self, conn):
        conn.executescript("CREATE TABLE x (a INTEGER); INSERT INTO x VALUES (1)")
        assert q(conn, "SELECT a FROM x") == [(1,)]
