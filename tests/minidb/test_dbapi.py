"""PEP 249 conformance surface of minidb."""

import pytest

import repro.minidb as minidb


class TestModuleGlobals:
    def test_apilevel(self):
        assert minidb.apilevel == "2.0"

    def test_paramstyle(self):
        assert minidb.paramstyle == "qmark"

    def test_exception_hierarchy(self):
        assert issubclass(minidb.InterfaceError, minidb.Error)
        assert issubclass(minidb.DatabaseError, minidb.Error)
        for cls in (
            minidb.DataError,
            minidb.OperationalError,
            minidb.IntegrityError,
            minidb.InternalError,
            minidb.ProgrammingError,
            minidb.NotSupportedError,
        ):
            assert issubclass(cls, minidb.DatabaseError)


@pytest.fixture
def cur():
    c = minidb.connect()
    cur = c.cursor()
    cur.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    cur.executemany("INSERT INTO t VALUES (?, ?)", [(i, f"v{i}") for i in range(10)])
    yield cur
    c.close()


class TestCursor:
    def test_fetchone_sequence(self, cur):
        cur.execute("SELECT a FROM t ORDER BY a LIMIT 3")
        assert cur.fetchone() == (0,)
        assert cur.fetchone() == (1,)
        assert cur.fetchone() == (2,)
        assert cur.fetchone() is None

    def test_fetchmany_default_arraysize(self, cur):
        cur.execute("SELECT a FROM t ORDER BY a")
        assert cur.fetchmany() == [(0,)]
        cur.arraysize = 3
        assert cur.fetchmany() == [(1,), (2,), (3,)]

    def test_fetchmany_size(self, cur):
        cur.execute("SELECT a FROM t ORDER BY a")
        assert len(cur.fetchmany(4)) == 4

    def test_fetchall_after_partial(self, cur):
        cur.execute("SELECT a FROM t ORDER BY a")
        cur.fetchone()
        rest = cur.fetchall()
        assert len(rest) == 9

    def test_iteration(self, cur):
        cur.execute("SELECT a FROM t ORDER BY a")
        assert [r[0] for r in cur] == list(range(10))

    def test_description_is_seven_tuples(self, cur):
        cur.execute("SELECT a, b FROM t LIMIT 1")
        assert all(len(d) == 7 for d in cur.description)
        assert [d[0] for d in cur.description] == ["a", "b"]

    def test_rowcount_on_select(self, cur):
        # Streaming SELECT: the row count is unknown until the cursor is
        # drained, so rowcount is -1 exactly as sqlite3 reports it.
        cur.execute("SELECT * FROM t")
        assert cur.rowcount == -1
        assert len(cur.fetchall()) == 10

    def test_rowcount_on_dml(self, cur):
        cur.execute("DELETE FROM t WHERE a < 3")
        assert cur.rowcount == 3

    def test_executemany_rowcount(self, cur):
        cur.executemany("INSERT INTO t VALUES (?, ?)", [(100, "x"), (101, "y")])
        assert cur.rowcount == 2

    def test_closed_cursor_rejects_fetch(self, cur):
        cur.close()
        with pytest.raises(minidb.InterfaceError):
            cur.fetchall()

    def test_dict_params_rejected(self, cur):
        with pytest.raises(minidb.InterfaceError):
            cur.execute("SELECT :a", {"a": 1})

    def test_pyformat_placeholders_accepted(self, cur):
        # The paper's pyGreSQL path used %s placeholders.
        cur.execute("SELECT a FROM t WHERE a = %s", (5,))
        assert cur.fetchall() == [(5,)]
