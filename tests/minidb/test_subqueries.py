"""Subquery execution: IN/EXISTS/scalar, correlated and not."""

import pytest

import repro.minidb as minidb


@pytest.fixture
def conn():
    c = minidb.connect()
    c.executescript(
        """
        CREATE TABLE runs (id INTEGER PRIMARY KEY, app TEXT, nproc INTEGER);
        CREATE TABLE results (run_id INTEGER, metric TEXT, value REAL);
        INSERT INTO runs (app, nproc) VALUES ('irs', 2), ('irs', 8), ('smg', 4);
        INSERT INTO results VALUES
            (1, 'time', 100.0), (1, 'flops', 5.0),
            (2, 'time', 30.0),
            (3, 'time', 60.0), (3, 'flops', 9.0);
        """
    )
    yield c
    c.close()


def q(conn, sql, params=()):
    return conn.execute(sql, params).fetchall()


class TestInSubquery:
    def test_in(self, conn):
        rows = q(
            conn,
            "SELECT app, nproc FROM runs WHERE id IN "
            "(SELECT run_id FROM results WHERE metric = 'flops') ORDER BY id",
        )
        assert rows == [("irs", 2), ("smg", 4)]

    def test_not_in(self, conn):
        rows = q(
            conn,
            "SELECT nproc FROM runs WHERE id NOT IN "
            "(SELECT run_id FROM results WHERE metric = 'flops')",
        )
        assert rows == [(8,)]

    def test_in_empty_subquery(self, conn):
        assert q(conn, "SELECT 1 FROM runs WHERE id IN (SELECT run_id FROM results WHERE 1 = 0)") == []

    def test_in_subquery_must_be_single_column(self, conn):
        with pytest.raises(minidb.ProgrammingError):
            q(conn, "SELECT 1 FROM runs WHERE id IN (SELECT run_id, value FROM results)")


class TestExists:
    def test_correlated_exists(self, conn):
        rows = q(
            conn,
            "SELECT app, nproc FROM runs r WHERE EXISTS "
            "(SELECT 1 FROM results x WHERE x.run_id = r.id AND x.metric = 'flops') "
            "ORDER BY r.id",
        )
        assert rows == [("irs", 2), ("smg", 4)]

    def test_not_exists(self, conn):
        rows = q(
            conn,
            "SELECT nproc FROM runs r WHERE NOT EXISTS "
            "(SELECT 1 FROM results x WHERE x.run_id = r.id AND x.metric = 'flops')",
        )
        assert rows == [(8,)]


class TestScalarSubquery:
    def test_uncorrelated_scalar(self, conn):
        rows = q(conn, "SELECT app FROM runs WHERE nproc = (SELECT MAX(nproc) FROM runs)")
        assert rows == [("irs",)]

    def test_correlated_scalar_in_projection(self, conn):
        rows = q(
            conn,
            "SELECT r.app, r.nproc, "
            "(SELECT SUM(value) FROM results x WHERE x.run_id = r.id) AS total "
            "FROM runs r ORDER BY r.id",
        )
        assert rows == [("irs", 2, 105.0), ("irs", 8, 30.0), ("smg", 4, 69.0)]

    def test_scalar_subquery_empty_is_null(self, conn):
        rows = q(conn, "SELECT (SELECT value FROM results WHERE 1 = 0)")
        assert rows == [(None,)]

    def test_scalar_subquery_multi_row_rejected(self, conn):
        with pytest.raises(minidb.ProgrammingError):
            q(conn, "SELECT (SELECT value FROM results)")

    def test_scalar_subquery_multi_column_rejected(self, conn):
        with pytest.raises(minidb.ProgrammingError):
            q(conn, "SELECT (SELECT metric, value FROM results LIMIT 1)")


class TestFromSubquery:
    def test_nested_aggregation(self, conn):
        rows = q(
            conn,
            "SELECT AVG(total) FROM "
            "(SELECT run_id, SUM(value) AS total FROM results GROUP BY run_id) t",
        )
        assert rows == [((105.0 + 30.0 + 69.0) / 3,)]

    def test_subquery_with_order_and_limit(self, conn):
        rows = q(
            conn,
            "SELECT value FROM "
            "(SELECT value FROM results WHERE metric = 'time' ORDER BY value DESC LIMIT 2) t "
            "ORDER BY value",
        )
        assert rows == [(60.0,), (100.0,)]
