"""Statement-cache eviction: LRU, so hot statements survive bursts.

The original cache cleared wholesale at capacity, which meant a burst of
one-off statements (schema introspection, ad-hoc queries) dumped the hot
loader statements too.  Eviction is now least-recently-used.
"""

import repro.minidb as minidb
from repro.minidb.connection import STATEMENT_CACHE_SIZE


def _fresh_conn():
    conn = minidb.connect()
    conn.execute("CREATE TABLE t (a INTEGER)")
    return conn


def test_hot_statement_survives_one_off_burst():
    conn = _fresh_conn()
    hot = "INSERT INTO t (a) VALUES (?)"
    conn.execute(hot, (0,))
    parsed = conn._statement_cache[hot]
    # A burst of distinct one-off statements, with the hot statement
    # re-used periodically: the hot entry must never be evicted.
    for i in range(2 * STATEMENT_CACHE_SIZE):
        conn.execute(f"SELECT a + {i} FROM t")
        if i % 50 == 0:
            conn.execute(hot, (i,))
    assert conn._statement_cache[hot] is parsed
    conn.close()


def test_cache_size_stays_bounded():
    conn = _fresh_conn()
    for i in range(STATEMENT_CACHE_SIZE + 100):
        conn.execute(f"SELECT {i} FROM t")
    assert len(conn._statement_cache) <= STATEMENT_CACHE_SIZE
    conn.close()


def test_least_recently_used_is_evicted_first():
    conn = _fresh_conn()
    first = "SELECT a FROM t"
    conn.execute(first)
    # Touch `first` again after half the burst: statements older than the
    # touch fall out before it does.
    for i in range(STATEMENT_CACHE_SIZE - 2):
        conn.execute(f"SELECT a + {i} FROM t")
    conn.execute(first)
    for i in range(10):
        conn.execute(f"SELECT a - {i} FROM t")
    assert first in conn._statement_cache
    assert "SELECT a + 0 FROM t" not in conn._statement_cache
    conn.close()


def test_cache_hit_returns_same_parse_tree():
    conn = _fresh_conn()
    sql = "SELECT a FROM t WHERE a = ?"
    conn.execute(sql, (1,))
    assert conn._parse_cached(sql) is conn._parse_cached(sql)
    conn.close()
