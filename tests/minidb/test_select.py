"""SELECT execution tests against the minidb engine."""

import pytest

import repro.minidb as minidb


@pytest.fixture
def conn():
    c = minidb.connect()
    cur = c.cursor()
    cur.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, dept TEXT, salary REAL)"
    )
    rows = [
        ("alice", "eng", 120.0),
        ("bob", "eng", 100.0),
        ("carol", "ops", 90.0),
        ("dave", "ops", 95.0),
        ("erin", "mgmt", 150.0),
    ]
    cur.executemany("INSERT INTO emp (name, dept, salary) VALUES (?, ?, ?)", rows)
    yield c
    c.close()


def q(conn, sql, params=()):
    return conn.execute(sql, params).fetchall()


class TestProjection:
    def test_select_columns(self, conn):
        rows = q(conn, "SELECT name, salary FROM emp WHERE name = 'alice'")
        assert rows == [("alice", 120.0)]

    def test_select_star_order(self, conn):
        rows = q(conn, "SELECT * FROM emp WHERE id = 1")
        assert rows == [(1, "alice", "eng", 120.0)]

    def test_expression_projection(self, conn):
        rows = q(conn, "SELECT salary * 2 FROM emp WHERE name = 'bob'")
        assert rows == [(200.0,)]

    def test_description_names(self, conn):
        cur = conn.execute("SELECT name AS who, salary FROM emp LIMIT 1")
        assert [d[0] for d in cur.description] == ["who", "salary"]

    def test_select_without_from(self, conn):
        assert q(conn, "SELECT 1 + 1, 'x' || 'y'") == [(2, "xy")]

    def test_qualified_star(self, conn):
        rows = q(conn, "SELECT e.* FROM emp e WHERE e.id = 2")
        assert rows == [(2, "bob", "eng", 100.0)]


class TestWhere:
    def test_comparison_operators(self, conn):
        assert len(q(conn, "SELECT 1 FROM emp WHERE salary >= 100")) == 3
        assert len(q(conn, "SELECT 1 FROM emp WHERE salary <> 90")) == 4

    def test_and_or_not(self, conn):
        rows = q(
            conn,
            "SELECT name FROM emp WHERE dept = 'eng' AND NOT salary < 110 OR name = 'erin' "
            "ORDER BY name",
        )
        assert rows == [("alice",), ("erin",)]

    def test_like(self, conn):
        assert q(conn, "SELECT name FROM emp WHERE name LIKE 'a%'") == [("alice",)]
        assert q(conn, "SELECT name FROM emp WHERE name LIKE '_ob'") == [("bob",)]

    def test_not_like(self, conn):
        assert len(q(conn, "SELECT 1 FROM emp WHERE name NOT LIKE '%a%'")) == 2

    def test_between(self, conn):
        rows = q(conn, "SELECT name FROM emp WHERE salary BETWEEN 90 AND 100 ORDER BY name")
        assert rows == [("bob",), ("carol",), ("dave",)]

    def test_in_list(self, conn):
        rows = q(conn, "SELECT name FROM emp WHERE dept IN ('ops', 'mgmt') ORDER BY name")
        assert [r[0] for r in rows] == ["carol", "dave", "erin"]

    def test_is_null(self, conn):
        conn.execute("INSERT INTO emp (name, dept, salary) VALUES ('zed', NULL, NULL)")
        assert q(conn, "SELECT name FROM emp WHERE dept IS NULL") == [("zed",)]
        assert len(q(conn, "SELECT 1 FROM emp WHERE salary IS NOT NULL")) == 5

    def test_null_comparison_filters_row(self, conn):
        conn.execute("INSERT INTO emp (name, dept, salary) VALUES ('zed', NULL, NULL)")
        # NULL = NULL is unknown, not true.
        assert q(conn, "SELECT name FROM emp WHERE dept = NULL") == []

    def test_parameters(self, conn):
        rows = q(conn, "SELECT name FROM emp WHERE dept = ? AND salary > ?", ("eng", 110))
        assert rows == [("alice",)]

    def test_too_few_parameters(self, conn):
        with pytest.raises(minidb.ProgrammingError):
            q(conn, "SELECT 1 FROM emp WHERE dept = ?")


class TestOrderLimit:
    def test_order_by_column(self, conn):
        rows = q(conn, "SELECT name FROM emp ORDER BY salary")
        assert rows[0] == ("carol",) and rows[-1] == ("erin",)

    def test_order_by_desc(self, conn):
        rows = q(conn, "SELECT name FROM emp ORDER BY salary DESC")
        assert rows[0] == ("erin",)

    def test_order_by_position(self, conn):
        rows = q(conn, "SELECT name, salary FROM emp ORDER BY 2 DESC LIMIT 1")
        assert rows == [("erin", 150.0)]

    def test_order_by_alias(self, conn):
        rows = q(conn, "SELECT salary AS s FROM emp ORDER BY s LIMIT 2")
        assert [r[0] for r in rows] == [90.0, 95.0]

    def test_order_by_unprojected_column(self, conn):
        rows = q(conn, "SELECT name FROM emp ORDER BY salary LIMIT 1")
        assert rows == [("carol",)]

    def test_limit_offset(self, conn):
        rows = q(conn, "SELECT name FROM emp ORDER BY name LIMIT 2 OFFSET 1")
        assert rows == [("bob",), ("carol",)]

    def test_order_stable_mixed_expression(self, conn):
        rows = q(conn, "SELECT name FROM emp ORDER BY dept, salary DESC")
        assert rows == [("alice",), ("bob",), ("erin",), ("dave",), ("carol",)]


class TestDistinctUnion:
    def test_distinct(self, conn):
        rows = q(conn, "SELECT DISTINCT dept FROM emp ORDER BY dept")
        assert rows == [("eng",), ("mgmt",), ("ops",)]

    def test_union_dedups(self, conn):
        rows = q(
            conn,
            "SELECT dept FROM emp UNION SELECT dept FROM emp ORDER BY dept",
        )
        assert rows == [("eng",), ("mgmt",), ("ops",)]

    def test_union_all_keeps_duplicates(self, conn):
        rows = q(conn, "SELECT dept FROM emp UNION ALL SELECT dept FROM emp")
        assert len(rows) == 10

    def test_union_arity_mismatch(self, conn):
        with pytest.raises(minidb.ProgrammingError):
            q(conn, "SELECT dept, id FROM emp UNION SELECT dept FROM emp")


class TestScalarFunctions:
    def test_string_functions(self, conn):
        assert q(conn, "SELECT UPPER('ab'), LOWER('AB'), LENGTH('abc')") == [("AB", "ab", 3)]

    def test_substr(self, conn):
        assert q(conn, "SELECT SUBSTR('hello', 2, 3)") == [("ell",)]
        assert q(conn, "SELECT SUBSTR('hello', -3)") == [("llo",)]

    def test_coalesce_ifnull(self, conn):
        assert q(conn, "SELECT COALESCE(NULL, NULL, 3), IFNULL(NULL, 'd')") == [(3, "d")]

    def test_nullif(self, conn):
        assert q(conn, "SELECT NULLIF(1, 1), NULLIF(1, 2)") == [(None, 1)]

    def test_abs_round(self, conn):
        assert q(conn, "SELECT ABS(-4), ROUND(3.14159, 2)") == [(4, 3.14)]

    def test_replace_trim(self, conn):
        assert q(conn, "SELECT REPLACE('a-b', '-', '+'), TRIM('  x ')") == [("a+b", "x")]

    def test_typeof(self, conn):
        assert q(conn, "SELECT TYPEOF(1), TYPEOF(1.5), TYPEOF('x'), TYPEOF(NULL)") == [
            ("integer", "real", "text", "null")
        ]

    def test_unknown_function(self, conn):
        with pytest.raises(minidb.ProgrammingError):
            q(conn, "SELECT NO_SUCH_FN(1)")

    def test_case_expression(self, conn):
        rows = q(
            conn,
            "SELECT name, CASE WHEN salary >= 120 THEN 'high' ELSE 'low' END "
            "FROM emp ORDER BY name LIMIT 2",
        )
        assert rows == [("alice", "high"), ("bob", "low")]

    def test_division_by_zero_is_null(self, conn):
        assert q(conn, "SELECT 1 / 0, 5 % 0") == [(None, None)]

    def test_integer_division_truncates(self, conn):
        assert q(conn, "SELECT 7 / 2, -7 / 2") == [(3, -3)]
