"""Access-path selection tests: which queries use which indexes."""

import pytest

import repro.minidb as minidb


@pytest.fixture
def conn():
    c = minidb.connect()
    c.executescript(
        """
        CREATE TABLE r (id INTEGER PRIMARY KEY, name TEXT, type_id INTEGER, base TEXT);
        CREATE INDEX idx_type ON r (type_id);
        CREATE UNIQUE INDEX idx_name ON r (name);
        CREATE INDEX idx_composite ON r (base, type_id);
        """
    )
    c.executemany(
        "INSERT INTO r (name, type_id, base) VALUES (?, ?, ?)",
        [(f"/m/n{i}", i % 5, f"n{i % 10}") for i in range(100)],
    )
    yield c
    c.close()


def plan(conn, sql):
    return "\n".join(r[0] for r in conn.execute("EXPLAIN " + sql).fetchall())


class TestAccessPathSelection:
    def test_pk_equality_uses_pk_index(self, conn):
        assert "USING INDEX __r_pk" in plan(conn, "SELECT * FROM r WHERE id = 5")

    def test_unique_index_preferred_over_nonunique(self, conn):
        p = plan(conn, "SELECT * FROM r WHERE name = '/m/n3' AND type_id = 3")
        assert "idx_name" in p

    def test_nonindexed_predicate_scans(self, conn):
        conn.execute("CREATE TABLE plainx (v INTEGER)")
        assert "SCAN plainx" in plan(conn, "SELECT * FROM plainx WHERE v = 1")

    def test_composite_full_match(self, conn):
        p = plan(conn, "SELECT * FROM r WHERE base = 'n1' AND type_id = 1")
        assert "idx_composite" in p

    def test_composite_prefix_match_range(self, conn):
        p = plan(conn, "SELECT * FROM r WHERE base = 'n1'")
        assert "idx_composite" in p and "RANGE" in p

    def test_range_scan_on_leading_column(self, conn):
        p = plan(conn, "SELECT * FROM r WHERE type_id > 2")
        assert "idx_type" in p and "RANGE" in p

    def test_flipped_operands_still_sargable(self, conn):
        assert "USING INDEX" in plan(conn, "SELECT * FROM r WHERE 5 = id")

    def test_or_predicate_not_sargable(self, conn):
        p = plan(conn, "SELECT * FROM r WHERE id = 1 OR id = 2")
        assert "SCAN r" in p

    def test_expression_on_column_not_sargable(self, conn):
        p = plan(conn, "SELECT * FROM r WHERE id + 1 = 2")
        assert "SCAN r" in p


class TestPlanCorrectness:
    """Indexed and non-indexed paths must agree on results."""

    @pytest.mark.parametrize(
        "where,params",
        [
            ("id = ?", (7,)),
            ("name = ?", ("/m/n42",)),
            ("type_id = ?", (3,)),
            ("base = ? AND type_id = ?", ("n2", 2)),
            ("type_id > ?", (2,)),
            ("type_id >= ? AND type_id < ?", (1, 4)),
            ("base = ?", ("n3",)),
        ],
    )
    def test_same_rows_with_and_without_indexes(self, conn, where, params):
        with_idx = sorted(
            conn.execute(f"SELECT id FROM r WHERE {where}", params).fetchall()
        )
        # A second engine without secondary indexes.
        c2 = minidb.connect()
        c2.execute("CREATE TABLE r (id INTEGER, name TEXT, type_id INTEGER, base TEXT)")
        rows = conn.execute("SELECT id, name, type_id, base FROM r").fetchall()
        cur = c2.cursor()
        cur.executemany("INSERT INTO r VALUES (?, ?, ?, ?)", rows)
        without_idx = sorted(
            c2.execute(f"SELECT id FROM r WHERE {where}", params).fetchall()
        )
        c2.close()
        assert with_idx == without_idx
        assert with_idx  # the parametrized predicates all match something

    def test_update_via_index_path(self, conn):
        cur = conn.execute("UPDATE r SET base = 'patched' WHERE id = 10")
        assert cur.rowcount == 1
        assert conn.execute("SELECT base FROM r WHERE id = 10").fetchall() == [("patched",)]

    def test_delete_via_index_path(self, conn):
        cur = conn.execute("DELETE FROM r WHERE name = '/m/n50'")
        assert cur.rowcount == 1
        assert conn.execute("SELECT COUNT(*) FROM r").fetchall() == [(99,)]

    def test_index_maintained_after_update(self, conn):
        conn.execute("UPDATE r SET type_id = 99 WHERE id = 1")
        rows = conn.execute("SELECT id FROM r WHERE type_id = 99").fetchall()
        assert rows == [(1,)]
