"""INSERT/UPDATE/DELETE and schema-change tests, including constraints."""

import pytest

import repro.minidb as minidb


@pytest.fixture
def conn():
    c = minidb.connect()
    yield c
    c.close()


def q(conn, sql, params=()):
    return conn.execute(sql, params).fetchall()


class TestInsert:
    def test_lastrowid_autoincrements(self, conn):
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        c1 = conn.execute("INSERT INTO t (v) VALUES ('a')")
        c2 = conn.execute("INSERT INTO t (v) VALUES ('b')")
        assert (c1.lastrowid, c2.lastrowid) == (1, 2)

    def test_explicit_pk_advances_counter(self, conn):
        conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        conn.execute("INSERT INTO t (id, v) VALUES (10, 'a')")
        cur = conn.execute("INSERT INTO t (v) VALUES ('b')")
        assert cur.lastrowid == 11

    def test_insert_without_column_list(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        conn.execute("INSERT INTO t VALUES (1, 'x')")
        assert q(conn, "SELECT * FROM t") == [(1, "x")]

    def test_insert_applies_defaults(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER, b TEXT DEFAULT 'dflt')")
        conn.execute("INSERT INTO t (a) VALUES (1)")
        assert q(conn, "SELECT b FROM t") == [("dflt",)]

    def test_wrong_value_count(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        with pytest.raises(minidb.ProgrammingError):
            conn.execute("INSERT INTO t VALUES (1)")

    def test_insert_select(self, conn):
        conn.executescript(
            "CREATE TABLE src (v INTEGER); CREATE TABLE dst (v INTEGER);"
            "INSERT INTO src VALUES (1), (2), (3);"
        )
        cur = conn.execute("INSERT INTO dst (v) SELECT v FROM src WHERE v > 1")
        assert cur.rowcount == 2
        assert q(conn, "SELECT v FROM dst ORDER BY v") == [(2,), (3,)]

    def test_type_coercion_on_insert(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER, b REAL, c TEXT)")
        conn.execute("INSERT INTO t VALUES ('5', '2.5', 7)")
        assert q(conn, "SELECT * FROM t") == [(5, 2.5, "7")]


class TestConstraints:
    def test_not_null(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER NOT NULL)")
        with pytest.raises(minidb.IntegrityError):
            conn.execute("INSERT INTO t VALUES (NULL)")

    def test_unique_column(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER UNIQUE)")
        conn.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(minidb.IntegrityError):
            conn.execute("INSERT INTO t VALUES (1)")

    def test_unique_allows_multiple_nulls(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER UNIQUE)")
        conn.execute("INSERT INTO t VALUES (NULL), (NULL)")
        assert q(conn, "SELECT COUNT(*) FROM t") == [(2,)]

    def test_composite_primary_key(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))")
        conn.execute("INSERT INTO t VALUES (1, 1), (1, 2)")
        with pytest.raises(minidb.IntegrityError):
            conn.execute("INSERT INTO t VALUES (1, 2)")

    def test_foreign_key_enforced_on_insert(self, conn):
        conn.executescript(
            "CREATE TABLE p (id INTEGER PRIMARY KEY);"
            "CREATE TABLE c (pid INTEGER REFERENCES p(id));"
            "INSERT INTO p (id) VALUES (1);"
        )
        conn.execute("INSERT INTO c VALUES (1)")
        with pytest.raises(minidb.IntegrityError):
            conn.execute("INSERT INTO c VALUES (2)")

    def test_foreign_key_null_allowed(self, conn):
        conn.executescript(
            "CREATE TABLE p (id INTEGER PRIMARY KEY);"
            "CREATE TABLE c (pid INTEGER REFERENCES p(id));"
        )
        conn.execute("INSERT INTO c VALUES (NULL)")

    def test_foreign_key_blocks_parent_delete(self, conn):
        conn.executescript(
            "CREATE TABLE p (id INTEGER PRIMARY KEY);"
            "CREATE TABLE c (pid INTEGER REFERENCES p(id));"
            "INSERT INTO p (id) VALUES (1); INSERT INTO c VALUES (1);"
        )
        with pytest.raises(minidb.IntegrityError):
            conn.execute("DELETE FROM p WHERE id = 1")
        # After removing the child the delete succeeds.
        conn.execute("DELETE FROM c")
        conn.execute("DELETE FROM p WHERE id = 1")
        assert q(conn, "SELECT COUNT(*) FROM p") == [(0,)]


class TestUpdateDelete:
    @pytest.fixture(autouse=True)
    def _tbl(self, conn):
        conn.executescript(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER);"
            "INSERT INTO t (v) VALUES (1), (2), (3);"
        )

    def test_update_rowcount(self, conn):
        cur = conn.execute("UPDATE t SET v = v + 10 WHERE v >= 2")
        assert cur.rowcount == 2
        assert q(conn, "SELECT v FROM t ORDER BY id") == [(1,), (12,), (13,)]

    def test_update_references_old_values(self, conn):
        conn.execute("UPDATE t SET v = id WHERE 1 = 1")
        assert q(conn, "SELECT v FROM t ORDER BY id") == [(1,), (2,), (3,)]

    def test_update_violating_unique_rolls_back_row(self, conn):
        conn.execute("CREATE TABLE u (a INTEGER UNIQUE)")
        conn.execute("INSERT INTO u VALUES (1), (2)")
        with pytest.raises(minidb.IntegrityError):
            conn.execute("UPDATE u SET a = 1 WHERE a = 2")
        assert q(conn, "SELECT a FROM u ORDER BY a") == [(1,), (2,)]

    def test_delete_where(self, conn):
        cur = conn.execute("DELETE FROM t WHERE v = 2")
        assert cur.rowcount == 1
        assert q(conn, "SELECT COUNT(*) FROM t") == [(2,)]

    def test_delete_all(self, conn):
        assert conn.execute("DELETE FROM t").rowcount == 3


class TestSchemaChanges:
    def test_drop_table(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("DROP TABLE t")
        with pytest.raises(minidb.ProgrammingError):
            conn.execute("SELECT * FROM t")

    def test_drop_missing_table(self, conn):
        with pytest.raises(minidb.ProgrammingError):
            conn.execute("DROP TABLE nope")
        conn.execute("DROP TABLE IF EXISTS nope")  # no error

    def test_create_table_if_not_exists(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)")

    def test_duplicate_table_rejected(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(minidb.ProgrammingError):
            conn.execute("CREATE TABLE t (a INTEGER)")

    def test_duplicate_column_rejected(self, conn):
        with pytest.raises(minidb.ProgrammingError):
            conn.execute("CREATE TABLE t (a INTEGER, a TEXT)")

    def test_index_lifecycle(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("CREATE INDEX i ON t (a)")
        with pytest.raises(minidb.ProgrammingError):
            conn.execute("CREATE INDEX i ON t (a)")
        conn.execute("DROP INDEX i")
        conn.execute("CREATE INDEX IF NOT EXISTS i ON t (a)")

    def test_unique_index_backfills_and_enforces(self, conn):
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t VALUES (1), (1)")
        with pytest.raises(minidb.IntegrityError):
            conn.execute("CREATE UNIQUE INDEX u ON t (a)")
