"""Unit coverage for the vectorized execution path.

The differential corpus (test_operators.py) pins end-to-end agreement
with sqlite3 and the row engine; this module covers the pieces in
isolation — columnar segment encodings, snapshot invalidation,
mid-scan mutation fallback, kernel semantics on edge values, the batch
cursor contract and the new observability counters.
"""

import pytest

import repro.minidb as minidb
from repro.minidb import optimizer, vector
from repro.minidb.errors import DataError, ProgrammingError
from repro.minidb.storage import SEGMENT_ROWS, ColumnSegment
from repro.obs import metrics as obs_metrics


@pytest.fixture
def vec_conn(monkeypatch):
    """A connection whose every full scan vectorizes."""
    monkeypatch.setattr(optimizer, "VECTOR_MIN_ROWS", 0)
    conn = minidb.connect()
    yield conn
    conn.close()


def _plan(conn, sql, params=()):
    return [r[0] for r in conn.execute("EXPLAIN " + sql, params).fetchall()]


# ---------------------------------------------------------------------------
# Columnar segments.


class TestColumnSegment:
    def test_int_column_uses_typed_array(self):
        seg = ColumnSegment([1, 2, 3], [(10,), (20,), (30,)])
        kind, payload = seg.column(0)
        assert kind == "i"
        assert payload.typecode == "q"
        assert seg.slice(0, 1, 3) == ([20, 30], "i")

    def test_float_column_uses_typed_array(self):
        seg = ColumnSegment([1, 2], [(1.5,), (2.5,)])
        kind, payload = seg.column(0)
        assert kind == "f"
        assert seg.slice(0, 0, 2) == ([1.5, 2.5], "f")

    def test_huge_int_falls_back_to_objects(self):
        seg = ColumnSegment([1, 2], [(2**70,), (1,)])
        kind, _payload = seg.column(0)
        assert kind == "o"
        assert seg.slice(0, 0, 2) == ([2**70, 1], "o")

    def test_repeated_strings_dictionary_encode(self):
        rows = [("a",), ("b",)] * 50
        seg = ColumnSegment(list(range(100)), rows)
        kind, (codes, values) = seg.column(0)
        assert kind == "sd"
        assert sorted(values) == ["a", "b"]
        vals, batch_kind = seg.slice(0, 0, 4)
        assert vals == ["a", "b", "a", "b"]
        assert batch_kind == "s"  # decoded: batch sees plain strings

    def test_high_cardinality_strings_stay_plain(self):
        rows = [(f"s{i}",) for i in range(100)]
        seg = ColumnSegment(list(range(100)), rows)
        kind, _payload = seg.column(0)
        assert kind == "s"

    def test_mixed_and_null_columns_are_objects(self):
        seg = ColumnSegment([1, 2, 3], [(1,), (None,), ("x",)])
        kind, _payload = seg.column(0)
        assert kind == "o"

    def test_bool_is_not_an_int_column(self):
        # type() exactness: bools must not silently become int64s.
        seg = ColumnSegment([1, 2], [(True,), (1,)])
        kind, _payload = seg.column(0)
        assert kind == "o"


class TestColumnStoreInvalidation:
    def test_mutation_bumps_version_and_drops_snapshot(self):
        conn = minidb.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t VALUES (1)")
        table = conn.db.table("t")
        store = table.column_store()
        assert table.column_store() is store  # cached while unchanged
        conn.execute("UPDATE t SET a = 2")
        assert table.data_version != store.version
        fresh = table.column_store()
        assert fresh is not store
        assert fresh.nrows == 1
        conn.close()

    def test_rollback_restores_and_invalidates(self):
        conn = minidb.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t VALUES (1)")
        conn.commit()
        v0 = conn.db.table("t").data_version
        conn.execute("INSERT INTO t VALUES (2)")
        conn.rollback()
        assert conn.db.table("t").data_version != v0  # undo also mutates
        assert conn.execute("SELECT COUNT(*) FROM t").fetchone() == (1,)
        conn.close()

    def test_mid_scan_mutation_serves_snapshot_keys_live(self, vec_conn):
        """Matches SeqScan: deleted rows vanish, the scan never crashes."""
        vec_conn.execute("CREATE TABLE t (a INTEGER)")
        vec_conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(50)])
        cur = vec_conn.cursor()
        monkey_bs = vector.BATCH_SIZE
        try:
            vector.BATCH_SIZE = 10
            cur.execute("SELECT a FROM t")
            first = cur.fetchone()
            assert first == (0,)
            vec_conn.execute("DELETE FROM t WHERE a >= 40")
            got = [first] + cur.fetchall()
        finally:
            vector.BATCH_SIZE = monkey_bs
        values = sorted(v for (v,) in got)
        # The prefetched batch (0..9) is served as-is; later batches come
        # from live lookups, so the deleted tail never surfaces.
        assert values[:10] == list(range(10))
        assert all(v < 40 for v in values[10:])
        cur.close()


# ---------------------------------------------------------------------------
# Kernel semantics.


class TestKernelSemantics:
    @pytest.fixture
    def conn(self, vec_conn):
        vec_conn.execute(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, a INTEGER, s TEXT, f REAL)"
        )
        vec_conn.executemany(
            "INSERT INTO t VALUES (?, ?, ?, ?)",
            [
                (1, 10, "alpha", 1.5),
                (2, None, "beta", 2.5),
                (3, -3, None, None),
                (4, 0, "alpha", 0.0),
            ],
        )
        return vec_conn

    def test_three_valued_logic_matches_row_engine(self, conn):
        # Row 3 has s = NULL: FALSE OR NULL is NULL, NOT NULL is NULL,
        # so it is excluded -- only row 4 satisfies the predicate.
        sql = "SELECT id FROM t WHERE NOT (a > 0 OR s = 'beta')"
        assert "[batched]" in "\n".join(_plan(conn, sql))
        assert conn.execute(sql).fetchall() == [(4,)]

    def test_null_propagation_in_arithmetic(self, conn):
        got = conn.execute("SELECT a + 1, f * 2 FROM t ORDER BY id").fetchall()
        assert got == [(11, 3.0), (None, 5.0), (-2, None), (1, 0.0)]

    def test_division_by_zero_yields_null(self, conn):
        # Integer division truncates toward zero; x / 0 and x / NULL are NULL.
        got = conn.execute("SELECT 10 / a FROM t ORDER BY id").fetchall()
        assert got == [(1,), (None,), (-3,), (None,)]

    def test_string_concat_and_like(self, conn):
        got = conn.execute(
            "SELECT id FROM t WHERE s || '!' LIKE 'alpha%'"
        ).fetchall()
        assert got == [(1,), (4,)]

    def test_in_list_with_null_semantics(self, conn):
        # NULL IN (...) is NULL, never TRUE.
        got = conn.execute("SELECT id FROM t WHERE s IN ('alpha', 'x')").fetchall()
        assert got == [(1,), (4,)]
        got = conn.execute(
            "SELECT id FROM t WHERE s NOT IN ('alpha', 'x')"
        ).fetchall()
        assert got == [(2,)]

    def test_scalar_subexpression_evaluated_once_per_batch(self, conn):
        got = conn.execute(
            "SELECT id FROM t WHERE a >= 1 + ?", (4,)
        ).fetchall()
        assert got == [(1,)]

    def test_function_error_matches_row_engine(self, conn):
        # The row engine lets the scalar function's ValueError propagate;
        # the vectorized kernel must surface the same exception, and it
        # must do so at execute() (first-batch prefetch), not at fetch.
        with pytest.raises(ValueError):
            conn.execute("SELECT SUBSTR(s, 'x') FROM t")

    def test_cast_error_semantics(self, conn):
        got = conn.execute("SELECT CAST(s AS INTEGER) FROM t ORDER BY id").fetchall()
        row = minidb.connect()
        row.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, s TEXT)")
        row.executemany(
            "INSERT INTO t VALUES (?, ?)",
            [(1, "alpha"), (2, "beta"), (3, None), (4, "alpha")],
        )
        expect = row.execute("SELECT CAST(s AS INTEGER) FROM t ORDER BY id").fetchall()
        row.close()
        assert got == expect


# ---------------------------------------------------------------------------
# Plans, cursor contract, counters.


class TestBatchPlansAndCursor:
    def test_threshold_gates_vectorization(self):
        conn = minidb.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(100)])
        assert not any("[batched]" in l for l in _plan(conn, "SELECT a FROM t"))
        need = optimizer.VECTOR_MIN_ROWS - 100
        conn.executemany(
            "INSERT INTO t VALUES (?)", [(i,) for i in range(need)]
        )
        # Crossing the (power-of-two) threshold lands on a plan-cache size
        # bucket boundary, so the cached row plan is re-planned batched.
        plan = _plan(conn, "SELECT a FROM t")
        assert any("[batched]" in l for l in plan), plan
        conn.close()

    def test_index_paths_beat_vectorization(self, vec_conn):
        vec_conn.execute("CREATE TABLE t (a INTEGER)")
        vec_conn.execute("CREATE INDEX idx_a ON t (a)")
        vec_conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(64)])
        plan = _plan(vec_conn, "SELECT a FROM t WHERE a = 3")
        assert any("USING INDEX idx_a" in l for l in plan), plan

    def test_fetchone_slices_batches(self, vec_conn):
        vec_conn.execute("CREATE TABLE t (a INTEGER)")
        vec_conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(10)])
        cur = vec_conn.execute("SELECT a FROM t ORDER BY a")
        assert [cur.fetchone() for _ in range(3)] == [(0,), (1,), (2,)]
        assert cur.fetchmany(4) == [(3,), (4,), (5,), (6,)]
        assert cur.fetchall() == [(7,), (8,), (9,)]
        assert cur.fetchone() is None
        cur.close()

    def test_two_cursors_stream_independently(self, vec_conn):
        vec_conn.execute("CREATE TABLE t (a INTEGER)")
        vec_conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(20)])
        a = vec_conn.cursor()
        b = vec_conn.cursor()
        a.execute("SELECT a FROM t ORDER BY a")
        b.execute("SELECT a FROM t ORDER BY a DESC")
        assert [(a.fetchone()[0], b.fetchone()[0]) for _ in range(3)] == [
            (0, 19),
            (1, 18),
            (2, 17),
        ]
        a.close()
        b.close()

    def test_execute_surfaces_first_batch_errors(self, vec_conn):
        vec_conn.execute("CREATE TABLE t (a INTEGER)")
        vec_conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(5)])
        cur = vec_conn.cursor()
        with pytest.raises(ProgrammingError):
            # The error comes from the prefetched batch at execute() time,
            # not from the first fetch.
            cur.execute("SELECT LENGTH(a, a) FROM t")
        cur.close()

    def test_explain_analyze_reports_batches(self, vec_conn, monkeypatch):
        monkeypatch.setattr(vector, "BATCH_SIZE", 8)
        vec_conn.execute("CREATE TABLE t (a INTEGER)")
        vec_conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(20)])
        lines = [
            r[0]
            for r in vec_conn.execute(
                "EXPLAIN ANALYZE SELECT a FROM t WHERE a >= 4"
            ).fetchall()
        ]
        text = "\n".join(lines)
        assert "[batched]" in text
        assert "batches=3" in text  # ceil(20 / 8)
        assert "ACTUAL: 16 row(s) returned" in text

    def test_vector_counters_and_store_builds(self, vec_conn):
        vec_conn.execute("CREATE TABLE t (a INTEGER)")
        vec_conn.executemany(
            "INSERT INTO t VALUES (?)", [(i,) for i in range(SEGMENT_ROWS + 10)]
        )
        obs_metrics.enable()
        obs_metrics.reset()
        try:
            vec_conn.execute("SELECT a FROM t").fetchall()
            snap = obs_metrics.snapshot()
        finally:
            obs_metrics.disable()
        assert snap["minidb.vector.rows"]["value"] == SEGMENT_ROWS + 10
        expected_batches = -(-(SEGMENT_ROWS) // vector.BATCH_SIZE) + 1
        assert snap["minidb.vector.batches"]["value"] == expected_batches
        assert snap["minidb.column_store.builds"]["value"] == 1
        assert snap["minidb.column_store.segments"]["value"] == 2

    def test_aggregate_plan_is_vectorized(self, vec_conn):
        vec_conn.execute("CREATE TABLE t (g TEXT, v INTEGER)")
        vec_conn.executemany(
            "INSERT INTO t VALUES (?, ?)",
            [("ab"[i % 2], i) for i in range(32)],
        )
        sql = "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g"
        plan = _plan(vec_conn, sql)
        assert any("AGGREGATE [vectorized]" in l for l in plan), plan
        assert vec_conn.execute(sql).fetchall() == [
            ("a", sum(range(0, 32, 2))),
            ("b", sum(range(1, 32, 2))),
        ]

    def test_subquery_shapes_fall_back(self, vec_conn):
        vec_conn.execute("CREATE TABLE t (a INTEGER)")
        vec_conn.executemany("INSERT INTO t VALUES (?)", [(i,) for i in range(8)])
        plan = _plan(
            vec_conn, "SELECT a FROM t WHERE a IN (SELECT a FROM t WHERE a < 3)"
        )
        # Subqueries have no kernel: the WHERE cannot compile, so the
        # whole statement lowers through the row engine.
        assert not any("[batched]" in l for l in plan), plan
