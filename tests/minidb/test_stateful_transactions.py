"""Stateful property test: minidb vs a reference model under random
sequences of DML + transaction boundaries.

The reference keeps two plain dicts: ``committed`` (durable state) and
``pending`` (the open transaction's view).  After every operation the
engine's visible table must equal the reference's pending view, and after
rollback/commit it must equal the committed view.
"""

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

import repro.minidb as minidb


class TransactionMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.conn = minidb.connect()
        self.conn.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        self.committed: dict[int, int] = {}
        self.pending: dict[int, int] = {}

    keys = st.integers(0, 12)
    values = st.integers(-100, 100)

    def _engine_state(self) -> dict[int, int]:
        return dict(self.conn.execute("SELECT k, v FROM t").fetchall())

    @rule(k=keys, v=values)
    def upsert(self, k, v):
        if k in self.pending:
            self.conn.execute("UPDATE t SET v = ? WHERE k = ?", (v, k))
        else:
            self.conn.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
        self.pending[k] = v

    @rule(k=keys)
    def delete(self, k):
        self.conn.execute("DELETE FROM t WHERE k = ?", (k,))
        self.pending.pop(k, None)

    @rule(lo=keys, hi=keys, dv=values)
    def bulk_update(self, lo, hi, dv):
        if lo > hi:
            lo, hi = hi, lo
        self.conn.execute(
            "UPDATE t SET v = v + ? WHERE k BETWEEN ? AND ?", (dv, lo, hi)
        )
        for k in list(self.pending):
            if lo <= k <= hi:
                self.pending[k] += dv

    @rule(items=st.lists(st.tuples(keys, values), min_size=1, max_size=6))
    def insert_batch(self, items):
        """Vectorized executemany: statement-atomic on duplicate keys."""
        try:
            self.conn.executemany("INSERT INTO t (k, v) VALUES (?, ?)", items)
        except minidb.IntegrityError:
            return  # failed batch must leave no partial rows
        for k, v in items:
            self.pending[k] = v

    @rule()
    def commit(self):
        self.conn.commit()
        self.committed = dict(self.pending)

    @rule()
    def rollback(self):
        self.conn.rollback()
        self.pending = dict(self.committed)

    @invariant()
    def engine_matches_pending_view(self):
        assert self._engine_state() == self.pending

    def teardown(self):
        self.conn.close()


TestTransactionStateMachine = TransactionMachine.TestCase
TestTransactionStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


class TestExecutemanyAtomicityProperty:
    @settings(max_examples=50, deadline=None)
    @given(
        committed=st.lists(
            st.tuples(st.integers(0, 20), st.integers(-50, 50)),
            unique_by=lambda t: t[0],
            min_size=1,
            max_size=8,
        ),
        fresh=st.lists(
            st.tuples(st.integers(21, 40), st.integers(-50, 50)),
            unique_by=lambda t: t[0],
            max_size=6,
        ),
        dup_at=st.integers(0, 6),
    )
    def test_failed_batch_then_rollback_leaves_no_partial_rows(
        self, committed, fresh, dup_at
    ):
        """A batch that dies mid-way applies nothing, even before rollback."""
        conn = minidb.connect()
        conn.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        conn.executemany("INSERT INTO t (k, v) VALUES (?, ?)", committed)
        conn.commit()
        base = dict(conn.execute("SELECT k, v FROM t").fetchall())

        # Some uncommitted work, then a batch with a duplicate key planted
        # at a random position: the batch must fail statement-atomically.
        conn.execute("INSERT INTO t (k, v) VALUES (?, ?)", (99, 1))
        batch = list(fresh)
        batch.insert(min(dup_at, len(batch)), (committed[0][0], 0))
        with pytest.raises(minidb.IntegrityError):
            conn.executemany("INSERT INTO t (k, v) VALUES (?, ?)", batch)

        # Statement atomicity: only the pre-batch uncommitted row is there.
        state = dict(conn.execute("SELECT k, v FROM t").fetchall())
        assert state == {**base, 99: 1}

        # Transaction rollback: back to the committed snapshot exactly.
        conn.rollback()
        state = dict(conn.execute("SELECT k, v FROM t").fetchall())
        assert state == base
        conn.close()

    @settings(max_examples=50, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 30), st.integers(-50, 50)),
            unique_by=lambda t: t[0],
            min_size=1,
            max_size=10,
        )
    )
    def test_successful_batch_commits_all_rows(self, rows):
        conn = minidb.connect()
        conn.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        cur = conn.executemany("INSERT INTO t (k, v) VALUES (?, ?)", rows)
        assert cur.rowcount == len(rows)
        conn.commit()
        assert dict(conn.execute("SELECT k, v FROM t").fetchall()) == dict(rows)
        conn.close()


class TestWalDurabilityProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 8), st.integers(-50, 50), st.booleans()),
            min_size=1,
            max_size=25,
        )
    )
    def test_reopen_sees_exactly_committed_state(self, tmp_path_factory, ops):
        """Commit-marked changes survive reopen; uncommitted ones never do."""
        path = str(tmp_path_factory.mktemp("walprop") / "db.json")
        conn = minidb.connect(path)
        conn.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        conn.commit()
        committed: dict[int, int] = {}
        pending: dict[int, int] = {}
        for k, v, do_commit in ops:
            if k in pending:
                conn.execute("UPDATE t SET v = ? WHERE k = ?", (v, k))
            else:
                conn.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
            pending[k] = v
            if do_commit:
                conn.commit()
                committed = dict(pending)
        # Crash: reopen without close/checkpoint.
        reopened = minidb.connect(path)
        state = dict(reopened.execute("SELECT k, v FROM t").fetchall())
        assert state == committed
        reopened.close()
        conn.rollback()
        conn.close()
