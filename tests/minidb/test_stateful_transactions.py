"""Stateful property test: minidb vs a reference model under random
sequences of DML + transaction boundaries.

The reference keeps two plain dicts: ``committed`` (durable state) and
``pending`` (the open transaction's view).  After every operation the
engine's visible table must equal the reference's pending view, and after
rollback/commit it must equal the committed view.
"""

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

import repro.minidb as minidb


class TransactionMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.conn = minidb.connect()
        self.conn.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        self.committed: dict[int, int] = {}
        self.pending: dict[int, int] = {}

    keys = st.integers(0, 12)
    values = st.integers(-100, 100)

    def _engine_state(self) -> dict[int, int]:
        return dict(self.conn.execute("SELECT k, v FROM t").fetchall())

    @rule(k=keys, v=values)
    def upsert(self, k, v):
        if k in self.pending:
            self.conn.execute("UPDATE t SET v = ? WHERE k = ?", (v, k))
        else:
            self.conn.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
        self.pending[k] = v

    @rule(k=keys)
    def delete(self, k):
        self.conn.execute("DELETE FROM t WHERE k = ?", (k,))
        self.pending.pop(k, None)

    @rule(lo=keys, hi=keys, dv=values)
    def bulk_update(self, lo, hi, dv):
        if lo > hi:
            lo, hi = hi, lo
        self.conn.execute(
            "UPDATE t SET v = v + ? WHERE k BETWEEN ? AND ?", (dv, lo, hi)
        )
        for k in list(self.pending):
            if lo <= k <= hi:
                self.pending[k] += dv

    @rule()
    def commit(self):
        self.conn.commit()
        self.committed = dict(self.pending)

    @rule()
    def rollback(self):
        self.conn.rollback()
        self.pending = dict(self.committed)

    @invariant()
    def engine_matches_pending_view(self):
        assert self._engine_state() == self.pending

    def teardown(self):
        self.conn.close()


TestTransactionStateMachine = TransactionMachine.TestCase
TestTransactionStateMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)


class TestWalDurabilityProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 8), st.integers(-50, 50), st.booleans()),
            min_size=1,
            max_size=25,
        )
    )
    def test_reopen_sees_exactly_committed_state(self, tmp_path_factory, ops):
        """Commit-marked changes survive reopen; uncommitted ones never do."""
        path = str(tmp_path_factory.mktemp("walprop") / "db.json")
        conn = minidb.connect(path)
        conn.execute("CREATE TABLE t (k INTEGER PRIMARY KEY, v INTEGER)")
        conn.commit()
        committed: dict[int, int] = {}
        pending: dict[int, int] = {}
        for k, v, do_commit in ops:
            if k in pending:
                conn.execute("UPDATE t SET v = ? WHERE k = ?", (v, k))
            else:
                conn.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
            pending[k] = v
            if do_commit:
                conn.commit()
                committed = dict(pending)
        # Crash: reopen without close/checkpoint.
        reopened = minidb.connect(path)
        state = dict(reopened.execute("SELECT k, v FROM t").fetchall())
        assert state == committed
        reopened.close()
        conn.rollback()
        conn.close()
