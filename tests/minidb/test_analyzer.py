"""Semantic analyzer tests: bad SQL fails fast with coded diagnostics.

Every statement here would previously have surfaced as a raw KeyError,
ValueError, or a half-executed statement; the analyzer turns each into a
``SemanticError`` carrying a stable code and, where a near-miss exists,
a did-you-mean suggestion.
"""

import pytest

import repro.minidb as minidb
from repro.minidb.errors import SemanticError


@pytest.fixture
def conn():
    c = minidb.connect()
    cur = c.cursor()
    cur.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT NOT NULL, "
        "dept TEXT, salary REAL)"
    )
    cur.execute("CREATE TABLE dept (id INTEGER PRIMARY KEY, dname TEXT)")
    cur.execute("CREATE INDEX idx_emp_dept ON emp (dept)")
    cur.executemany(
        "INSERT INTO emp (name, dept, salary) VALUES (?, ?, ?)",
        [("alice", "eng", 120.0), ("bob", "ops", 90.0)],
    )
    yield c
    c.close()


# (sql, expected code, substring expected in the suggestion or None)
BAD_STATEMENTS = [
    # -- unknown tables ------------------------------------------------- SQL001
    ("SELECT * FROM empp", "SQL001", "emp"),
    ("UPDATE empp SET name = 'x'", "SQL001", "emp"),
    ("INSERT INTO empp (name) VALUES ('x')", "SQL001", "emp"),
    ("DELETE FROM employee", "SQL001", None),
    ("DROP TABLE nope", "SQL001", None),
    ("CREATE INDEX idx_x ON empp (name)", "SQL001", "emp"),
    # -- unknown columns ------------------------------------------------ SQL002
    ("SELECT namee FROM emp", "SQL002", "name"),
    ("SELECT emp.nam FROM emp", "SQL002", "name"),
    ("SELECT name FROM emp WHERE salry > 100", "SQL002", "salary"),
    ("UPDATE emp SET nam = 'x'", "SQL002", "name"),
    ("DELETE FROM emp WHERE namee = 'x'", "SQL002", "name"),
    ("INSERT INTO emp (nam) VALUES ('x')", "SQL002", "name"),
    ("SELECT name FROM emp ORDER BY salry", "SQL002", "salary"),
    ("SELECT e.dname FROM emp e JOIN dept d ON e.dept = d.dname", "SQL002", None),
    ("CREATE INDEX idx_y ON emp (namee)", "SQL002", "name"),
    # -- unknown qualifiers --------------------------------------------- SQL003
    ("SELECT e.name FROM emp", "SQL003", None),
    ("SELECT emp.name FROM emp e", "SQL003", None),
    # -- unknown / misused functions ------------------------------- SQL005/006
    ("SELECT LOWR(name) FROM emp", "SQL005", "LOWER"),
    ("SELECT SU(salary) FROM emp", "SQL005", "SUM"),
    ("SELECT LOWER(name, 2) FROM emp", "SQL006", None),
    ("SELECT SUM(salary, id) FROM emp", "SQL006", None),
    # -- aggregate misuse ----------------------------------------------- SQL007
    ("SELECT name FROM emp WHERE SUM(salary) > 1", "SQL007", None),
    ("SELECT SUM(MAX(salary)) FROM emp", "SQL007", None),
    # -- INSERT shape --------------------------------------------------- SQL008
    ("INSERT INTO emp (name) VALUES ('x', 'y')", "SQL008", None),
    ("INSERT INTO emp (name, dept) VALUES ('x')", "SQL008", None),
    # -- uncoercible literals ------------------------------------------- SQL009
    ("INSERT INTO emp (name, salary) VALUES ('x', 'lots')", "SQL009", None),
    # -- duplicate alias ------------------------------------------------ SQL011
    ("SELECT emp.id FROM emp JOIN emp ON emp.id = emp.id", "SQL011", None),
    # -- UNION arity ---------------------------------------------------- SQL012
    ("SELECT id FROM emp UNION SELECT id, name FROM emp", "SQL012", None),
    # -- schema conflicts ------------------------------------- SQL014/015/016
    ("CREATE TABLE t2 (a INTEGER, a TEXT)", "SQL014", None),
    ("CREATE TABLE emp (id INTEGER)", "SQL015", None),
    ("CREATE INDEX idx_emp_dept ON emp (dept)", "SQL015", None),
    ("DROP INDEX idx_nope", "SQL015", None),
    # -- subquery width ------------------------------------------------- SQL017
    ("SELECT * FROM emp WHERE id IN (SELECT id, name FROM emp)", "SQL017", None),
    # -- ORDER BY ------------------------------------------------------- SQL019
    ("SELECT name FROM emp ORDER BY 5", "SQL019", None),
    ("SELECT name FROM emp ORDER BY 0", "SQL019", None),
]


@pytest.mark.parametrize("sql,code,suggestion", BAD_STATEMENTS)
def test_bad_statement_raises_coded_error(conn, sql, code, suggestion):
    with pytest.raises(SemanticError) as exc_info:
        conn.execute(sql)
    err = exc_info.value
    assert err.code == code, f"{sql!r}: expected {code}, got {err.code}: {err}"
    if suggestion is not None:
        assert err.suggestion is not None, f"{sql!r}: no suggestion: {err}"
        assert suggestion in err.suggestion
    # Nothing half-executed: the connection still works afterwards.
    assert conn.execute("SELECT COUNT(*) FROM emp").fetchone()[0] == 2


def test_error_message_carries_suggestion_text(conn):
    with pytest.raises(SemanticError, match="did you mean"):
        conn.execute("SELECT namee FROM emp")


def test_placeholder_arity_checked_before_execution(conn):
    with pytest.raises(SemanticError) as exc_info:
        conn.execute("SELECT * FROM emp WHERE id = ? AND name = ?", (1,))
    assert exc_info.value.code == "SQL010"


def test_executemany_batch_is_analyzed(conn):
    with pytest.raises(SemanticError) as exc_info:
        conn.executemany("INSERT INTO emp (nam) VALUES (?)", [("x",)])
    assert exc_info.value.code == "SQL002"


def test_ddl_reanalyzes_cached_statements(conn):
    sql = "SELECT v FROM kv"
    with pytest.raises(SemanticError):
        conn.execute(sql)
    conn.execute("CREATE TABLE kv (k TEXT, v TEXT)")
    assert conn.execute(sql).fetchall() == []  # same cached text now valid
    conn.execute("DROP TABLE kv")
    with pytest.raises(SemanticError):
        conn.execute(sql)


# ---------------------------------------------------------------- conn.check()


def test_check_reports_without_executing(conn):
    diags = conn.check("INSERT INTO emp (nam) VALUES ('x')")
    assert any(d.code == "SQL002" for d in diags)
    assert conn.execute("SELECT COUNT(*) FROM emp").fetchone()[0] == 2


def test_check_clean_statement(conn):
    assert conn.check("SELECT id, name FROM emp") == []


def test_check_syntax_error_is_sql000(conn):
    diags = conn.check("SELEC 1")
    assert [d.code for d in diags] == ["SQL000"]
    assert diags[0].severity == "error"


def test_check_reports_required_params(conn):
    diags = conn.check("SELECT * FROM emp WHERE id = ? AND dept = ?")
    infos = [d for d in diags if d.code == "SQL010"]
    assert len(infos) == 1 and infos[0].severity == "info"
    assert "2" in infos[0].message


def test_check_warns_on_ambiguous_column(conn):
    diags = conn.check("SELECT id FROM emp JOIN dept ON emp.dept = dept.dname")
    ambiguous = [d for d in diags if d.code == "SQL004"]
    assert ambiguous and all(d.severity == "warning" for d in ambiguous)
    # ...and the engine still executes it (innermost binding wins).
    conn.execute("SELECT id FROM emp JOIN dept ON emp.dept = dept.dname")


def test_check_warns_on_cross_affinity_comparison(conn):
    diags = conn.check("SELECT * FROM emp WHERE name > 5")
    assert any(d.code == "SQL013" and d.severity == "warning" for d in diags)


def test_check_warns_on_missing_not_null(conn):
    diags = conn.check("INSERT INTO emp (dept) VALUES ('eng')")
    assert any(d.code == "SQL020" and d.severity == "warning" for d in diags)


# -------------------------------------------------------- EXPLAIN ANALYZE CHECK


def test_explain_analyze_check_returns_rows(conn):
    cur = conn.execute("EXPLAIN ANALYZE CHECK SELECT namee FROM emp")
    rows = cur.fetchall()
    assert [d[0] for d in cur.description] == [
        "severity", "code", "message", "suggestion",
    ]
    assert any(r[1] == "SQL002" and r[3] == "name" for r in rows)


def test_explain_analyze_check_never_raises(conn):
    cur = conn.execute("EXPLAIN ANALYZE CHECK SELECT * FROM no_such_table")
    assert any(r[1] == "SQL001" for r in cur.fetchall())


def test_explain_analyze_check_clean(conn):
    rows = conn.execute("EXPLAIN ANALYZE CHECK SELECT id FROM emp").fetchall()
    assert rows == [("ok", "", "no issues found", None)]


def test_explain_without_check_still_works(conn):
    rows = conn.execute("EXPLAIN SELECT id FROM emp").fetchall()
    assert rows  # plan text, not diagnostics


# ------------------------------------------------------------ differential guard


def test_analyzer_accepts_everything_the_engine_executes(conn):
    """Property: the analyzer never rejects a statement that runs clean.

    (The converse — the engine rejects what the analyzer rejects — is
    exercised by BAD_STATEMENTS above, where execution raises before any
    side effect.)
    """
    corpus = [
        "SELECT * FROM emp",
        "SELECT e.name, d.dname FROM emp e LEFT JOIN dept d ON e.dept = d.dname",
        "SELECT dept, COUNT(*), SUM(salary) FROM emp GROUP BY dept "
        "HAVING COUNT(*) > 0 ORDER BY 2 DESC",
        "SELECT DISTINCT dept FROM emp WHERE salary > 10 LIMIT 3 OFFSET 1",
        "SELECT name FROM emp WHERE id IN (SELECT id FROM emp) "
        "UNION ALL SELECT dname FROM dept",
        "SELECT name, (SELECT COUNT(*) FROM dept) FROM emp "
        "WHERE EXISTS (SELECT 1 FROM dept)",
        "SELECT UPPER(name) || '-' || dept FROM emp ORDER BY name",
        "INSERT INTO dept (dname) VALUES ('eng'), ('ops')",
        "UPDATE emp SET salary = salary * 1.1 WHERE dept = 'eng'",
        "DELETE FROM emp WHERE salary IS NULL",
        "SELECT CAST(salary AS INTEGER) FROM emp",
        "SELECT s.name FROM (SELECT name FROM emp) s",
    ]
    for sql in corpus:
        errors = [d for d in conn.check(sql) if d.severity == "error"]
        assert not errors, f"{sql!r}: analyzer rejected: {errors}"
        conn.execute(sql)  # and the engine agrees
