"""Type affinity, coercion and cross-type comparison tests."""

import pytest
from hypothesis import given, strategies as st

from repro.minidb.errors import DataError
from repro.minidb.sqltypes import (
    BLOB,
    BOOLEAN,
    INTEGER,
    NUMERIC,
    REAL,
    TEXT,
    affinity_for,
    coerce,
    compare,
    sort_key,
    values_equal,
)


class TestAffinity:
    @pytest.mark.parametrize(
        "decl,expected",
        [
            ("INTEGER", INTEGER),
            ("int", INTEGER),
            ("BIGINT", INTEGER),
            ("REAL", REAL),
            ("DOUBLE", REAL),
            ("FLOAT", REAL),
            ("TEXT", TEXT),
            ("VARCHAR(80)", TEXT),
            ("CHAR(1)", TEXT),
            ("BLOB", BLOB),
            ("BOOLEAN", BOOLEAN),
            ("NUMERIC", NUMERIC),
            ("DECIMAL(10,2)", NUMERIC),
            ("SOMETHING_ODD", NUMERIC),
        ],
    )
    def test_affinity_mapping(self, decl, expected):
        assert affinity_for(decl) == expected


class TestCoercion:
    def test_none_passes_through(self):
        for aff in (INTEGER, REAL, TEXT, BLOB, BOOLEAN, NUMERIC):
            assert coerce(None, aff) is None

    def test_integer_from_string(self):
        assert coerce("42", INTEGER) == 42

    def test_integer_keeps_fractional_float(self):
        assert coerce(1.5, INTEGER) == 1.5

    def test_integer_from_integral_float(self):
        v = coerce(3.0, INTEGER)
        assert v == 3 and isinstance(v, int)

    def test_integer_rejects_garbage(self):
        with pytest.raises(DataError):
            coerce("abc", INTEGER)

    def test_real_from_int(self):
        v = coerce(3, REAL)
        assert v == 3.0 and isinstance(v, float)

    def test_text_from_number(self):
        assert coerce(42, TEXT) == "42"

    def test_boolean_from_strings(self):
        assert coerce("true", BOOLEAN) is True
        assert coerce("0", BOOLEAN) is False
        with pytest.raises(DataError):
            coerce("maybe", BOOLEAN)

    def test_blob_from_str(self):
        assert coerce("ab", BLOB) == b"ab"

    def test_numeric_string_passthrough(self):
        assert coerce("12", NUMERIC) == 12
        assert coerce("1.5", NUMERIC) == 1.5
        assert coerce("hello", NUMERIC) == "hello"


class TestComparison:
    def test_null_comparisons_unknown(self):
        assert compare(None, 1) is None
        assert compare(1, None) is None
        assert values_equal(None, None) is None

    def test_numbers_before_text(self):
        assert compare(99999, "a") == -1

    def test_text_before_blob(self):
        assert compare("z", b"a") == -1

    def test_int_float_equal(self):
        assert values_equal(1, 1.0) is True

    @given(st.integers(-10**9, 10**9), st.integers(-10**9, 10**9))
    def test_integer_ordering_matches_python(self, a, b):
        c = compare(a, b)
        assert c == (a > b) - (a < b)

    @given(
        st.one_of(st.none(), st.booleans(), st.integers(), st.floats(allow_nan=False),
                  st.text(), st.binary())
    )
    def test_sort_key_total_order_reflexive(self, v):
        assert sort_key(v) == sort_key(v)

    @given(
        st.lists(
            st.one_of(st.integers(-100, 100), st.text(max_size=4), st.booleans()),
            max_size=20,
        )
    )
    def test_sort_key_sortable_mixed(self, values):
        # Mixed-type lists must sort without raising.
        ordered = sorted(values, key=sort_key)
        keys = [sort_key(v) for v in ordered]
        assert keys == sorted(keys)
