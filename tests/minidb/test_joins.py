"""Join execution tests (inner/left/cross, nested, index probes)."""

import pytest

import repro.minidb as minidb


@pytest.fixture
def conn():
    c = minidb.connect()
    c.executescript(
        """
        CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT);
        CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, dept_id INTEGER);
        CREATE TABLE badge (emp_id INTEGER, code TEXT);
        INSERT INTO dept (name) VALUES ('eng'), ('ops'), ('empty');
        INSERT INTO emp (name, dept_id) VALUES
            ('alice', 1), ('bob', 1), ('carol', 2), ('ghost', NULL);
        INSERT INTO badge (emp_id, code) VALUES (1, 'A1'), (3, 'C3');
        """
    )
    yield c
    c.close()


def q(conn, sql, params=()):
    return conn.execute(sql, params).fetchall()


class TestInnerJoin:
    def test_basic(self, conn):
        rows = q(
            conn,
            "SELECT e.name, d.name FROM emp e JOIN dept d ON e.dept_id = d.id "
            "ORDER BY e.name",
        )
        assert rows == [("alice", "eng"), ("bob", "eng"), ("carol", "ops")]

    def test_null_fk_never_matches(self, conn):
        rows = q(conn, "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id")
        assert ("ghost",) not in rows

    def test_three_way(self, conn):
        rows = q(
            conn,
            "SELECT e.name, b.code FROM emp e "
            "JOIN dept d ON e.dept_id = d.id "
            "JOIN badge b ON b.emp_id = e.id ORDER BY e.name",
        )
        assert rows == [("alice", "A1"), ("carol", "C3")]

    def test_join_condition_with_extra_predicate(self, conn):
        rows = q(
            conn,
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id AND d.name = 'ops'",
        )
        assert rows == [("carol",)]

    def test_where_applies_after_join(self, conn):
        rows = q(
            conn,
            "SELECT e.name FROM emp e JOIN dept d ON e.dept_id = d.id "
            "WHERE d.name = 'eng' ORDER BY e.name",
        )
        assert rows == [("alice",), ("bob",)]


class TestLeftJoin:
    def test_null_extension(self, conn):
        rows = q(
            conn,
            "SELECT e.name, d.name FROM emp e LEFT JOIN dept d ON e.dept_id = d.id "
            "ORDER BY e.name",
        )
        assert ("ghost", None) in rows
        assert len(rows) == 4

    def test_left_join_then_filter_null(self, conn):
        rows = q(
            conn,
            "SELECT d.name FROM dept d LEFT JOIN emp e ON e.dept_id = d.id "
            "WHERE e.id IS NULL",
        )
        assert rows == [("empty",)]

    def test_left_join_chain(self, conn):
        rows = q(
            conn,
            "SELECT e.name, b.code FROM emp e LEFT JOIN badge b ON b.emp_id = e.id "
            "ORDER BY e.name",
        )
        assert rows == [
            ("alice", "A1"),
            ("bob", None),
            ("carol", "C3"),
            ("ghost", None),
        ]


class TestCrossJoin:
    def test_comma_cross(self, conn):
        rows = q(conn, "SELECT COUNT(*) FROM dept, emp")
        assert rows == [(12,)]

    def test_explicit_cross(self, conn):
        rows = q(conn, "SELECT COUNT(*) FROM dept CROSS JOIN dept d2")
        assert rows == [(9,)]


class TestJoinWithSubquery:
    def test_subquery_as_right_side(self, conn):
        rows = q(
            conn,
            "SELECT e.name, big.n FROM emp e "
            "JOIN (SELECT dept_id AS did, COUNT(*) AS n FROM emp "
            "      WHERE dept_id IS NOT NULL GROUP BY dept_id) big "
            "ON big.did = e.dept_id WHERE big.n > 1 ORDER BY e.name",
        )
        assert rows == [("alice", 2), ("bob", 2)]

    def test_self_join(self, conn):
        rows = q(
            conn,
            "SELECT a.name, b.name FROM emp a JOIN emp b "
            "ON a.dept_id = b.dept_id AND a.id < b.id",
        )
        assert rows == [("alice", "bob")]


class TestJoinPlanning:
    def test_inner_probe_uses_pk_index(self, conn):
        plan = q(conn, "EXPLAIN SELECT * FROM emp e JOIN dept d ON d.id = e.dept_id")
        text = "\n".join(r[0] for r in plan)
        assert "SEARCH dept AS d USING INDEX" in text

    def test_no_index_full_scan(self, conn):
        plan = q(conn, "EXPLAIN SELECT * FROM emp e JOIN badge b ON b.emp_id = e.id")
        text = "\n".join(r[0] for r in plan)
        assert "SCAN badge AS b" in text

    def test_index_created_later_is_used(self, conn):
        conn.execute("CREATE INDEX idx_badge ON badge (emp_id)")
        plan = q(conn, "EXPLAIN SELECT * FROM emp e JOIN badge b ON b.emp_id = e.id")
        text = "\n".join(r[0] for r in plan)
        assert "SEARCH badge AS b USING INDEX idx_badge" in text
