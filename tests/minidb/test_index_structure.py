"""Index data-structure unit tests (hash + ordered access paths)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.minidb.errors import IntegrityError
from repro.minidb.index import Index


class TestBasicOperations:
    def test_insert_lookup(self):
        idx = Index("i", "t", ["a"])
        idx.insert((1,), 100)
        idx.insert((1,), 101)
        idx.insert((2,), 102)
        assert sorted(idx.lookup((1,))) == [100, 101]
        assert idx.lookup((3,)) == []

    def test_delete(self):
        idx = Index("i", "t", ["a"])
        idx.insert((1,), 100)
        idx.insert((1,), 101)
        idx.delete((1,), 100)
        assert idx.lookup((1,)) == [101]
        idx.delete((1,), 101)
        assert idx.lookup((1,)) == []

    def test_delete_missing_is_noop(self):
        idx = Index("i", "t", ["a"])
        idx.delete((1,), 999)

    def test_len(self):
        idx = Index("i", "t", ["a"])
        for i in range(5):
            idx.insert((i % 2,), i)
        assert len(idx) == 5

    def test_unique_violation(self):
        idx = Index("i", "t", ["a"], unique=True)
        idx.insert((1,), 100)
        with pytest.raises(IntegrityError):
            idx.insert((1,), 101)

    def test_unique_allows_null_keys(self):
        idx = Index("i", "t", ["a"], unique=True)
        idx.insert((None,), 1)
        idx.insert((None,), 2)

    def test_check_insert_does_not_mutate(self):
        idx = Index("i", "t", ["a"], unique=True)
        idx.insert((1,), 100)
        with pytest.raises(IntegrityError):
            idx.check_insert((1,))
        idx.check_insert((2,))
        assert idx.lookup((2,)) == []


class TestOrderedScans:
    def _make(self):
        idx = Index("i", "t", ["a"])
        for i, key in enumerate([5, 1, 3, 2, 4]):
            idx.insert((key,), i)
        return idx

    def test_iter_ordered(self):
        idx = self._make()
        keys = [k[0] for k in idx.distinct_keys()]
        assert keys == [1, 2, 3, 4, 5]

    def test_iter_descending(self):
        idx = self._make()
        rowids = list(idx.iter_ordered(descending=True))
        assert rowids[0] == 0  # key 5 inserted as rowid 0

    def test_range_inclusive(self):
        idx = self._make()
        got = sorted(idx.range_scan((2,), (4,)))
        keys = sorted(k[0] for k in idx.distinct_keys())
        assert len(got) == 3

    def test_range_exclusive_low(self):
        idx = self._make()
        got = list(idx.range_scan((2,), (4,), low_inclusive=False))
        assert len(got) == 2

    def test_range_exclusive_high(self):
        idx = self._make()
        got = list(idx.range_scan((2,), (4,), high_inclusive=False))
        assert len(got) == 2

    def test_range_unbounded_high(self):
        idx = self._make()
        assert len(list(idx.range_scan((3,), None))) == 3

    def test_range_after_deletions(self):
        idx = self._make()
        idx.delete((3,), 2)
        assert len(list(idx.range_scan((1,), (5,)))) == 4

    def test_composite_prefix_range(self):
        idx = Index("i", "t", ["a", "b"])
        for rid, (a, b) in enumerate([(1, "x"), (1, "y"), (2, "x"), (3, "z")]):
            idx.insert((a, b), rid)
        got = sorted(idx.range_scan((1,), (1,)))
        assert got == [0, 1]

    def test_null_keys_excluded_from_bounded_range(self):
        idx = Index("i", "t", ["a"])
        idx.insert((None,), 0)
        idx.insert((1,), 1)
        assert list(idx.range_scan((0,), (9,))) == [1]


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "delete"]),
                st.integers(0, 9),   # key
                st.integers(0, 30),  # rowid
            ),
            max_size=80,
        )
    )
    def test_matches_reference_dict(self, ops):
        idx = Index("i", "t", ["k"])
        ref: dict[int, list[int]] = {}
        for op, key, rowid in ops:
            if op == "insert":
                idx.insert((key,), rowid)
                ref.setdefault(key, []).append(rowid)
            else:
                idx.delete((key,), rowid)
                bucket = ref.get(key, [])
                if rowid in bucket:
                    bucket.remove(rowid)
                if not bucket:
                    ref.pop(key, None)
        for key in range(10):
            assert sorted(idx.lookup((key,))) == sorted(ref.get(key, []))
        # ordered iteration covers exactly the reference contents
        all_ref = sorted(r for bucket in ref.values() for r in bucket)
        assert sorted(idx.iter_ordered()) == all_ref
