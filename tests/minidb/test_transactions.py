"""Transaction semantics: rollback, autocommit boundaries, DDL behaviour."""

import pytest

import repro.minidb as minidb


@pytest.fixture
def conn():
    c = minidb.connect()
    c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
    yield c
    c.close()


def count(conn):
    return conn.execute("SELECT COUNT(*) FROM t").fetchall()[0][0]


class TestRollback:
    def test_rollback_undoes_insert(self, conn):
        conn.execute("INSERT INTO t (v) VALUES (1)")
        conn.rollback()
        assert count(conn) == 0

    def test_rollback_undoes_update(self, conn):
        conn.execute("INSERT INTO t (v) VALUES (1)")
        conn.commit()
        conn.execute("UPDATE t SET v = 99")
        conn.rollback()
        assert conn.execute("SELECT v FROM t").fetchall() == [(1,)]

    def test_rollback_undoes_delete(self, conn):
        conn.execute("INSERT INTO t (v) VALUES (1), (2)")
        conn.commit()
        conn.execute("DELETE FROM t")
        conn.rollback()
        assert count(conn) == 2

    def test_rollback_restores_indexes(self, conn):
        conn.execute("INSERT INTO t (v) VALUES (7)")
        conn.commit()
        conn.execute("DELETE FROM t WHERE id = 1")
        conn.rollback()
        # PK index must find the restored row.
        assert conn.execute("SELECT v FROM t WHERE id = 1").fetchall() == [(7,)]

    def test_rollback_interleaved_operations(self, conn):
        conn.execute("INSERT INTO t (v) VALUES (1)")
        conn.commit()
        conn.execute("INSERT INTO t (v) VALUES (2)")
        conn.execute("UPDATE t SET v = v * 10 WHERE v = 1")
        conn.execute("DELETE FROM t WHERE v = 2")
        conn.rollback()
        assert conn.execute("SELECT v FROM t ORDER BY v").fetchall() == [(1,)]

    def test_commit_makes_changes_durable_against_rollback(self, conn):
        conn.execute("INSERT INTO t (v) VALUES (1)")
        conn.commit()
        conn.rollback()  # nothing pending
        assert count(conn) == 1

    def test_explicit_begin_commit(self, conn):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t (v) VALUES (5)")
        conn.execute("COMMIT")
        conn.rollback()
        assert count(conn) == 1

    def test_explicit_rollback_statement(self, conn):
        conn.execute("BEGIN")
        conn.execute("INSERT INTO t (v) VALUES (5)")
        conn.execute("ROLLBACK")
        assert count(conn) == 0


class TestAutoincrementAfterRollback:
    def test_pk_counter_restored(self, conn):
        conn.execute("INSERT INTO t (v) VALUES (1)")
        conn.commit()
        conn.execute("INSERT INTO t (v) VALUES (2)")
        conn.rollback()
        cur = conn.execute("INSERT INTO t (v) VALUES (3)")
        conn.commit()
        assert cur.lastrowid == 2


class TestContextManager:
    def test_exception_rolls_back(self):
        with pytest.raises(RuntimeError):
            with minidb.connect() as c:
                c.execute("CREATE TABLE x (a INTEGER)")
                c.execute("INSERT INTO x VALUES (1)")
                raise RuntimeError("boom")

    def test_clean_exit_commits(self, tmp_path):
        path = str(tmp_path / "db.json")
        with minidb.connect(path) as c:
            c.execute("CREATE TABLE x (a INTEGER)")
            c.execute("INSERT INTO x VALUES (1)")
        with minidb.connect(path) as c:
            assert c.execute("SELECT a FROM x").fetchall() == [(1,)]

    def test_closed_connection_rejects_use(self, conn):
        conn.close()
        with pytest.raises(minidb.InterfaceError):
            conn.execute("SELECT 1")
