"""Statement fingerprinting: literal normalization at the token level."""

from repro.minidb.parser import fingerprint


def test_literals_become_placeholders():
    assert (
        fingerprint("SELECT a FROM t WHERE a > 10")
        == fingerprint("SELECT a FROM t WHERE a > 999")
        == "SELECT a FROM t WHERE a > ?"
    )
    assert (
        fingerprint("SELECT a FROM t WHERE b = 'x'")
        == fingerprint("SELECT a FROM t WHERE b = 'other'")
    )


def test_parameters_and_literals_unify():
    assert fingerprint("SELECT a FROM t WHERE a > ?") == fingerprint(
        "SELECT a FROM t WHERE a > 42"
    )


def test_case_folding():
    assert fingerprint("select A from T where A > 1") == fingerprint(
        "SELECT a FROM t WHERE a > 2"
    )


def test_whitespace_and_comments_ignored():
    assert fingerprint("SELECT  a\n  FROM t") == fingerprint(
        "SELECT a FROM t -- trailing comment"
    )


def test_in_list_collapses():
    short = fingerprint("SELECT a FROM t WHERE a IN (1, 2)")
    long = fingerprint("SELECT a FROM t WHERE a IN (1, 2, 3, 4, 5, 6, 7)")
    assert short == long == "SELECT a FROM t WHERE a IN ( ? )"


def test_values_rows_collapse():
    # Multi-column VALUES groups with single-column VALUES: executemany
    # workloads aggregate under one fingerprint regardless of arity.
    assert fingerprint("INSERT INTO t VALUES (1, 'x', 3.5)") == fingerprint(
        "INSERT INTO t VALUES (?)"
    )


def test_identifiers_not_collapsed():
    # Only literal runs collapse; a select list keeps its shape.
    assert fingerprint("SELECT a, b FROM t") != fingerprint("SELECT a FROM t")


def test_distinct_structure_distinct_fingerprints():
    assert fingerprint("SELECT a FROM t WHERE a > 1") != fingerprint(
        "SELECT a FROM t WHERE a < 1"
    )


def test_unparseable_sql_falls_back_to_normalized_text():
    assert fingerprint("THIS IS @@ NOT SQL") == "THIS IS @@ NOT SQL"
