"""Differential coverage for the hash-join access path.

Join-heavy queries over tables with **no usable index** must return the
same bag of rows under three executions: minidb with hash join enabled
(the default for build sides of ``HASH_JOIN_MIN_BUILD_ROWS``+ rows),
minidb forced to nested-loop scans, and sqlite3.  NULL join keys are
present on both sides — a hash join must never match them.
"""

import sqlite3

import pytest

import repro.minidb as minidb
import repro.minidb.planner as planner

# No indexes anywhere: every equi-join below has no usable index, so the
# planner's only alternatives are HashJoin and nested-loop FullScan.
SCHEMA = [
    "CREATE TABLE orders (oid INTEGER, cust INTEGER, amount REAL)",
    "CREATE TABLE custs (cid INTEGER, region TEXT)",
]

ORDERS = [
    (1, 10, 99.5),
    (2, 20, 15.0),
    (3, 10, 42.0),
    (4, None, 7.25),  # NULL join key: must match nothing
    (5, 40, 0.0),  # no matching customer
    (6, 30, 3.5),
]

CUSTS = [
    (10, "west"),
    (20, "east"),
    (30, None),
    (None, "limbo"),  # NULL join key: must match nothing
    (50, "north"),
]

QUERIES = [
    "SELECT o.oid, c.region FROM orders o JOIN custs c ON c.cid = o.cust",
    "SELECT o.oid, c.region FROM orders o LEFT JOIN custs c ON c.cid = o.cust",
    "SELECT c.cid, o.amount FROM custs c LEFT JOIN orders o ON o.cust = c.cid",
    "SELECT o.oid, c.region FROM orders o, custs c WHERE c.cid = o.cust",
    (
        "SELECT o.oid, c.region FROM orders o JOIN custs c "
        "ON c.cid = o.cust AND o.amount > 10"
    ),
    (
        "SELECT o.oid, c.region FROM orders o LEFT JOIN custs c "
        "ON c.cid = o.cust WHERE o.amount >= 3.5"
    ),
    (
        "SELECT c.region, COUNT(o.oid) FROM custs c "
        "LEFT JOIN orders o ON o.cust = c.cid GROUP BY c.region"
    ),
    # Numeric-affinity key match: REAL 10.0 must hash-equal INTEGER 10.
    "SELECT o.oid FROM orders o JOIN custs c ON c.cid = o.cust + 0.0",
]


def normalize(rows):
    out = []
    for row in rows:
        norm = []
        for v in row:
            if isinstance(v, float) and v.is_integer():
                v = int(v)
            norm.append(v)
        out.append(tuple(norm))
    return sorted(out, key=repr)


def _populate(conn):
    cur = conn.cursor()
    for ddl in SCHEMA:
        cur.execute(ddl)
    cur.executemany("INSERT INTO orders VALUES (?, ?, ?)", ORDERS)
    cur.executemany("INSERT INTO custs VALUES (?, ?)", CUSTS)
    conn.commit()


@pytest.fixture(scope="module")
def sqlite_conn():
    conn = sqlite3.connect(":memory:")
    _populate(conn)
    yield conn
    conn.close()


@pytest.mark.parametrize("sql", QUERIES)
def test_hash_join_matches_sqlite(sqlite_conn, sql):
    conn = minidb.connect()
    _populate(conn)
    assert normalize(conn.execute(sql).fetchall()) == normalize(
        sqlite_conn.execute(sql).fetchall()
    )
    conn.close()


@pytest.mark.parametrize("sql", QUERIES)
def test_nested_loop_matches_sqlite(sqlite_conn, sql, monkeypatch):
    # A huge build-size floor forces every join back to nested-loop scans.
    monkeypatch.setattr(planner, "HASH_JOIN_MIN_BUILD_ROWS", 10**9)
    conn = minidb.connect()
    _populate(conn)
    assert normalize(conn.execute(sql).fetchall()) == normalize(
        sqlite_conn.execute(sql).fetchall()
    )
    conn.close()


def test_explain_shows_hash_join_without_index():
    conn = minidb.connect()
    _populate(conn)
    plan = [
        r[0]
        for r in conn.execute(
            "EXPLAIN SELECT o.oid FROM orders o JOIN custs c ON c.cid = o.cust"
        ).fetchall()
    ]
    assert any("HashJoin custs" in line for line in plan), plan
    conn.close()


def test_explain_uses_index_not_hash_join_when_available():
    conn = minidb.connect()
    _populate(conn)
    conn.execute("CREATE INDEX idx_custs_cid ON custs (cid)")
    plan = [
        r[0]
        for r in conn.execute(
            "EXPLAIN SELECT o.oid FROM orders o JOIN custs c ON c.cid = o.cust"
        ).fetchall()
    ]
    assert not any("HashJoin" in line for line in plan), plan
    assert any("idx_custs_cid" in line for line in plan), plan
    conn.close()


def test_small_build_side_falls_back_to_scan():
    conn = minidb.connect()
    conn.execute("CREATE TABLE big (x INTEGER)")
    conn.execute("CREATE TABLE tiny (y INTEGER)")
    conn.executemany("INSERT INTO big VALUES (?)", [(i,) for i in range(10)])
    conn.execute("INSERT INTO tiny VALUES (1)")
    plan = [
        r[0]
        for r in conn.execute(
            "EXPLAIN SELECT * FROM big JOIN tiny ON tiny.y = big.x"
        ).fetchall()
    ]
    assert not any("HashJoin" in line for line in plan), plan
    conn.close()


def test_hash_join_sees_rows_inserted_in_open_transaction():
    """The build table is cached per statement, not across statements."""
    conn = minidb.connect()
    _populate(conn)
    sql = "SELECT o.oid, c.region FROM orders o JOIN custs c ON c.cid = o.cust"
    before = normalize(conn.execute(sql).fetchall())
    conn.execute("INSERT INTO custs VALUES (40, 'south')")
    after = normalize(conn.execute(sql).fetchall())
    assert len(after) == len(before) + 1
    assert (5, "south") in after
    conn.close()
