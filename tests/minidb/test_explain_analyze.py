"""EXPLAIN ANALYZE: executed plans annotated with per-operator actuals."""

import pytest

import repro.minidb as minidb
from repro.minidb.errors import SemanticError


@pytest.fixture
def conn():
    c = minidb.connect()
    cur = c.cursor()
    cur.execute(
        "CREATE TABLE dept (id INTEGER PRIMARY KEY, name TEXT)"
    )
    cur.execute(
        "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, dept_id INTEGER, "
        "salary REAL, FOREIGN KEY (dept_id) REFERENCES dept (id))"
    )
    cur.executemany("INSERT INTO dept (name) VALUES (?)", [("eng",), ("ops",)])
    cur.executemany(
        "INSERT INTO emp (name, dept_id, salary) VALUES (?, ?, ?)",
        [(f"e{i}", i % 2 + 1, 100.0 + i) for i in range(10)],
    )
    yield c
    c.close()


def _lines(cur):
    return [r[0] for r in cur.fetchall()]


def test_select_shows_per_operator_actuals(conn):
    cur = conn.cursor()
    cur.execute(
        "EXPLAIN ANALYZE SELECT d.name, COUNT(*) FROM emp e "
        "JOIN dept d ON d.id = e.dept_id GROUP BY d.name ORDER BY d.name"
    )
    lines = _lines(cur)
    scan = next(line for line in lines if "SCAN emp" in line)
    assert "actual rows=10" in scan and "loops=1" in scan
    search = next(line for line in lines if "SEARCH dept" in line)
    # The inner join side restarts once per outer row.
    assert "loops=10" in search and "actual rows=10" in search
    agg = next(line for line in lines if line.strip().startswith("AGGREGATE"))
    assert "actual rows=2" in agg
    assert any("ORDER BY" in line and "actual rows=2" in line for line in lines)
    assert lines[-1].startswith("ACTUAL: 2 row(s) returned in")


def test_dml_executes_and_reports_affected(conn):
    cur = conn.cursor()
    cur.execute("EXPLAIN ANALYZE UPDATE emp SET salary = salary + 1 WHERE dept_id = 1")
    lines = _lines(cur)
    assert lines[-1].startswith("ACTUAL: 5 row(s) affected in")
    # The statement really ran: the mutation is visible.
    cur.execute("SELECT SUM(salary) FROM emp WHERE dept_id = 1")
    base = sum(100.0 + i for i in range(10) if i % 2 == 0)
    assert cur.fetchone()[0] == pytest.approx(base + 5)


def test_bare_explain_analyze_is_structured_error(conn):
    cur = conn.cursor()
    with pytest.raises(SemanticError) as err:
        cur.execute("EXPLAIN ANALYZE")
    assert err.value.code == "SQL021"
    assert "EXPLAIN ANALYZE SELECT" in (err.value.suggestion or "")


def test_bare_explain_analyze_check_diagnostic(conn):
    diags = conn.check("EXPLAIN ANALYZE")
    assert [d.code for d in diags] == ["SQL021"]
    assert diags[0].severity == "error"


def test_non_dml_statement_rejected(conn):
    cur = conn.cursor()
    with pytest.raises(SemanticError) as err:
        cur.execute("EXPLAIN ANALYZE CREATE TABLE t2 (a INTEGER)")
    assert err.value.code == "SQL022"


def test_explain_analyze_check_stays_static(conn):
    cur = conn.cursor()
    cur.execute("EXPLAIN ANALYZE CHECK SELECT nope FROM emp")
    rows = cur.fetchall()
    # Static analysis: diagnostics are reported, nothing executes.
    assert ("error", "SQL002") == rows[0][:2]


def test_plain_explain_unchanged(conn):
    cur = conn.cursor()
    cur.execute("EXPLAIN SELECT * FROM emp")
    lines = _lines(cur)
    assert any("SCAN emp" in line for line in lines)
    assert not any("actual rows" in line for line in lines)
