"""Static plan verifier tests: a hand-broken negative plan per PLN code,
plus the property that every plan from the differential corpus (row,
vectorized at several batch sizes, and under every rule toggle) verifies
with zero violations.
"""

import random

import pytest

import repro.minidb as minidb
from repro.minidb import ast_nodes as A
from repro.minidb import operators as ops
from repro.minidb import optimizer, vector, verifier
from repro.minidb.parser import parse
from repro.minidb.verifier import Contract, PlanVerificationError, ROW
from repro.obs.metrics import metrics as _obs_metrics

from tests.minidb.test_operators import RULES, SEED, SHAPES, _populate, _rand_rows


@pytest.fixture
def conn():
    c = minidb.connect()
    cats, items = _rand_rows(random.Random(SEED))
    _populate(c, cats, items)
    yield c
    c.close()


def plan_of(conn, sql):
    """Plan one statement directly (no statement cache in the way)."""
    return optimizer.plan_select(conn.db, parse(sql))


def find_op(root, cls):
    """First operator of type *cls* in a physical tree (depth-first)."""
    stack = [root]
    while stack:
        op = stack.pop()
        if isinstance(op, cls):
            return op
        for attr in ("child", "left", "right", "plan"):
            node = getattr(op, attr, None)
            if isinstance(node, ops.Operator):
                stack.append(node)
        for node in getattr(op, "inputs", ()) or ():
            if isinstance(node, ops.Operator):
                stack.append(node)
    raise AssertionError(f"no {cls.__name__} in plan")


def assert_pln(code, plan, db):
    with pytest.raises(PlanVerificationError) as ei:
        verifier.verify_tree(db, plan.root, names=list(plan.names))
    assert ei.value.code == code, str(ei.value)
    return ei.value


# ------------------------------------------------------------------- PLN001


def test_pln001_unknown_unqualified_column(conn):
    p = plan_of(conn, "SELECT id FROM items WHERE qty % 7 = 0")
    flt = find_op(p.root, ops.FilterOp)
    flt.condition = A.ColumnRef(None, "nonexistent")
    err = assert_pln("PLN001", p, conn.db)
    assert "nonexistent" in str(err)


def test_pln001_unknown_binding(conn):
    p = plan_of(conn, "SELECT id FROM items WHERE qty % 7 = 0")
    flt = find_op(p.root, ops.FilterOp)
    flt.condition = A.ColumnRef("zz", "qty")
    err = assert_pln("PLN001", p, conn.db)
    assert "zz" in str(err)


def test_pln001_order_by_position_out_of_range(conn):
    p = plan_of(conn, "SELECT id FROM items ORDER BY qty")
    sort = find_op(p.root, ops.SortOp)
    sort.order_by[0].expr = A.Literal(9)
    assert_pln("PLN001", p, conn.db)


# ------------------------------------------------------------------- PLN002


def test_pln002_index_key_arity(conn):
    p = plan_of(conn, "SELECT id FROM items WHERE cat = 3")
    scan = find_op(p.root, ops._ScanBase)
    scan.path.key_exprs = scan.path.key_exprs + [A.Literal(1)]
    err = assert_pln("PLN002", p, conn.db)
    assert "arity" in str(err)


def test_pln002_index_key_affinity(conn):
    # idx_items_cat indexes an INTEGER column; probing it with a TEXT
    # key silently returns nothing at run time.
    p = plan_of(conn, "SELECT id FROM items WHERE cat = 3")
    scan = find_op(p.root, ops._ScanBase)
    scan.path.key_exprs = [A.Literal("red")]
    err = assert_pln("PLN002", p, conn.db)
    assert "affinity" in str(err)


def test_pln002_hash_join_build_position(conn):
    p = plan_of(
        conn,
        "SELECT i.id, c.name FROM items i JOIN cats c ON c.name = i.color",
    )
    hj = None
    stack = [p.root]
    while stack:
        op = stack.pop()
        if isinstance(op, ops._ScanBase) and hasattr(op.path, "build_cols"):
            hj = op
            break
        for attr in ("child", "left", "right"):
            node = getattr(op, attr, None)
            if isinstance(node, ops.Operator):
                stack.append(node)
    assert hj is not None, "expected a hash-join scan in the plan"
    hj.path.build_positions = [pos + 1 for pos in hj.path.build_positions]
    err = assert_pln("PLN002", p, conn.db)
    assert "position" in str(err)


# ------------------------------------------------------------------- PLN003


@pytest.fixture
def vec_conn(conn, monkeypatch):
    monkeypatch.setattr(optimizer, "VECTOR_MIN_ROWS", 0)
    return conn


def test_pln003_missing_filter_kernel(vec_conn):
    # `qty % 2 = 0` is not sargable, so it stays a (vectorized) filter.
    p = plan_of(vec_conn, "SELECT qty FROM items WHERE qty % 2 = 0")
    vf = find_op(p.root, ops.VecFilter)
    vf.kernel = None
    err = assert_pln("PLN003", p, vec_conn.db)
    assert "kernel" in str(err)


def test_pln003_scan_slot_out_of_range(vec_conn):
    p = plan_of(vec_conn, "SELECT qty FROM items")
    vs = find_op(p.root, ops.VecScan)
    vs.slots = [99]
    err = assert_pln("PLN003", p, vec_conn.db)
    assert "slot" in str(err)


def test_pln003_vec_scan_over_index_path(vec_conn):
    p = plan_of(vec_conn, "SELECT qty FROM items")
    indexed = plan_of(vec_conn, "SELECT id FROM items WHERE cat = 3")
    vs = find_op(p.root, ops.VecScan)
    vs.path = find_op(indexed.root, ops._ScanBase).path
    err = assert_pln("PLN003", p, vec_conn.db)
    assert "full scans" in str(err)


# ------------------------------------------------------------------- PLN004


def test_pln004_row_consumer_over_column_batch_child(vec_conn):
    p = plan_of(vec_conn, "SELECT qty FROM items")
    vs = find_op(p.root, ops.VecScan)
    broken = ops.DistinctOp(vs)  # row consumer wired to a batch producer
    with pytest.raises(PlanVerificationError) as ei:
        verifier.verify_tree(vec_conn.db, broken)
    assert ei.value.code == "PLN004"
    assert "protocol" in str(ei.value)


def test_pln004_column_batch_root(vec_conn):
    p = plan_of(vec_conn, "SELECT qty FROM items")
    vs = find_op(p.root, ops.VecScan)
    with pytest.raises(PlanVerificationError) as ei:
        verifier.verify_tree(vec_conn.db, vs)
    assert ei.value.code == "PLN004"


# ------------------------------------------------------------------- PLN005


def test_pln005_topn_with_negative_limit(conn):
    p = plan_of(conn, "SELECT id FROM items ORDER BY qty LIMIT 7")
    top = find_op(p.root, ops.TopN)
    top.limit = A.Literal(-3)
    err = assert_pln("PLN005", p, conn.db)
    assert "negative" in str(err)


def test_pln005_vec_topn_with_negative_limit(vec_conn):
    p = plan_of(vec_conn, "SELECT qty FROM items ORDER BY qty LIMIT 7")
    top = find_op(p.root, ops.VecTopN)
    top.limit = A.Unary("-", A.Literal(3))
    err = assert_pln("PLN005", p, vec_conn.db)
    assert "negative" in str(err)


def test_negative_literal_limit_never_fuses_topn(conn):
    # The invariant behind PLN005: the optimizer lowers a plan-time
    # negative LIMIT (= unlimited) to Sort+Limit, so fused plans can
    # treat TopN limits as non-negative.  And it still verifies.
    p = plan_of(conn, "SELECT id FROM items ORDER BY qty LIMIT -3")
    described = "\n".join(str(line) for line in p.description)
    assert "TOP-N" not in described
    verifier.verify_tree(conn.db, p.root, names=list(p.names))
    rows = conn.execute("SELECT id FROM items ORDER BY qty LIMIT -3").fetchall()
    assert len(rows) > 0  # negative limit = unlimited


# ------------------------------------------------------------------- PLN006


def test_pln006_declared_name_arity_drift(conn):
    p = plan_of(conn, "SELECT id, qty FROM items")
    with pytest.raises(PlanVerificationError) as ei:
        verifier.verify_tree(conn.db, p.root, names=["id"])
    assert ei.value.code == "PLN006"


def test_pln006_union_branch_width_drift(conn):
    p = plan_of(conn, "SELECT id FROM cats UNION ALL SELECT tier FROM cats")
    union = find_op(p.root, ops.UnionOp)
    proj = find_op(union.inputs[0], ops.ProjectOp)
    proj.cols = list(proj.cols) + [("expr", A.Literal(1), None)]
    err = assert_pln("PLN006", p, conn.db)
    assert "UNION" in str(err) or "column counts" in str(err)


def test_pln006_aggregate_call_set_drift(conn):
    p = plan_of(conn, "SELECT cat, COUNT(*), SUM(qty) FROM items GROUP BY cat")
    agg = find_op(p.root, ops.HashAggregate)
    agg.calls = agg.calls[:1]  # lose SUM(qty)
    err = assert_pln("PLN006", p, conn.db)
    assert "call set" in str(err) or "missing" in str(err)


# ------------------------------------------------------------------- PLN007


def _contract(**kw):
    base = dict(
        protocol=ROW,
        width=2,
        ordering=(False,),
        distinct=True,
        predicates=frozenset({"a > 1"}),
    )
    base.update(kw)
    return Contract(**base)


@pytest.mark.parametrize(
    "after_kw,fragment",
    [
        ({"width": 3}, "width changed"),
        ({"predicates": frozenset()}, "predicates dropped"),
        ({"ordering": (True,)}, "ordering guarantee changed"),
        ({"distinct": False}, "distinctness guarantee lost"),
    ],
)
def test_pln007_each_drift_kind(after_kw, fragment):
    with pytest.raises(PlanVerificationError) as ei:
        verifier.check_rule("test_rule", _contract(), _contract(**after_kw))
    assert ei.value.code == "PLN007"
    assert fragment in str(ei.value)


def test_pln007_equal_contracts_pass():
    verifier.check_rule("test_rule", _contract(), _contract())
    # Gaining predicates (pushdown clones them downward) is not drift.
    verifier.check_rule(
        "test_rule",
        _contract(),
        _contract(predicates=frozenset({"a > 1", "b = 2"})),
    )


def test_pln007_sabotaged_rule_caught_end_to_end(monkeypatch):
    # A rewrite "rule" that drops the WHERE clause must be caught by the
    # soundness harness at plan time, before any wrong rows are produced.
    def sabotage(plan):
        for branch in plan.branches:
            branch.where = None

    c = minidb.connect()
    c.execute("CREATE TABLE t (a INTEGER)")
    c.execute("INSERT INTO t VALUES (1), (2), (3)")
    monkeypatch.setattr(optimizer, "_fold_plan", sabotage)
    with pytest.raises(PlanVerificationError) as ei:
        c.execute("SELECT a FROM t WHERE a > 1").fetchall()
    assert ei.value.code == "PLN007"
    assert "constant_folding" in str(ei.value)
    c.close()


# ------------------------------------------------------- toggle and counters


def test_should_verify_sampling(monkeypatch):
    monkeypatch.setattr(verifier, "VERIFY_PLANS", True)
    monkeypatch.setattr(verifier, "VERIFY_SAMPLE", 3)
    monkeypatch.setattr(verifier, "_tick", 0)
    assert sum(verifier.should_verify() for _ in range(9)) == 3
    monkeypatch.setattr(verifier, "VERIFY_SAMPLE", 1)
    assert all(verifier.should_verify() for _ in range(5))


def test_verify_plans_off_skips(monkeypatch):
    monkeypatch.setattr(verifier, "VERIFY_PLANS", False)
    assert not verifier.should_verify()


@pytest.fixture
def metrics_on():
    # The obs registry is disabled by default; the counter assertions
    # need it live.  reset() is not called so concurrent counters keep
    # their values — the tests assert on deltas only.
    _obs_metrics.enable()
    yield
    _obs_metrics.disable()


def test_counters_track_plans_and_violations(conn, metrics_on):
    plans0 = verifier._PLANS.value
    bad0 = verifier._VIOLATIONS.value
    p = plan_of(conn, "SELECT id FROM items")
    assert verifier._PLANS.value > plans0  # plan_select verified it
    assert verifier._VIOLATIONS.value == bad0
    flt = ops.FilterOp(A.ColumnRef(None, "bogus"), p.root.child)
    broken_root = ops.ProjectOp(p.root.cols, flt)
    with pytest.raises(PlanVerificationError):
        verifier.verify_plan(
            conn.db,
            optimizer.PhysicalPlan(broken_root, list(p.names), [], p.tables),
        )
    assert verifier._VIOLATIONS.value == bad0 + 1


def test_rule_drift_counters(metrics_on):
    checks0 = verifier._RULE_CHECKS.value
    drift0 = verifier._RULE_DRIFT.value
    verifier.check_rule("counted_rule", _contract(), _contract())
    with pytest.raises(PlanVerificationError):
        verifier.check_rule("counted_rule", _contract(), _contract(width=3))
    assert verifier._RULE_CHECKS.value == checks0 + 2
    assert verifier._RULE_DRIFT.value == drift0 + 1
    assert verifier._drift_counter("counted_rule").value >= 1


# ------------------------------------------------------------ property tests


def test_full_corpus_verifies_clean(conn):
    """Every differential-corpus plan satisfies the PLN contract."""
    bad0 = verifier._VIOLATIONS.value
    for sql, _op in SHAPES:
        p = plan_of(conn, sql)
        contract = verifier.verify_plan(conn.db, p)
        assert contract.protocol in ("row", "row-batch"), sql
        assert contract.width is None or contract.width == len(p.names), sql
    assert verifier._VIOLATIONS.value == bad0


@pytest.mark.parametrize("batch_size", [1, 7, 4096])
def test_vectorized_corpus_verifies_clean(conn, monkeypatch, batch_size):
    monkeypatch.setattr(optimizer, "VECTOR_MIN_ROWS", 0)
    monkeypatch.setattr(vector, "BATCH_SIZE", batch_size)
    bad0 = verifier._VIOLATIONS.value
    for sql, _op in SHAPES:
        verifier.verify_plan(conn.db, plan_of(conn, sql))
    assert verifier._VIOLATIONS.value == bad0


@pytest.mark.parametrize("rule", RULES)
def test_rule_toggle_matrix_verifies_clean(conn, monkeypatch, rule):
    """With any single rule disabled, all corpus plans still verify and
    no rule-drift fires (the remaining rules stay sound on their own)."""
    monkeypatch.setattr(optimizer, rule, False)
    drift0 = verifier._RULE_DRIFT.value
    bad0 = verifier._VIOLATIONS.value
    for sql, _op in SHAPES:
        verifier.verify_plan(conn.db, plan_of(conn, sql))
    assert verifier._VIOLATIONS.value == bad0
    assert verifier._RULE_DRIFT.value == drift0
