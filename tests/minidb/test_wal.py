"""Persistence: snapshots, WAL replay, crash recovery, checkpointing."""

import json
import os

import pytest

import repro.minidb as minidb


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "perf.db")


def make_db(path):
    c = minidb.connect(path)
    c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    c.execute("INSERT INTO t (v) VALUES ('one'), ('two')")
    c.commit()
    return c


class TestSnapshotRoundTrip:
    def test_close_and_reopen(self, db_path):
        make_db(db_path).close()
        c = minidb.connect(db_path)
        assert c.execute("SELECT v FROM t ORDER BY id").fetchall() == [("one",), ("two",)]
        c.close()

    def test_schema_survives(self, db_path):
        c = make_db(db_path)
        c.execute("CREATE UNIQUE INDEX uv ON t (v)")
        c.close()
        c = minidb.connect(db_path)
        with pytest.raises(minidb.IntegrityError):
            c.execute("INSERT INTO t (v) VALUES ('one')")
        c.close()

    def test_autoincrement_survives(self, db_path):
        make_db(db_path).close()
        c = minidb.connect(db_path)
        cur = c.execute("INSERT INTO t (v) VALUES ('three')")
        assert cur.lastrowid == 3
        c.close()

    def test_blob_round_trip(self, db_path):
        c = minidb.connect(db_path)
        c.execute("CREATE TABLE b (data BLOB)")
        c.execute("INSERT INTO b VALUES (?)", (b"\x00\x01\xfe",))
        c.commit()
        c.close()
        c = minidb.connect(db_path)
        assert c.execute("SELECT data FROM b").fetchall() == [(b"\x00\x01\xfe",)]
        c.close()


class TestWalReplay:
    def test_committed_wal_replayed_without_checkpoint(self, db_path):
        c = make_db(db_path)
        c.execute("INSERT INTO t (v) VALUES ('three')")
        c.commit()
        # Simulate a crash: no close/checkpoint, reopen from snapshot+WAL.
        c2 = minidb.connect(db_path)
        assert c2.execute("SELECT COUNT(*) FROM t").fetchall() == [(3,)]
        c2.close()
        c.close()

    def test_uncommitted_changes_not_in_wal(self, db_path):
        c = make_db(db_path)
        c.execute("INSERT INTO t (v) VALUES ('ghost')")
        # No commit: a new reader must not see it.
        c2 = minidb.connect(db_path)
        assert c2.execute("SELECT COUNT(*) FROM t").fetchall() == [(2,)]
        c2.close()
        c.rollback()
        c.close()

    def test_torn_tail_ignored(self, db_path):
        c = make_db(db_path)
        c.execute("INSERT INTO t (v) VALUES ('three')")
        c.commit()
        wal = db_path + ".wal"
        with open(wal, "a", encoding="utf-8") as fh:
            fh.write('{"op": "insert", "table": "t", "rowid": 99, "row": [99, "tor')
        c2 = minidb.connect(db_path)
        assert c2.execute("SELECT COUNT(*) FROM t").fetchall() == [(3,)]
        c2.close()
        c.close()

    def test_update_delete_in_wal(self, db_path):
        c = make_db(db_path)
        c.execute("UPDATE t SET v = 'uno' WHERE id = 1")
        c.execute("DELETE FROM t WHERE id = 2")
        c.commit()
        c2 = minidb.connect(db_path)
        assert c2.execute("SELECT v FROM t").fetchall() == [("uno",)]
        c2.close()
        c.close()

    def test_ddl_in_wal(self, db_path):
        c = make_db(db_path)
        c.execute("CREATE TABLE extra (x INTEGER)")
        c.execute("INSERT INTO extra VALUES (5)")
        c.commit()
        c2 = minidb.connect(db_path)
        assert c2.execute("SELECT x FROM extra").fetchall() == [(5,)]
        c2.close()
        c.close()


class TestCheckpoint:
    def test_checkpoint_truncates_wal(self, db_path):
        c = make_db(db_path)
        c.execute("INSERT INTO t (v) VALUES ('three')")
        c.commit()
        assert os.path.exists(db_path + ".wal")
        c.checkpoint()
        assert not os.path.exists(db_path + ".wal")
        c.close()
        c2 = minidb.connect(db_path)
        assert c2.execute("SELECT COUNT(*) FROM t").fetchall() == [(3,)]
        c2.close()

    def test_snapshot_is_valid_json(self, db_path):
        make_db(db_path).close()
        with open(db_path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["version"] == 1
        assert any(t["meta"]["name"] == "t" for t in doc["tables"])

    def test_corrupt_snapshot_raises_operational_error(self, db_path):
        with open(db_path, "w", encoding="utf-8") as fh:
            fh.write("this is not json")
        with pytest.raises(minidb.OperationalError):
            minidb.connect(db_path)
