"""Tokenizer tests."""

import pytest

from repro.minidb.errors import SqlSyntaxError
from repro.minidb.lexer import (
    BLOBLIT,
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PARAM,
    STRING,
    tokenize,
)


def kinds(sql):
    return [t.kind for t in tokenize(sql)]


def values(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        toks = tokenize("select From WHERE")
        assert [t.value for t in toks[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind == KEYWORD for t in toks[:-1])

    def test_identifiers_keep_case(self):
        toks = tokenize("resource_item FooBar")
        assert [t.value for t in toks[:-1]] == ["resource_item", "FooBar"]
        assert all(t.kind == IDENT for t in toks[:-1])

    def test_integer_and_float_literals(self):
        toks = tokenize("42 3.14 .5 1e6 2.5E-3")
        assert all(t.kind == NUMBER for t in toks[:-1])
        assert values("42 3.14 .5 1e6 2.5E-3") == ["42", "3.14", ".5", "1e6", "2.5E-3"]

    def test_string_literal_with_escaped_quote(self):
        toks = tokenize("'it''s'")
        assert toks[0].kind == STRING
        assert toks[0].value == "it's"

    def test_empty_string_literal(self):
        assert tokenize("''")[0].value == ""

    def test_blob_literal(self):
        toks = tokenize("x'DEADBEEF'")
        assert toks[0].kind == BLOBLIT
        assert toks[0].value == "DEADBEEF"

    def test_eof_token_always_last(self):
        assert tokenize("")[-1].kind == EOF
        assert tokenize("SELECT 1")[-1].kind == EOF


class TestOperators:
    def test_multichar_operators(self):
        assert values("<= >= <> || ==") == ["<=", ">=", "<>", "||", "="]

    def test_bang_equals_normalised(self):
        assert values("a != b") == ["a", "<>", "b"]

    def test_single_char_operators(self):
        assert values("( ) , . * / % + - = < > ;") == list("(),.*/%+-=<>;")


class TestParameters:
    def test_qmark(self):
        toks = tokenize("WHERE a = ?")
        assert toks[3].kind == PARAM

    def test_pyformat_percent_s(self):
        toks = tokenize("WHERE a = %s")
        assert toks[3].kind == PARAM
        assert toks[3].value == "?"


class TestQuotedIdentifiers:
    def test_double_quoted(self):
        toks = tokenize('"weird name"')
        assert toks[0].kind == IDENT
        assert toks[0].value == "weird name"

    def test_backtick(self):
        assert tokenize("`tbl`")[0].value == "tbl"

    def test_brackets(self):
        assert tokenize("[col name]")[0].value == "col name"


class TestComments:
    def test_line_comment(self):
        assert values("SELECT 1 -- trailing comment") == ["SELECT", "1"]

    def test_block_comment(self):
        assert values("SELECT /* inline */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT /* oops")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")

    def test_error_carries_position(self):
        with pytest.raises(SqlSyntaxError) as exc:
            tokenize("SELECT\n  @")
        assert "line 2" in str(exc.value)

    def test_invalid_blob_literal(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("x'NOTHEX'")
