"""Concurrent multi-session engine: locks, snapshots, WAL group commit.

Covers the lock manager's ordered/timeout semantics, snapshot isolation
across engine sessions, the ColumnStore seqlock against torn snapshot
builds, crash-replay of group-committed WAL prefixes, structured
:class:`SessionError` lifetimes, and the socket server round trip.
"""

import json
import os
import shutil
import threading
import time

import pytest

from repro.minidb import Engine, LockTimeoutError, SessionError
from repro.minidb.errors import IntegrityError, InterfaceError, OperationalError
from repro.minidb.locks import SCHEMA_LOCK, LockManager
from repro.minidb.server import MiniDbClient, MiniDbServer
from repro.minidb.storage import Database


# ---------------------------------------------------------------------------
# Lock manager
# ---------------------------------------------------------------------------


class TestLockManager:
    def test_acquire_is_reentrant(self):
        lm = LockManager()
        lm.acquire("s1", "t")
        lm.acquire("s1", "t")  # same owner re-enters without blocking
        assert lm.held("s1", "t")
        lm.release_all("s1")
        assert lm.holder("t") is None

    def test_contended_acquire_times_out_with_context(self):
        lm = LockManager(timeout=0.05)
        lm.acquire("s1", "t")
        with pytest.raises(LockTimeoutError) as exc_info:
            lm.acquire("s2", "t")
        err = exc_info.value
        assert isinstance(err, OperationalError)
        assert err.resource == "t"
        assert err.owner == "s2"
        assert err.holder == "s1"
        assert err.waited > 0
        lm.release_all("s1")

    def test_acquire_many_takes_every_lock(self):
        lm = LockManager()
        lm.acquire_many("s1", ["b", "a", SCHEMA_LOCK])
        for name in ("a", "b", SCHEMA_LOCK):
            assert lm.held("s1", name)
        assert sorted(lm.held_by("s1")) == sorted(["a", "b", SCHEMA_LOCK])
        lm.release_all("s1")

    def test_acquire_many_timeout_releases_only_new_locks(self):
        lm = LockManager(timeout=0.05)
        lm.acquire("s1", "b")
        lm.acquire("s2", "a")  # s2 already holds 'a' before the batch
        with pytest.raises(LockTimeoutError) as exc_info:
            lm.acquire_many("s2", ["a", "b", "c"])
        assert exc_info.value.resource == "b"
        # The batch must give back 'c' (newly taken) but keep the
        # pre-existing 'a' — a retry loop still owns what it owned.
        assert lm.held("s2", "a")
        assert lm.holder("c") is None
        assert lm.holder("b") == "s1"
        lm.release_all("s1")
        lm.release_all("s2")

    def test_release_unblocks_waiter(self):
        lm = LockManager(timeout=5.0)
        lm.acquire("s1", "t")
        acquired = threading.Event()

        def waiter():
            lm.acquire("s2", "t")
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        assert not acquired.is_set()
        lm.release_all("s1")
        thread.join(timeout=2.0)
        assert acquired.is_set()
        assert lm.holder("t") == "s2"
        lm.release_all("s2")


# ---------------------------------------------------------------------------
# Multi-session snapshot isolation
# ---------------------------------------------------------------------------


@pytest.fixture
def engine():
    eng = Engine(":memory:")
    session = eng.connect()
    cur = session.cursor()
    cur.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
    cur.execute("INSERT INTO t (v) VALUES ('one'), ('two')")
    session.commit()
    cur.close()
    session.close()
    yield eng
    eng.close()


def _count(session, sql="SELECT COUNT(*) FROM t"):
    cur = session.cursor()
    cur.execute(sql)
    value = cur.fetchone()[0]
    cur.close()
    return value


class TestSessionIsolation:
    def test_uncommitted_write_invisible_to_other_session(self, engine):
        s1, s2 = engine.connect(), engine.connect()
        s1.execute("INSERT INTO t (v) VALUES ('three')")
        assert _count(s1) == 3  # read-your-writes
        assert _count(s2) == 2  # snapshot: not yet committed
        s1.commit()
        assert _count(s2) == 3  # new statement, new snapshot
        s1.close()
        s2.close()

    def test_rollback_restores_published_state(self, engine):
        s1, s2 = engine.connect(), engine.connect()
        s1.execute("DELETE FROM t")
        assert _count(s1) == 0
        s1.rollback()
        assert _count(s1) == 2
        assert _count(s2) == 2
        s1.close()
        s2.close()

    def test_open_transaction_pins_read_snapshot(self, engine):
        s1, s2 = engine.connect(), engine.connect()
        s2.execute("BEGIN")
        assert _count(s2) == 2
        s1.execute("INSERT INTO t (v) VALUES ('three')")
        s1.commit()
        # s2's transaction still reads the snapshot pinned at BEGIN.
        assert _count(s2) == 2
        s2.commit()
        assert _count(s2) == 3
        s1.close()
        s2.close()

    def test_writer_conflict_times_out_and_recovers(self, engine):
        engine.db.locks.timeout = 0.05
        s1, s2 = engine.connect(), engine.connect()
        s1.execute("UPDATE t SET v = 'held' WHERE id = 1")
        with pytest.raises(LockTimeoutError) as exc_info:
            s2.execute("UPDATE t SET v = 'blocked' WHERE id = 2")
        err = exc_info.value
        assert err.resource == "t"
        assert err.holder == s1.owner
        assert err.owner == s2.owner
        s2.rollback()
        s1.commit()  # releases the writer lock
        s2.execute("UPDATE t SET v = 'after' WHERE id = 2")
        s2.commit()
        assert _count(s1, "SELECT COUNT(*) FROM t WHERE v = 'after'") == 1
        s1.close()
        s2.close()

    def test_session_close_releases_locks_and_rolls_back(self, engine):
        engine.db.locks.timeout = 0.05
        s1, s2 = engine.connect(), engine.connect()
        s1.execute("INSERT INTO t (v) VALUES ('doomed')")
        s1.close()  # implicit rollback + lock release
        s2.execute("UPDATE t SET v = 'fine' WHERE id = 1")  # no timeout
        s2.commit()
        assert _count(s2, "SELECT COUNT(*) FROM t WHERE v = 'doomed'") == 0
        s2.close()

    def test_sql_transaction_control_routes_through_session(self, engine):
        s1, s2 = engine.connect(), engine.connect()
        s1.execute("BEGIN")
        s1.execute("INSERT INTO t (v) VALUES ('sql-txn')")
        assert _count(s2, "SELECT COUNT(*) FROM t WHERE v = 'sql-txn'") == 0
        s1.execute("COMMIT")
        assert _count(s2, "SELECT COUNT(*) FROM t WHERE v = 'sql-txn'") == 1
        s1.execute("BEGIN")
        s1.execute("INSERT INTO t (v) VALUES ('undone')")
        s1.execute("ROLLBACK")
        assert _count(s2, "SELECT COUNT(*) FROM t WHERE v = 'undone'") == 0
        s1.close()
        s2.close()

    def test_ddl_visible_to_existing_sessions(self, engine):
        s1, s2 = engine.connect(), engine.connect()
        s1.execute("CREATE TABLE u (id INTEGER PRIMARY KEY, w TEXT)")
        s2.execute("INSERT INTO u (w) VALUES ('x')")
        s2.commit()
        assert _count(s1, "SELECT COUNT(*) FROM u") == 1
        s1.close()
        s2.close()

    def test_concurrent_inserts_from_many_sessions(self, engine):
        n_threads, per_thread = 4, 25
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(i):
            session = engine.connect()
            cur = session.cursor()
            barrier.wait()
            try:
                for j in range(per_thread):
                    cur.execute(
                        "INSERT INTO t (v) VALUES (?)", (f"w{i}-{j}",)
                    )
                    session.commit()
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)
            finally:
                cur.close()
                session.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        session = engine.connect()
        assert _count(session) == 2 + n_threads * per_thread
        session.close()


# ---------------------------------------------------------------------------
# ColumnStore torn-snapshot regression (seqlock)
# ---------------------------------------------------------------------------


class _RacingRows(dict):
    """A row dict whose iteration hands control to a racing writer."""

    def __init__(self, data, on_items):
        super().__init__(data)
        self._on_items = on_items

    def items(self):
        self._on_items()
        return super().items()


class TestColumnStoreSeqlock:
    def _make_table(self):
        db = Database()

        class _Cols:
            def __init__(self, name):
                self.name = name
                self.not_null = False

        class _Meta:
            name = "t"
            columns = [_Cols("a")]
            primary_key = []
            unique_sets = []
            foreign_keys = []
            rowid_pk_column = None

            def column_index(self, _c):
                return 0

        from repro.minidb.storage import Table

        table = Table(_Meta())
        db.tables["t"] = table
        for i in range(10):
            table.rows[table.allocate_rowid()] = (i,)
        table.bump_version()
        return db, table

    def test_build_waits_out_in_flight_mutation(self):
        _db, table = self._make_table()
        table.begin_mutation()  # epoch odd: a row mutation is in flight
        result = []
        builder = threading.Thread(
            target=lambda: result.append(table.column_store())
        )
        builder.start()
        builder.join(timeout=0.1)
        assert builder.is_alive()  # spinning until the epoch goes even
        table.rows[table.allocate_rowid()] = (99,)
        table.bump_version()
        builder.join(timeout=2.0)
        assert not builder.is_alive()
        store = result[0]
        assert store.version == table.data_version
        assert store.nrows == len(table.rows) == 11

    def test_racing_mutation_forces_clean_rebuild(self):
        """A writer landing mid-copy must not produce a torn snapshot.

        The builder thread starts copying the row dict; at that exact
        point (synchronized through the ``items()`` hook) a writer runs a
        full epoch-bracketed mutation.  The first build pairs the *old*
        data_version with the *new* rows — exactly the torn state — so
        the version check must throw it away and rebuild.
        """
        _db, table = self._make_table()
        build_started = threading.Event()
        mutation_done = threading.Event()
        calls = []

        def on_items():
            calls.append(1)
            if len(calls) == 1:
                build_started.set()
                assert mutation_done.wait(timeout=5.0)

        table.rows = _RacingRows(table.rows, on_items)
        table._column_store = None

        def writer():
            assert build_started.wait(timeout=5.0)
            table.begin_mutation()
            dict.__setitem__(table.rows, table.allocate_rowid(), (99,))
            table.bump_version()
            mutation_done.set()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        store = table.column_store()
        writer_thread.join(timeout=5.0)
        assert len(calls) >= 2  # the torn first build was discarded
        assert store.version == table.data_version
        assert store.nrows == len(table.rows) == 11

    def test_snapshot_consistent_under_writer_stress(self):
        db, table = self._make_table()
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                table.begin_mutation()
                table.rows[table.allocate_rowid()] = (1,)
                table.bump_version()

        def reader():
            try:
                while not stop.is_set():
                    table._column_store = None
                    store = table.column_store()
                    # A clean snapshot decodes exactly nrows values.
                    total = 0
                    for i in range(store.num_segments):
                        seg = store.segment(i)
                        total += len(seg.slice(0, 0, seg.n)[0])
                    if total != store.nrows:
                        errors.append((total, store.nrows))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join(timeout=5.0)
        assert errors == []


# ---------------------------------------------------------------------------
# WAL crash replay with concurrent group commits
# ---------------------------------------------------------------------------


def _batches_visible(path):
    """{batch: row_count} as seen by a fresh engine over *path*."""
    engine = Engine(path)
    session = engine.connect()
    cur = session.cursor()
    cur.execute("SELECT batch, COUNT(*) FROM m GROUP BY batch")
    out = dict(cur.fetchall())
    cur.close()
    session.close()
    engine.close()
    return out


def _committed_batches_in_wal(wal_path):
    """Reference replay: batch tags whose commit marker made the file."""
    committed, pending = set(), set()
    with open(wal_path, "r", encoding="utf-8") as fh:
        for line in fh:
            try:
                rec = json.loads(line)
            except ValueError:
                break  # torn tail
            if rec.get("op") == "commit":
                committed |= pending
                pending = set()
            elif rec.get("op") == "insert_batch":
                for _rowid, row in rec["rows"]:
                    pending.add(row[1])
    return committed


class TestWalCrashReplay:
    BATCH = 4

    def _run_workload(self, db_path, durable_lengths):
        engine = Engine(db_path)
        setup = engine.connect()
        setup.execute(
            "CREATE TABLE m (id INTEGER PRIMARY KEY, batch INTEGER)"
        )
        setup.close()

        journal = engine.db.journal
        real_fsync = journal._do_fsync
        record_lock = threading.Lock()

        def recording_fsync(fileno):
            real_fsync(fileno)
            with record_lock:
                durable_lengths.append(os.fstat(fileno).st_size)

        journal._do_fsync = recording_fsync

        committed = set()
        committed_lock = threading.Lock()
        n_threads, commits_each = 4, 6
        barrier = threading.Barrier(n_threads)

        def worker(i):
            session = engine.connect()
            cur = session.cursor()
            barrier.wait()
            for j in range(commits_each):
                tag = i * 100 + j
                cur.executemany(
                    "INSERT INTO m (batch) VALUES (?)",
                    [(tag,)] * self.BATCH,
                )
                session.commit()
                with committed_lock:
                    committed.add(tag)
            cur.close()
            session.close()

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Leave the WAL in place (no checkpoint): the "crash" is a copy of
        # the log file, not a clean shutdown.
        journal._do_fsync = real_fsync
        return engine, committed

    def test_replay_reconstructs_exactly_the_committed_prefix(self, tmp_path):
        db_path = str(tmp_path / "crash.db")
        durable_lengths = []
        engine, committed = self._run_workload(db_path, durable_lengths)
        wal_path = db_path + ".wal"
        assert durable_lengths, "group commit never fsynced"

        # Kill between group-commit flushes: the surviving log is the
        # file exactly as of some recorded fsync, mid-run.
        cut = sorted(durable_lengths)[len(durable_lengths) // 2]
        crash_path = str(tmp_path / "survivor.db")
        shutil.copyfile(wal_path, crash_path + ".wal")
        with open(crash_path + ".wal", "r+b") as fh:
            fh.truncate(cut)

        expected = _committed_batches_in_wal(crash_path + ".wal")
        visible = _batches_visible(crash_path)
        assert set(visible) == expected  # exactly the durable prefix
        assert expected <= committed
        assert all(count == self.BATCH for count in visible.values())
        engine.close()

    def test_full_wal_replays_every_concurrent_commit(self, tmp_path):
        db_path = str(tmp_path / "full.db")
        durable_lengths = []
        engine, committed = self._run_workload(db_path, durable_lengths)
        wal_path = db_path + ".wal"
        copy_path = str(tmp_path / "copy.db")
        shutil.copyfile(wal_path, copy_path + ".wal")
        visible = _batches_visible(copy_path)
        assert set(visible) == committed
        assert all(count == self.BATCH for count in visible.values())
        # Group commit: concurrent commits share fsyncs, so the log never
        # needs more flushes than commits (+1 for the CREATE TABLE).
        assert len(durable_lengths) <= len(committed) + 1
        engine.close()

    def test_torn_tail_is_ignored(self, tmp_path):
        db_path = str(tmp_path / "torn.db")
        durable_lengths = []
        engine, _committed = self._run_workload(db_path, durable_lengths)
        wal_path = db_path + ".wal"
        torn_path = str(tmp_path / "tail.db")
        shutil.copyfile(wal_path, torn_path + ".wal")
        size = os.path.getsize(torn_path + ".wal")
        with open(torn_path + ".wal", "r+b") as fh:
            fh.truncate(size - 7)  # rip through the last record
        expected = _committed_batches_in_wal(torn_path + ".wal")
        visible = _batches_visible(torn_path)
        assert set(visible) == expected
        assert all(count == self.BATCH for count in visible.values())
        engine.close()


# ---------------------------------------------------------------------------
# Session lifetime errors (structured SessionError)
# ---------------------------------------------------------------------------


class TestSessionErrors:
    def test_cursor_after_connection_close(self, engine):
        session = engine.connect()
        cur = session.cursor()
        session.close()
        with pytest.raises(SessionError) as exc_info:
            cur.execute("SELECT 1")
        err = exc_info.value
        assert isinstance(err, InterfaceError)
        assert err.code == "SES001"
        assert err.hint

    def test_closed_cursor(self, engine):
        session = engine.connect()
        cur = session.cursor()
        cur.close()
        with pytest.raises(SessionError) as exc_info:
            cur.fetchone()
        assert exc_info.value.code == "SES004"
        session.close()

    def test_connect_on_closed_engine(self):
        eng = Engine(":memory:")
        eng.close()
        with pytest.raises(SessionError) as exc_info:
            eng.connect()
        assert exc_info.value.code == "SES002"

    def test_streaming_cursor_invalidated_by_commit(self, engine):
        session = engine.connect()
        cur = session.cursor()
        cur.execute("INSERT INTO t (v) VALUES ('x')")  # opens the txn
        cur.execute("SELECT v FROM t")
        assert cur.fetchone() is not None
        session.commit()
        with pytest.raises(SessionError) as exc_info:
            cur.fetchone()
        err = exc_info.value
        assert err.code == "SES003"
        assert "re-execute" in err.hint
        session.close()

    def test_streaming_cursor_invalidated_by_rollback(self, engine):
        session = engine.connect()
        cur = session.cursor()
        cur.execute("INSERT INTO t (v) VALUES ('x')")
        cur.execute("SELECT v FROM t")
        session.rollback()
        with pytest.raises(SessionError) as exc_info:
            cur.fetchall()
        assert exc_info.value.code == "SES003"
        session.close()

    def test_cursor_without_transaction_survives_commit(self, engine):
        # No open transaction at execute time: the cursor streams from a
        # stable published snapshot and a later commit can't hurt it.
        session = engine.connect()
        cur = session.cursor()
        cur.execute("SELECT v FROM t ORDER BY id")
        session.commit()
        assert cur.fetchall() == [("one",), ("two",)]
        session.close()


# ---------------------------------------------------------------------------
# Socket server round trip
# ---------------------------------------------------------------------------


class TestServer:
    def test_round_trip_and_error_mapping(self):
        engine = Engine(":memory:")
        with MiniDbServer(engine, port=0) as server:
            client = MiniDbClient(server.host, server.port)
            client.execute(
                "CREATE TABLE kv (k INTEGER PRIMARY KEY, v TEXT)"
            )
            result = client.executemany(
                "INSERT INTO kv (k, v) VALUES (?, ?)",
                [(1, "a"), (2, "b")],
            )
            assert result["rowcount"] == 2
            result = client.execute("SELECT k, v FROM kv ORDER BY k")
            assert result["rows"] == [[1, "a"], [2, "b"]]
            assert result["columns"] == ["k", "v"]
            with pytest.raises(IntegrityError):
                client.execute(
                    "INSERT INTO kv (k, v) VALUES (?, ?)", (1, "dup")
                )
            # The failed statement did not kill the session.
            result = client.execute("SELECT COUNT(*) FROM kv")
            assert result["rows"] == [[2]]
            client.close()
        engine.close()

    def test_sessions_are_isolated_per_socket(self):
        engine = Engine(":memory:")
        with MiniDbServer(engine, port=0) as server:
            c1 = MiniDbClient(server.host, server.port)
            c2 = MiniDbClient(server.host, server.port)
            c1.execute("CREATE TABLE s (id INTEGER PRIMARY KEY, v TEXT)")
            c1.execute("INSERT INTO s (v) VALUES ('mine')")
            # c1 has not committed: c2's snapshot must not see the row.
            assert c2.execute("SELECT COUNT(*) FROM s")["rows"] == [[0]]
            c1.execute("COMMIT")
            assert c2.execute("SELECT COUNT(*) FROM s")["rows"] == [[1]]
            c1.close()
            c2.close()
        engine.close()

    def test_protocol_errors(self):
        engine = Engine(":memory:")
        with MiniDbServer(engine, port=0) as server:
            client = MiniDbClient(server.host, server.port)
            with pytest.raises(OperationalError) as exc_info:
                client._roundtrip({"op": "nonsense"})
            assert "ProtocolError" in str(exc_info.value)
            client.close()
        engine.close()


# ---------------------------------------------------------------------------
# Load-generator smoke (satellite of benchmarks/load_generator)
# ---------------------------------------------------------------------------


class TestLoadGeneratorSmoke:
    def test_small_mix_has_no_isolation_violations(self):
        import sys

        bench_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "benchmarks",
        )
        if bench_dir not in sys.path:
            sys.path.insert(0, bench_dir)
        from load_generator.workload import Mix, run_mix

        report = run_mix(Mix("smoke", readers=2, writers=2, ops_per_client=15))
        assert report["violations"] == []
        assert report["total_ops"] > 0
        assert report["throughput_ops_per_s"] > 0
        assert 0 <= report["p50_seconds"] <= report["p95_seconds"]
