"""Differential testing: minidb must agree with sqlite3 on a query corpus.

This is the strongest correctness evidence for the engine: both backends
get identical schemas and rows, then every query in the corpus (and a
hypothesis-generated family of WHERE clauses) must return the same bag of
rows.
"""

import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

import repro.minidb as minidb

ROWS = [
    (1, "alice", "eng", 120.0, 1),
    (2, "bob", "eng", 100.0, 1),
    (3, "carol", "ops", 90.0, 2),
    (4, "dave", "ops", 95.0, 2),
    (5, "erin", "mgmt", 150.0, None),
    (6, "frank", None, None, 3),
]

DEPTS = [(1, "building-A"), (2, "building-B"), (3, "building-C")]

SCHEMA = [
    "CREATE TABLE emp (id INTEGER PRIMARY KEY, name TEXT, dept TEXT, salary REAL, loc INTEGER)",
    "CREATE TABLE loc (id INTEGER PRIMARY KEY, building TEXT)",
    "CREATE INDEX idx_dept ON emp (dept)",
]


def normalize(rows):
    out = []
    for row in rows:
        norm = []
        for v in row:
            if isinstance(v, float) and v.is_integer():
                v = int(v)
            norm.append(v)
        out.append(tuple(norm))
    return sorted(out, key=repr)


@pytest.fixture(scope="module")
def engines():
    m = minidb.connect()
    s = sqlite3.connect(":memory:")
    for conn in (m, s):
        cur = conn.cursor()
        for ddl in SCHEMA:
            cur.execute(ddl)
        cur.executemany("INSERT INTO emp VALUES (?, ?, ?, ?, ?)", ROWS)
        cur.executemany("INSERT INTO loc VALUES (?, ?)", DEPTS)
        conn.commit()
    yield m, s
    m.close()
    s.close()


def both(engines, sql, params=()):
    m, s = engines
    return (
        normalize(m.execute(sql, params).fetchall()),
        normalize(s.execute(sql, params).fetchall()),
    )


CORPUS = [
    "SELECT * FROM emp",
    "SELECT name, salary FROM emp WHERE salary > 95",
    "SELECT name FROM emp WHERE dept = 'eng' AND salary >= 100",
    "SELECT name FROM emp WHERE dept IS NULL",
    "SELECT name FROM emp WHERE salary IS NOT NULL AND salary < 100",
    "SELECT name FROM emp WHERE name LIKE '%a%'",
    "SELECT name FROM emp WHERE name NOT LIKE 'a%'",
    "SELECT name FROM emp WHERE salary BETWEEN 90 AND 120",
    "SELECT name FROM emp WHERE dept IN ('eng', 'mgmt')",
    "SELECT name FROM emp WHERE dept NOT IN ('eng')",
    "SELECT DISTINCT dept FROM emp",
    "SELECT COUNT(*), COUNT(dept), COUNT(DISTINCT dept) FROM emp",
    "SELECT SUM(salary), AVG(salary), MIN(salary), MAX(salary) FROM emp",
    "SELECT dept, COUNT(*) FROM emp GROUP BY dept",
    "SELECT dept, SUM(salary) FROM emp GROUP BY dept HAVING SUM(salary) > 100",
    "SELECT e.name, l.building FROM emp e JOIN loc l ON l.id = e.loc",
    "SELECT e.name, l.building FROM emp e LEFT JOIN loc l ON l.id = e.loc",
    "SELECT l.building, COUNT(e.id) FROM loc l LEFT JOIN emp e ON e.loc = l.id GROUP BY l.building",
    "SELECT name FROM emp WHERE loc IN (SELECT id FROM loc WHERE building LIKE '%B')",
    "SELECT name FROM emp e WHERE EXISTS (SELECT 1 FROM loc l WHERE l.id = e.loc)",
    "SELECT name, (SELECT building FROM loc l WHERE l.id = e.loc) FROM emp e",
    "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)",
    "SELECT dept FROM emp UNION SELECT building FROM loc",
    "SELECT dept FROM emp UNION ALL SELECT dept FROM emp",
    "SELECT name, CASE WHEN salary >= 120 THEN 'high' WHEN salary >= 95 THEN 'mid' ELSE 'low' END FROM emp WHERE salary IS NOT NULL",
    "SELECT UPPER(name), LENGTH(name) FROM emp",
    "SELECT COALESCE(dept, 'unknown') FROM emp",
    "SELECT name || '-' || dept FROM emp WHERE dept IS NOT NULL",
    "SELECT salary * 2 + 1 FROM emp WHERE salary IS NOT NULL",
    "SELECT -salary FROM emp WHERE id = 1",
    "SELECT name FROM emp ORDER BY salary DESC LIMIT 3",
    "SELECT name FROM emp ORDER BY dept, salary LIMIT 2 OFFSET 1",
    "SELECT t.d, t.n FROM (SELECT dept AS d, COUNT(*) AS n FROM emp GROUP BY dept) t WHERE t.n > 1",
    "SELECT a.name, b.name FROM emp a JOIN emp b ON a.dept = b.dept AND a.id < b.id",
    "SELECT COUNT(*) FROM emp, loc",
    "SELECT MAX(salary) - MIN(salary) FROM emp",
    "SELECT dept FROM emp GROUP BY dept ORDER BY COUNT(*) DESC, dept",
    "SELECT name FROM emp WHERE id % 2 = 0",
]


@pytest.mark.parametrize("sql", CORPUS, ids=[f"q{i}" for i in range(len(CORPUS))])
def test_corpus_agreement(engines, sql):
    mine, theirs = both(engines, sql)
    assert mine == theirs, f"disagreement on: {sql}"


class TestParametrizedAgreement:
    @pytest.mark.parametrize(
        "sql,params",
        [
            ("SELECT name FROM emp WHERE salary > ?", (99,)),
            ("SELECT name FROM emp WHERE dept = ? OR dept = ?", ("eng", "ops")),
            ("SELECT ? + 1, ? || 'x'", (5, "a")),
            ("SELECT name FROM emp WHERE salary BETWEEN ? AND ?", (90, 110)),
        ],
    )
    def test_params(self, engines, sql, params):
        mine, theirs = both(engines, sql, params)
        assert mine == theirs


@settings(max_examples=120, deadline=None)
@given(
    column=st.sampled_from(["id", "salary", "loc"]),
    op=st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    value=st.integers(-5, 160),
    order_col=st.sampled_from(["id", "name", "salary"]),
    limit=st.integers(1, 10),
)
def test_generated_where_clauses(column, op, value, order_col, limit):
    sql = (
        f"SELECT id, name FROM emp WHERE {column} {op} ? "
        f"ORDER BY {order_col}, id LIMIT {limit}"
    )
    m = minidb.connect()
    s = sqlite3.connect(":memory:")
    for conn in (m, s):
        cur = conn.cursor()
        cur.execute(SCHEMA[0])
        cur.executemany("INSERT INTO emp VALUES (?, ?, ?, ?, ?)", ROWS)
    mine = normalize(m.execute(sql, (value,)).fetchall())
    theirs = normalize(s.execute(sql, (value,)).fetchall())
    m.close()
    s.close()
    assert mine == theirs
