"""Physical-operator differential suite (Volcano refactor acceptance).

Every operator shape the planner can emit — SeqScan, IndexLookup,
IndexRange, InProbe, NestedLoopJoin, HashJoin, Filter, Project,
HashAggregate, Distinct, Union, Sort, TopN, Limit, SubqueryScan,
ConstantRow — is exercised against randomized data, with (a) the EXPLAIN
tree pinned to contain that operator and (b) the rows compared against
sqlite3 on an identical database.  A second property asserts that
switching any single optimizer rule off never changes a query's result
multiset: the rules are pure plan transformations.
"""

import random
import sqlite3

import pytest

import repro.minidb as minidb
from repro.minidb import optimizer, vector

SEED = 20260806
N_ITEMS = 120
N_CATS = 9


def _rand_rows(rng):
    cats = [(i, f"cat{i}", rng.randrange(0, 5)) for i in range(1, N_CATS + 1)]
    items = []
    for i in range(1, N_ITEMS + 1):
        items.append(
            (
                i,
                rng.randrange(1, N_CATS + 1) if rng.random() > 0.05 else None,
                rng.randrange(-50, 200),
                rng.choice(["red", "green", "blue", None]),
                round(rng.uniform(0, 100), 2),
            )
        )
    return cats, items


SCHEMA = [
    "CREATE TABLE cats (id INTEGER PRIMARY KEY, name TEXT, tier INTEGER)",
    "CREATE TABLE items (id INTEGER PRIMARY KEY, cat INTEGER, qty INTEGER, "
    "color TEXT, price REAL)",
    "CREATE INDEX idx_items_cat ON items (cat)",
    "CREATE INDEX idx_items_qty ON items (qty)",
]


def _populate(conn, cats, items):
    cur = conn.cursor()
    for ddl in SCHEMA:
        cur.execute(ddl)
    cur.executemany("INSERT INTO cats VALUES (?, ?, ?)", cats)
    cur.executemany("INSERT INTO items VALUES (?, ?, ?, ?, ?)", items)
    conn.commit()


def normalize(rows):
    out = []
    for row in rows:
        norm = []
        for v in row:
            if isinstance(v, float) and v.is_integer():
                v = int(v)
            norm.append(v)
        out.append(tuple(norm))
    return sorted(out, key=repr)


@pytest.fixture(scope="module")
def data():
    return _rand_rows(random.Random(SEED))


@pytest.fixture(scope="module")
def engines(data):
    cats, items = data
    m = minidb.connect()
    s = sqlite3.connect(":memory:")
    _populate(m, cats, items)
    _populate(s, cats, items)
    yield m, s
    m.close()
    s.close()


# (query, operator substring that must appear in its EXPLAIN tree)
SHAPES = [
    ("SELECT qty FROM items", "SCAN items"),
    ("SELECT id FROM items WHERE cat = 3", "USING INDEX idx_items_cat"),
    ("SELECT id FROM items WHERE qty > 150", "RANGE"),
    ("SELECT id FROM items WHERE cat IN (1, 2, 5)", "IN-PROBE"),
    (
        "SELECT i.id, c.name FROM items i JOIN cats c ON c.id = i.cat",
        "NESTED LOOP (INNER)",
    ),
    (
        "SELECT i.id, c.name FROM items i "
        "JOIN cats c ON c.name = i.color",  # no index on either side
        "HashJoin",
    ),
    ("SELECT id FROM items WHERE qty % 7 = 0", "FILTER"),
    ("SELECT id, qty * 2 FROM items WHERE color = 'red'", "PROJECT"),
    ("SELECT cat, COUNT(*), SUM(qty) FROM items GROUP BY cat", "AGGREGATE"),
    (
        "SELECT color, AVG(price) FROM items GROUP BY color "
        "HAVING COUNT(*) > 10",
        "AGGREGATE",
    ),
    ("SELECT DISTINCT color FROM items", "DISTINCT"),
    ("SELECT name FROM cats UNION SELECT color FROM items", "UNION"),
    ("SELECT id FROM cats UNION ALL SELECT tier FROM cats", "UNION ALL"),
    ("SELECT id, qty FROM items ORDER BY qty DESC, id", "ORDER BY"),
    ("SELECT id FROM items ORDER BY price DESC LIMIT 7", "TOP-N"),
    ("SELECT id FROM items ORDER BY qty LIMIT 5 OFFSET 3", "TOP-N"),
    ("SELECT id FROM items LIMIT 4", "LIMIT"),
    (
        "SELECT t.cat, t.n FROM (SELECT cat, COUNT(*) AS n FROM items "
        "GROUP BY cat) t WHERE t.n > 5",
        "SUBQUERY AS t",
    ),
    ("SELECT 1 + 2, 'x'", "CONSTANT ROW"),
    (
        "SELECT c.name FROM cats c LEFT JOIN items i "
        "ON i.cat = c.id AND i.qty > 190",
        "NESTED LOOP (LEFT)",
    ),
    (
        "SELECT id FROM items WHERE cat IN "
        "(SELECT id FROM cats WHERE tier >= 2)",
        "FILTER",
    ),
    (
        "SELECT id FROM items i WHERE EXISTS "
        "(SELECT 1 FROM cats c WHERE c.id = i.cat AND c.tier = 1)",
        "FILTER",
    ),
]


@pytest.mark.parametrize(
    "sql,op", SHAPES, ids=[f"shape{i}" for i in range(len(SHAPES))]
)
def test_shape_plans_and_agrees_with_sqlite(engines, sql, op):
    m, s = engines
    plan = [r[0] for r in m.execute("EXPLAIN " + sql).fetchall()]
    assert any(op in line for line in plan), (op, plan)
    mine = normalize(m.execute(sql).fetchall())
    theirs = normalize(s.execute(sql).fetchall())
    if "LIMIT" in sql and "ORDER BY" not in sql:
        # Either engine may keep any N rows here; only the count is pinned.
        assert len(mine) == len(theirs), f"disagreement on: {sql}"
    else:
        assert mine == theirs, f"disagreement on: {sql}"


def test_ordered_results_agree_in_order(engines):
    """Fully-determined orderings must match row for row, not just as bags."""
    m, s = engines
    for sql in (
        "SELECT id, qty FROM items ORDER BY qty, id",
        "SELECT id FROM items ORDER BY price DESC, id LIMIT 11",
        "SELECT id FROM items ORDER BY qty LIMIT 9 OFFSET 4",
        "SELECT cat, COUNT(*) FROM items GROUP BY cat ORDER BY 2 DESC, cat",
    ):
        assert m.execute(sql).fetchall() == s.execute(sql).fetchall(), sql


RULES = (
    "ENABLE_CONSTANT_FOLDING",
    "ENABLE_PUSHDOWN",
    "ENABLE_JOIN_REORDER",
    "ENABLE_TOPN",
)


@pytest.mark.parametrize("rule", RULES)
def test_optimizer_rules_preserve_result_multisets(data, monkeypatch, rule):
    """Property: each rewrite rule is semantics-preserving on the corpus."""
    cats, items = data
    baseline = minidb.connect()
    _populate(baseline, cats, items)
    monkeypatch.setattr(optimizer, rule, False)
    disabled = minidb.connect()
    _populate(disabled, cats, items)
    for sql, _op in SHAPES:
        want = normalize(baseline.execute(sql).fetchall())
        got = normalize(disabled.execute(sql).fetchall())
        assert got == want, f"{rule}=False changes: {sql}"
    baseline.close()
    disabled.close()


def test_constant_folding_elides_true_filter():
    conn = minidb.connect()
    conn.execute("CREATE TABLE t (a INTEGER)")
    conn.execute("INSERT INTO t VALUES (1), (2)")
    plan = [
        r[0]
        for r in conn.execute("EXPLAIN SELECT a FROM t WHERE 1 + 1 = 2").fetchall()
    ]
    assert not any("FILTER" in line for line in plan), plan
    assert normalize(conn.execute("SELECT a FROM t WHERE 1 + 1 = 2").fetchall()) == [
        (1,),
        (2,),
    ]
    conn.close()


def test_streaming_cursor_interleaves_fetch(engines):
    """Two cursors over one connection stream independently."""
    m, _ = engines
    a = m.cursor()
    b = m.cursor()
    a.execute("SELECT id FROM items ORDER BY id")
    b.execute("SELECT id FROM items ORDER BY id DESC")
    pairs = [(a.fetchone()[0], b.fetchone()[0]) for _ in range(3)]
    assert pairs == [(1, N_ITEMS), (2, N_ITEMS - 1), (3, N_ITEMS - 2)]
    a.close()
    b.close()


@pytest.mark.parametrize("batch_size", [1, 7, 4096])
def test_vectorized_corpus_differential(data, monkeypatch, batch_size):
    """The batch engine is byte-identical at every batch size.

    Runs the full operator corpus with vectorization forced on (threshold
    zero) at batch sizes 1 (degenerate), 7 (prime — every final batch is
    ragged) and 4096 (a whole segment per batch), comparing against both
    sqlite3 and the row-at-a-time fallback.
    """
    cats, items = data
    monkeypatch.setattr(optimizer, "VECTOR_MIN_ROWS", 0)
    monkeypatch.setattr(vector, "BATCH_SIZE", batch_size)
    vec = minidb.connect()
    _populate(vec, cats, items)
    sq = sqlite3.connect(":memory:")
    _populate(sq, cats, items)

    # The single-table shapes must actually run batched under a zero
    # threshold — otherwise this test silently re-checks the row engine.
    plans = [
        "\n".join(r[0] for r in vec.execute("EXPLAIN " + sql).fetchall())
        for sql, _op in SHAPES
    ]
    assert sum("[batched]" in p for p in plans) >= 5, plans

    vec_results = {}
    for sql, _op in SHAPES:
        vec_results[sql] = vec.execute(sql).fetchall()
        theirs = normalize(sq.execute(sql).fetchall())
        mine = normalize(vec_results[sql])
        if "LIMIT" in sql and "ORDER BY" not in sql:
            assert len(mine) == len(theirs), f"bs={batch_size}: {sql}"
        else:
            assert mine == theirs, f"bs={batch_size}: {sql}"
    vec.close()
    sq.close()

    # Row-engine fallback produces the same rows (ordered shapes exactly).
    monkeypatch.setattr(optimizer, "ENABLE_VECTORIZATION", False)
    row = minidb.connect()
    _populate(row, cats, items)
    for sql, _op in SHAPES:
        expect = row.execute(sql).fetchall()
        got = vec_results[sql]
        if "ORDER BY" in sql:
            assert got == expect, f"bs={batch_size}: {sql}"
        elif "LIMIT" in sql:
            assert len(got) == len(expect), f"bs={batch_size}: {sql}"
        else:
            assert normalize(got) == normalize(expect), f"bs={batch_size}: {sql}"
    row.close()


class TestPlanCacheInvalidation:
    def test_create_index_replans_cached_statement(self):
        """A cached SeqScan plan must be re-optimized after CREATE INDEX."""
        conn = minidb.connect()
        conn.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        conn.executemany(
            "INSERT INTO t VALUES (?, ?)", [(i, f"v{i}") for i in range(64)]
        )
        sql = "SELECT v FROM t WHERE k = 17"
        assert conn.execute(sql).fetchall() == [("v17",)]
        plan = [r[0] for r in conn.execute("EXPLAIN " + sql).fetchall()]
        assert any("SCAN t" in line for line in plan), plan
        conn.execute("CREATE INDEX idx_t_k ON t (k)")
        # Same SQL text: the statement-cache entry must notice the catalog
        # generation bump, re-plan, and pick the new index.
        assert conn.execute(sql).fetchall() == [("v17",)]
        plan = [r[0] for r in conn.execute("EXPLAIN " + sql).fetchall()]
        assert any("USING INDEX idx_t_k" in line for line in plan), plan
        conn.close()

    def test_drop_index_replans_cached_statement(self):
        conn = minidb.connect()
        conn.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        conn.execute("CREATE INDEX idx_t_k ON t (k)")
        conn.executemany(
            "INSERT INTO t VALUES (?, ?)", [(i, f"v{i}") for i in range(16)]
        )
        sql = "SELECT v FROM t WHERE k = 3"
        assert conn.execute(sql).fetchall() == [("v3",)]
        conn.execute("DROP INDEX idx_t_k")
        # The cached IndexLookup plan would probe a dropped index; the
        # version check must force a SeqScan re-plan instead.
        assert conn.execute(sql).fetchall() == [("v3",)]
        plan = [r[0] for r in conn.execute("EXPLAIN " + sql).fetchall()]
        assert any("SCAN t" in line for line in plan), plan
        conn.close()

    def test_table_growth_across_threshold_replans(self):
        """Hash-join eligibility appears once the build side reaches 4 rows."""
        conn = minidb.connect()
        conn.execute("CREATE TABLE l (a INTEGER)")
        conn.execute("CREATE TABLE r (b INTEGER)")
        conn.execute("INSERT INTO l VALUES (1), (2), (3), (4), (5)")
        conn.execute("INSERT INTO r VALUES (1)")
        sql = "SELECT l.a FROM l JOIN r ON r.b = l.a"
        assert conn.execute(sql).fetchall() == [(1,)]
        conn.executemany("INSERT INTO r VALUES (?)", [(i,) for i in range(2, 9)])
        # r grew 1 -> 8 rows (across the hash-join build minimum); the
        # cached nested-loop plan must be rebuilt, not reused.
        got = normalize(conn.execute(sql).fetchall())
        assert got == [(i,) for i in range(1, 6)]
        plan = [r[0] for r in conn.execute("EXPLAIN " + sql).fetchall()]
        assert any("HashJoin" in line for line in plan), plan
        conn.close()
