"""SQL parser tests: statement shapes and error reporting."""

import pytest

from repro.minidb import ast_nodes as ast
from repro.minidb.errors import SqlSyntaxError
from repro.minidb.parser import parse


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, ast.Select)
        assert len(stmt.items) == 2
        assert stmt.source.name == "t"

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_select_qualified_star(self):
        stmt = parse("SELECT t.* FROM t")
        assert stmt.items[0].expr.table == "t"

    def test_alias_with_and_without_as(self):
        stmt = parse("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_table_alias(self):
        stmt = parse("SELECT r.id FROM resource_item r")
        assert stmt.source.alias == "r"

    def test_where_clause(self):
        stmt = parse("SELECT a FROM t WHERE a > 1 AND b = 'x'")
        assert isinstance(stmt.where, ast.Binary)
        assert stmt.where.op == "AND"

    def test_group_by_having(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_order_by_desc_and_limit_offset(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 3")
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False
        assert stmt.limit.value == 5
        assert stmt.offset.value == 3

    def test_limit_comma_syntax(self):
        stmt = parse("SELECT a FROM t LIMIT 3, 5")
        assert stmt.offset.value == 3
        assert stmt.limit.value == 5

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct is True

    def test_union_and_union_all(self):
        stmt = parse("SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM v")
        assert [op for op, _s in stmt.compounds] == ["UNION", "UNION ALL"]

    def test_join_on(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.id = b.aid LEFT JOIN c ON c.bid = b.id")
        assert isinstance(stmt.source, ast.Join)
        assert stmt.source.kind == "LEFT"
        assert stmt.source.left.kind == "INNER"

    def test_join_requires_on(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM a JOIN b")

    def test_cross_join_comma(self):
        stmt = parse("SELECT * FROM a, b")
        assert stmt.source.kind == "CROSS"

    def test_subquery_in_from(self):
        stmt = parse("SELECT x FROM (SELECT a AS x FROM t) sub")
        assert isinstance(stmt.source, ast.SubqueryRef)
        assert stmt.source.alias == "sub"

    def test_right_join_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM a RIGHT JOIN b ON a.x = b.x")


class TestExpressionParsing:
    def _expr(self, text):
        return parse(f"SELECT {text}").items[0].expr

    def test_precedence_mul_over_add(self):
        e = self._expr("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_precedence_and_over_or(self):
        e = self._expr("a OR b AND c")
        assert e.op == "OR"
        assert e.right.op == "AND"

    def test_not(self):
        e = self._expr("NOT a = 1")
        assert isinstance(e, ast.Unary)
        assert e.op == "NOT"

    def test_between(self):
        e = self._expr("a BETWEEN 1 AND 5")
        assert isinstance(e, ast.Between)

    def test_not_between(self):
        e = self._expr("a NOT BETWEEN 1 AND 5")
        assert e.negated is True

    def test_in_list(self):
        e = self._expr("a IN (1, 2, 3)")
        assert isinstance(e, ast.InList)
        assert len(e.items) == 3

    def test_not_in_subquery(self):
        e = self._expr("a NOT IN (SELECT b FROM t)")
        assert isinstance(e, ast.InSelect)
        assert e.negated is True

    def test_like_with_escape(self):
        e = self._expr("a LIKE 'x%' ESCAPE '!'")
        assert isinstance(e, ast.Like)
        assert e.escape is not None

    def test_is_null_and_is_not_null(self):
        assert self._expr("a IS NULL").negated is False
        assert self._expr("a IS NOT NULL").negated is True

    def test_case_searched(self):
        e = self._expr("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(e, ast.Case)
        assert e.operand is None

    def test_case_simple(self):
        e = self._expr("CASE a WHEN 1 THEN 'one' END")
        assert e.operand is not None

    def test_exists(self):
        e = self._expr("EXISTS (SELECT 1 FROM t)")
        assert isinstance(e, ast.Exists)

    def test_scalar_subquery(self):
        e = self._expr("(SELECT MAX(x) FROM t)")
        assert isinstance(e, ast.ScalarSelect)

    def test_count_star(self):
        e = self._expr("COUNT(*)")
        assert e.star is True

    def test_count_distinct(self):
        e = self._expr("COUNT(DISTINCT a)")
        assert e.distinct is True

    def test_star_only_valid_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT SUM(*)")

    def test_parameters_numbered_left_to_right(self):
        stmt = parse("SELECT ? , ? FROM t WHERE a = ?")
        assert stmt.items[0].expr.index == 0
        assert stmt.items[1].expr.index == 1
        assert stmt.where.right.index == 2

    def test_unary_minus(self):
        e = self._expr("-5")
        assert isinstance(e, ast.Unary)

    def test_concat(self):
        e = self._expr("a || b")
        assert e.op == "||"


class TestDDLParsing:
    def test_create_table_with_constraints(self):
        stmt = parse(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT NOT NULL UNIQUE, "
            "v REAL DEFAULT 1.5, fk INTEGER REFERENCES u(id))"
        )
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null and stmt.columns[1].unique
        assert stmt.columns[2].default.value == 1.5
        assert stmt.columns[3].references == ("u", "id")

    def test_composite_primary_key(self):
        stmt = parse("CREATE TABLE t (a INTEGER, b INTEGER, PRIMARY KEY (a, b))")
        assert stmt.primary_key == ["a", "b"]

    def test_table_level_unique_and_fk(self):
        stmt = parse(
            "CREATE TABLE t (a INTEGER, b INTEGER, UNIQUE (a, b), "
            "FOREIGN KEY (a) REFERENCES u (x))"
        )
        assert stmt.uniques == [["a", "b"]]
        assert stmt.foreign_keys == [(["a"], "u", ["x"])]

    def test_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a INTEGER)").if_not_exists

    def test_create_unique_index(self):
        stmt = parse("CREATE UNIQUE INDEX i ON t (a, b)")
        assert stmt.unique and stmt.columns == ["a", "b"]

    def test_drop_table_if_exists(self):
        stmt = parse("DROP TABLE IF EXISTS t")
        assert stmt.if_exists

    def test_varchar_size(self):
        stmt = parse("CREATE TABLE t (s VARCHAR(80))")
        assert stmt.columns[0].type_name == "VARCHAR(80)"


class TestDMLParsing:
    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_insert_select(self):
        stmt = parse("INSERT INTO t (a) SELECT b FROM u")
        assert stmt.select is not None

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a < 0")
        assert stmt.table == "t"

    def test_transaction_statements(self):
        assert isinstance(parse("BEGIN"), ast.Begin)
        assert isinstance(parse("BEGIN TRANSACTION"), ast.Begin)
        assert isinstance(parse("COMMIT"), ast.Commit)
        assert isinstance(parse("ROLLBACK"), ast.Rollback)

    def test_explain(self):
        stmt = parse("EXPLAIN SELECT 1")
        assert isinstance(stmt, ast.Explain)


class TestParserErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT 1 GARBAGE EXTRA")

    def test_unknown_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("FROBNICATE t")

    def test_missing_from_table(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT a FROM")

    def test_empty_case(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT CASE END")

    def test_semicolon_accepted(self):
        assert isinstance(parse("SELECT 1;"), ast.Select)
