"""Base resource types (Figure 2) and PTdfGen (Section 3.3) tests."""

import os

import pytest

from repro.ptdf.basetypes import (
    BASE_HIERARCHIES,
    BASE_NONHIERARCHICAL,
    all_base_type_paths,
    base_type_records,
)
from repro.ptdf.parser import PTdfParseError
from repro.ptdf.ptdfgen import IndexEntry, PTdfGen, parse_index_file
from repro.ptdf.writer import PTdfWriter


class TestBaseTypes:
    def test_five_hierarchies(self):
        assert len(BASE_HIERARCHIES) == 5
        roots = {h.split("/")[0] for h in BASE_HIERARCHIES}
        assert roots == {"build", "grid", "environment", "execution", "time"}

    def test_eight_nonhierarchical(self):
        assert len(BASE_NONHIERARCHICAL) == 8
        assert "operatingSystem" in BASE_NONHIERARCHICAL
        assert "performanceTool" in BASE_NONHIERARCHICAL

    def test_grid_hierarchy_shape(self):
        assert "grid/machine/partition/node/processor" in BASE_HIERARCHIES

    def test_records_cover_all(self):
        names = {r.name for r in base_type_records()}
        assert names == set(BASE_HIERARCHIES) | set(BASE_NONHIERARCHICAL)

    def test_all_paths_include_prefixes(self):
        paths = all_base_type_paths()
        assert "grid" in paths and "grid/machine" in paths
        assert "execution/process/thread" in paths
        assert len(paths) == len(set(paths))


class _FakeConverter:
    """Counts conversions; understands files containing the magic header."""

    name = "fake"

    def sniff(self, path: str) -> bool:
        with open(path) as fh:
            return fh.read(4) == "FAKE"

    def convert(self, path, entry, writer) -> int:
        writer.add_perf_result(
            entry.execution,
            __import__("repro.ptdf.format", fromlist=["ResourceSet"]).ResourceSet(
                (f"/{entry.execution}",)
            ),
            "fake",
            "m",
            1.0,
            "u",
        )
        return 1


class TestIndexFile:
    def test_parse_entries(self, tmp_path):
        path = str(tmp_path / "study.index")
        with open(path, "w") as fh:
            fh.write("# executions\n")
            fh.write("run1 IRS MPI 64 1 2005-01-01 2005-01-02\n")
            fh.write('run2 IRS "MPI+OpenMP" 32 4 2005-01-03 2005-01-04\n')
        entries = parse_index_file(path)
        assert len(entries) == 2
        assert entries[0] == IndexEntry("run1", "IRS", "MPI", 64, 1, "2005-01-01", "2005-01-02")
        assert entries[1].concurrency_model == "MPI+OpenMP"
        assert entries[1].num_threads == 4

    def test_wrong_arity(self, tmp_path):
        path = str(tmp_path / "bad.index")
        with open(path, "w") as fh:
            fh.write("run1 IRS MPI 64\n")
        with pytest.raises(PTdfParseError):
            parse_index_file(path)

    def test_non_integer_counts(self, tmp_path):
        path = str(tmp_path / "bad.index")
        with open(path, "w") as fh:
            fh.write("run1 IRS MPI many 1 a b\n")
        with pytest.raises(PTdfParseError):
            parse_index_file(path)


class TestPTdfGen:
    @pytest.fixture
    def study_dir(self, tmp_path):
        d = tmp_path / "raw"
        d.mkdir()
        (d / "run1.data").write_text("FAKE payload")
        (d / "run1.other").write_text("FAKE more")
        (d / "run1.noise").write_text("not recognised")
        (d / "run2.data").write_text("FAKE payload")
        (d / "unrelated.txt").write_text("FAKE but wrong exec")
        index = tmp_path / "s.index"
        index.write_text(
            "run1 IRS MPI 4 1 t0 t1\nrun2 IRS MPI 8 1 t0 t1\n"
        )
        return str(d), str(index), str(tmp_path / "out")

    def test_files_matched_by_prefix(self, study_dir):
        raw, index, out = study_dir
        gen = PTdfGen([_FakeConverter()])
        entry = parse_index_file(index)[0]
        files = gen.files_for(raw, entry)
        assert [os.path.basename(f) for f in files] == [
            "run1.data",
            "run1.noise",
            "run1.other",
        ]

    def test_generate_reports(self, study_dir):
        raw, index, out = study_dir
        gen = PTdfGen([_FakeConverter()])
        reports = gen.generate(raw, index, out_dir=out)
        assert len(reports) == 2
        r1 = reports[0]
        assert r1.results == 2  # two recognised files
        assert len(r1.skipped) == 1
        assert r1.output_path and os.path.exists(r1.output_path)

    def test_index_metadata_becomes_attributes(self, study_dir):
        raw, index, out = study_dir
        gen = PTdfGen([_FakeConverter()])
        entry = parse_index_file(index)[0]
        writer, _report = gen.generate_one(raw, entry)
        text = writer.render()
        assert "number of processes" in text
        assert "concurrency model" in text

    def test_generated_ptdf_is_loadable(self, study_dir):
        from repro.core import PTDataStore

        raw, index, out = study_dir
        gen = PTdfGen([_FakeConverter()])
        reports = gen.generate(raw, index, out_dir=out)
        store = PTDataStore()
        for rep in reports:
            stats = store.load_file(rep.output_path)
        assert store.executions() == ["run1", "run2"]


class TestPrefixBoundary:
    def test_r1_does_not_claim_r12_files(self, tmp_path):
        d = tmp_path / "raw"
        d.mkdir()
        (d / "run-r1.data").write_text("FAKE a")
        (d / "run-r12.data").write_text("FAKE b")
        (d / "run-r1_extra.hist").write_text("FAKE c")
        gen = PTdfGen([_FakeConverter()])
        e1 = IndexEntry("run-r1", "A", "MPI", 1, 1, "t", "t")
        e12 = IndexEntry("run-r12", "A", "MPI", 1, 1, "t", "t")
        f1 = [os.path.basename(f) for f in gen.files_for(str(d), e1)]
        f12 = [os.path.basename(f) for f in gen.files_for(str(d), e12)]
        assert f1 == ["run-r1.data", "run-r1_extra.hist"]
        assert f12 == ["run-r12.data"]
