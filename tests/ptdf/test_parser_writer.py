"""PTdf parse/write round-trips, error handling, and hypothesis properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ptdf.format import (
    ApplicationRec,
    ExecutionRec,
    PerfResultRec,
    ResourceAttributeRec,
    ResourceConstraintRec,
    ResourceRec,
    ResourceSet,
    ResourceTypeRec,
    render_record,
)
from repro.ptdf.parser import PTdfParseError, parse_file, parse_string, split_fields
from repro.ptdf.writer import PTdfWriter, write_file, write_string


class TestSplitFields:
    def test_plain(self):
        assert split_fields("a b c") == ["a", "b", "c"]

    def test_quoted_with_spaces(self):
        assert split_fields('Resource "/a b" grid') == ["Resource", "/a b", "grid"]

    def test_escapes(self):
        assert split_fields(r'"x \"y\" z"') == ['x "y" z']

    def test_comment_stripped(self):
        assert split_fields("a b # comment") == ["a", "b"]

    def test_hash_inside_quotes_kept(self):
        assert split_fields('"a # b" c') == ["a # b", "c"]

    def test_blank_line(self):
        assert split_fields("   ") == []

    def test_unterminated_quote(self):
        with pytest.raises(ValueError):
            split_fields('"oops')


class TestParsing:
    def test_full_document(self):
        text = """
# base data
Application IRS
ResourceType grid/machine
Execution run1 IRS
Resource /M grid
Resource /M/frost grid/machine
Resource /run1 execution run1
ResourceAttribute /M/frost "total nodes" 68 string
PerfResult run1 /M/frost,/run1(primary) IRS "CPU time" 12.5 seconds
ResourceConstraint /run1 /M/frost
"""
        records = parse_string(text)
        kinds = [type(r).__name__ for r in records]
        assert kinds == [
            "ApplicationRec",
            "ResourceTypeRec",
            "ExecutionRec",
            "ResourceRec",
            "ResourceRec",
            "ResourceRec",
            "ResourceAttributeRec",
            "PerfResultRec",
            "ResourceConstraintRec",
        ]
        pr = records[-2]
        assert pr.value == 12.5
        assert pr.resource_sets[0].names == ("/M/frost", "/run1")

    def test_unknown_kind(self):
        with pytest.raises(PTdfParseError) as exc:
            parse_string("Bogus field1")
        assert ":1:" in str(exc.value)

    def test_wrong_arity(self):
        with pytest.raises(PTdfParseError):
            parse_string("Application")
        with pytest.raises(PTdfParseError):
            parse_string("Execution onlyone")

    def test_bad_value(self):
        with pytest.raises(PTdfParseError):
            parse_string("PerfResult e /r(primary) tool metric notanumber units")

    def test_error_reports_line_number(self):
        with pytest.raises(PTdfParseError) as exc:
            parse_string("Application ok\n\nBogus x")
        assert ":3:" in str(exc.value)

    def test_resource_optional_execution(self):
        recs = parse_string("Resource /r grid\nResource /e execution run1")
        assert recs[0].execution is None
        assert recs[1].execution == "run1"


RECORD_STRATEGY = st.one_of(
    st.builds(ApplicationRec, st.text(st.characters(categories=["L", "N"]), min_size=1, max_size=12)),
    st.builds(
        ResourceTypeRec,
        st.lists(st.sampled_from(["grid", "machine", "node", "time"]), min_size=1, max_size=3).map(
            "/".join
        ),
    ),
    st.builds(
        ExecutionRec,
        st.text(st.characters(categories=["L", "N"]), min_size=1, max_size=10),
        st.text(st.characters(categories=["L", "N"]), min_size=1, max_size=10),
    ),
    st.builds(
        ResourceAttributeRec,
        st.just("/res"),
        st.text(min_size=1, max_size=16).filter(lambda s: "\n" not in s and "\r" not in s),
        st.text(max_size=16).filter(lambda s: "\n" not in s and "\r" not in s),
        st.sampled_from(["string", "resource"]),
    ),
    st.builds(
        PerfResultRec,
        st.just("exec1"),
        st.tuples(
            st.builds(
                ResourceSet,
                st.lists(
                    st.sampled_from(["/a", "/a/b", "/c/d/e"]), min_size=1, max_size=3, unique=True
                ).map(tuple),
                st.sampled_from(["primary", "parent", "child", "sender", "receiver"]),
            )
        ),
        st.just("tool"),
        st.text(st.characters(categories=["L"]), min_size=1, max_size=10),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.sampled_from(["seconds", "count", ""]),
    ),
    st.builds(ResourceConstraintRec, st.just("/x"), st.just("/y")),
)


class TestRoundTripProperty:
    @settings(max_examples=200, deadline=None)
    @given(records=st.lists(RECORD_STRATEGY, max_size=10))
    def test_render_parse_round_trip(self, records):
        text = write_string(records)
        parsed = parse_string(text)
        assert parsed == records

    @settings(max_examples=50, deadline=None)
    @given(
        name=st.text(min_size=1, max_size=20).filter(
            lambda s: "\n" not in s and "\r" not in s
        )
    )
    def test_awkward_attribute_values_survive(self, name):
        rec = ResourceAttributeRec("/r", name, 'va "l" ue', "string")
        assert parse_string(render_record(rec)) == [rec]


class TestWriter:
    def test_dedup_of_definitions(self):
        w = PTdfWriter()
        w.add_application("IRS")
        w.add_application("IRS")
        w.add_resource("/r", "grid")
        w.add_resource("/r", "grid")
        assert len(w) == 2

    def test_attributes_not_deduped(self):
        w = PTdfWriter()
        w.add_resource("/r", "grid")
        w.add_resource_attribute("/r", "a", "1")
        w.add_resource_attribute("/r", "a", "1")
        assert len(w) == 3

    def test_write_and_parse_file(self, tmp_path):
        w = PTdfWriter()
        w.add_application("IRS")
        w.add_execution("e1", "IRS")
        w.add_resource("/e1", "execution", "e1")
        w.add_perf_result("e1", ResourceSet(("/e1",)), "t", "m", 3.5, "s")
        path = str(tmp_path / "out.ptdf")
        n = w.write(path)
        assert n == 4
        assert len(parse_file(path)) == 4

    def test_perf_result_accepts_single_set(self):
        w = PTdfWriter()
        w.add_perf_result("e", ResourceSet(("/r",)), "t", "m", 1, "s")
        assert w.records[0].resource_sets[0].names == ("/r",)

    def test_write_file_helper(self, tmp_path):
        path = str(tmp_path / "x.ptdf")
        n = write_file([ApplicationRec("A"), ExecutionRec("e", "A")], path)
        assert n == 2
