"""PTdf linter tests over the broken-file corpus in tests/ptdf/corpus/."""

import os

import pytest

from repro.core import PTDataStore
from repro.ptdf.lint import (
    Diagnostic,
    LintContext,
    Linter,
    context_from_store,
    has_errors,
    lint_file,
    lint_files,
    lint_string,
)

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


def corpus_path(name):
    return os.path.join(CORPUS, name)


def codes(diags):
    return [d.code for d in diags]


def by_code(diags, code):
    return [d for d in diags if d.code == code]


# ------------------------------------------------------------------ per-rule


def test_syntax_errors_recovered_per_line():
    diags = lint_file(corpus_path("syntax_errors.ptdf"))
    errors = by_code(diags, "PT000")
    assert [d.line for d in errors] == [2, 3, 4, 5, 6]
    # the valid tail after the broken lines is still checked (and clean)
    assert codes(diags) == ["PT000"] * 5


def test_parse_error_carries_field_position():
    diags = lint_string('Application "unterminated', "x.ptdf")
    assert "column" in diags[0].message and "field" in diags[0].message


def test_dangling_refs():
    diags = lint_file(corpus_path("dangling_refs.ptdf"))
    dangling = by_code(diags, "PT001")
    assert [d.line for d in dangling] == [5, 6, 7, 8]
    assert dangling[0].suggestion == "/frost"  # /forst -> /frost
    assert "/missing" in dangling[3].message


def test_undefined_type_with_suggestion():
    diags = lint_file(corpus_path("undefined_type.ptdf"))
    undefined = by_code(diags, "PT002")
    assert [d.line for d in undefined] == [4, 5]
    assert undefined[0].suggestion == "grid/machine"
    assert undefined[1].suggestion == "cluster"
    # declared extension type (and its prefix) are fine
    assert not any(d.line in (2, 3) for d in diags)


def test_depth_mismatch_and_bad_name():
    diags = lint_file(corpus_path("depth_mismatch.ptdf"))
    assert [d.line for d in by_code(diags, "PT003")] == [1, 2]
    bad_name = by_code(diags, "PT009")
    assert [d.line for d in bad_name] == [3]


def test_duplicates():
    diags = lint_file(corpus_path("duplicates.ptdf"))
    dup = by_code(diags, "PT004")
    assert [d.line for d in dup] == [3, 5, 6]
    # identical re-declaration warns; conflicting type is an error
    assert [d.severity for d in dup] == ["warning", "warning", "error"]
    assert [d.line for d in by_code(diags, "PT005")] == [8]
    assert by_code(diags, "PT005")[0].severity == "warning"


def test_unknown_execution_and_application():
    diags = lint_file(corpus_path("unknown_execution.ptdf"))
    assert by_code(diags, "PT007")[0].line == 1  # Linpack never declared
    unknown = by_code(diags, "PT006")
    assert [d.line for d in unknown] == [3, 4]
    assert unknown[1].suggestion == "lin-2p"


def test_unit_mismatch():
    diags = lint_file(corpus_path("unit_mismatch.ptdf"))
    mismatch = by_code(diags, "PT008")
    assert [d.line for d in mismatch] == [5]
    assert mismatch[0].severity == "warning"
    assert "'ms'" in mismatch[0].message and "'seconds'" in mismatch[0].message


def test_clean_file():
    assert lint_file(corpus_path("clean.ptdf")) == []


def test_use_before_declare_points_at_later_line():
    # The loaders resolve ids while streaming, so forward references are
    # load failures; the linter points at the later declaration.
    doc = (
        'PerfResult lin-2p /lin-2p(primary) timer "Wall time" 1 seconds\n'
        "Execution lin-2p Linpack\n"
        "Resource /lin-2p execution lin-2p\n"
    )
    diags = lint_string(doc, "fwd.ptdf")
    assert {d.code for d in diags if d.severity == "error"} == {"PT001", "PT006"}
    sequential = [d for d in diags if "declared later at line" in d.message]
    assert [d.line for d in sequential] == [1, 1]
    assert "line 2" in sequential[0].message or "line 2" in sequential[1].message


def test_quickstart_example_is_lint_clean():
    path = os.path.join(
        os.path.dirname(__file__), "..", "..", "examples", "data",
        "quickstart.ptdf",
    )
    assert lint_file(os.path.normpath(path)) == []


# ----------------------------------------------------------- context threading


def test_multi_file_load_shares_declarations():
    # clean.ptdf declares lin-2p etc.; a second document may reference them
    follow_up = 'PerfResult lin-2p /lin-2p(primary) timer "Wall time" 1 seconds'
    linter = Linter()
    assert linter.lint_file(corpus_path("clean.ptdf")) == []
    assert linter.lint_string(follow_up, "follow_up.ptdf") == []
    # ...but a fresh linter rejects the same document
    fresh = lint_string(follow_up, "follow_up.ptdf")
    assert has_errors(fresh)
    assert {"PT001", "PT006"} <= set(codes(fresh))


def test_datastore_load_lint_gate():
    from repro.ptdf.lint import PTdfLintError

    store = PTDataStore()
    with pytest.raises(PTdfLintError) as exc_info:
        store.load_file(corpus_path("dangling_refs.ptdf"), lint=True)
    assert any(d.code == "PT001" for d in exc_info.value.diagnostics)
    assert store.load_file(corpus_path("clean.ptdf"), lint=True).results == 1
    # the store's declarations seed later lints: a follow-up document may
    # reference what the first load created
    follow_up = 'PerfResult lin-2p /lin-2p(primary) timer "Wall time" 1 seconds'
    assert store.load_string(follow_up, lint=True).results == 1
    store.close()


def test_context_from_store_seeds_declarations():
    store = PTDataStore()
    store.load_file(corpus_path("clean.ptdf"))
    context = context_from_store(store)
    follow_up = 'PerfResult lin-2p /lin-2p(primary) timer "Wall time" 1 seconds'
    assert lint_string(follow_up, context=context) == []
    store.close()


def test_lint_files_threads_one_context():
    diags = lint_files(
        [corpus_path("clean.ptdf"), corpus_path("unit_mismatch.ptdf")]
    )
    # unit_mismatch.ptdf re-declares lin-2p -> no dangling refs, only its
    # own findings (and the metric-units map spans files)
    assert all(d.source.endswith("unit_mismatch.ptdf") for d in diags)


def test_diagnostic_str_format():
    d = Diagnostic("f.ptdf", 3, "error", "PT001", "boom", suggestion="/frost")
    assert str(d) == "f.ptdf:3: error PT001: boom; did you mean '/frost'?"


def test_base_types_known_by_default():
    context = LintContext()
    assert "grid/machine/partition/node/processor" in context.types
    assert "application" in context.types


# ------------------------------------------------------------------ CLI wiring


def test_cli_lint_exit_codes(capsys):
    from repro.cli import pt_lint_main

    assert pt_lint_main([corpus_path("clean.ptdf")]) == 0
    assert pt_lint_main([corpus_path("dangling_refs.ptdf")]) == 1
    # warnings only -> 0, unless --strict
    assert pt_lint_main([corpus_path("unit_mismatch.ptdf")]) == 0
    assert pt_lint_main(["--strict", corpus_path("unit_mismatch.ptdf")]) == 1
    out = capsys.readouterr().out
    assert "PT008" in out


def test_cli_load_refuses_bad_files_without_force(capsys):
    from repro.cli import main

    assert main(["load", corpus_path("dangling_refs.ptdf")]) == 1
    err = capsys.readouterr().err
    assert "PT001" in err and "--force" in err


def test_cli_load_accepts_clean_files(capsys):
    from repro.cli import main

    assert main(["load", corpus_path("clean.ptdf")]) == 0
    assert "1 results" in capsys.readouterr().out
