"""PTdf record model tests: names, types, resource sets, quoting."""

import pytest

from repro.ptdf.format import (
    ApplicationRec,
    ExecutionRec,
    PerfResultRec,
    ResourceAttributeRec,
    ResourceConstraintRec,
    ResourceRec,
    ResourceSet,
    ResourceTypeRec,
    base_name,
    parent_name,
    parse_resource_set_field,
    quote_field,
    render_record,
    split_name,
    type_of_depth,
)


class TestNames:
    def test_split_name(self):
        assert split_name("/SingleMachineFrost/Frost/batch/frost121/p0") == [
            "SingleMachineFrost",
            "Frost",
            "batch",
            "frost121",
            "p0",
        ]

    def test_split_requires_leading_slash(self):
        with pytest.raises(ValueError):
            split_name("Frost/batch")

    def test_split_rejects_empty(self):
        with pytest.raises(ValueError):
            split_name("/")

    def test_parent_name(self):
        assert parent_name("/A/B/C") == "/A/B"
        assert parent_name("/A") is None

    def test_base_name(self):
        assert base_name("/A/B/batch") == "batch"

    def test_type_of_depth(self):
        t = "grid/machine/partition/node/processor"
        assert type_of_depth(t, 1) == "grid"
        assert type_of_depth(t, 3) == "grid/machine/partition"
        assert type_of_depth(t, 5) == t
        with pytest.raises(ValueError):
            type_of_depth(t, 6)
        with pytest.raises(ValueError):
            type_of_depth(t, 0)


class TestResourceSet:
    def test_valid_focus_types(self):
        for ft in ("primary", "parent", "child", "sender", "receiver"):
            ResourceSet(("/a",), ft)

    def test_invalid_focus_type(self):
        with pytest.raises(ValueError):
            ResourceSet(("/a",), "bogus")

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            ResourceSet((), "primary")

    def test_render(self):
        rs = ResourceSet(("/a", "/b"), "sender")
        assert rs.render() == "/a,/b(sender)"

    def test_parse_field_multi_set(self):
        sets = parse_resource_set_field("/a,/b(primary):/c(sender)")
        assert len(sets) == 2
        assert sets[0].names == ("/a", "/b")
        assert sets[1].set_type == "sender"

    def test_parse_field_default_type(self):
        sets = parse_resource_set_field("/a,/b")
        assert sets[0].set_type == "primary"

    def test_parse_round_trip(self):
        original = (
            ResourceSet(("/x/y", "/z"), "primary"),
            ResourceSet(("/w",), "parent"),
        )
        text = ":".join(s.render() for s in original)
        assert parse_resource_set_field(text) == original


class TestQuoting:
    def test_plain_field_unquoted(self):
        assert quote_field("/a/b") == "/a/b"

    def test_space_quoted(self):
        assert quote_field("clock MHz") == '"clock MHz"'

    def test_quotes_escaped(self):
        assert quote_field('say "hi"') == '"say \\"hi\\""'

    def test_empty_field_quoted(self):
        assert quote_field("") == '""'


class TestRecordRendering:
    def test_application(self):
        assert render_record(ApplicationRec("IRS")) == "Application IRS"

    def test_resource_type(self):
        assert render_record(ResourceTypeRec("grid/machine")) == "ResourceType grid/machine"

    def test_execution(self):
        assert render_record(ExecutionRec("run1", "IRS")) == "Execution run1 IRS"

    def test_resource_with_and_without_exec(self):
        assert render_record(ResourceRec("/r", "grid")) == "Resource /r grid"
        assert (
            render_record(ResourceRec("/e/p0", "execution/process", "e"))
            == "Resource /e/p0 execution/process e"
        )

    def test_resource_attribute(self):
        rec = ResourceAttributeRec("/r", "clock MHz", "375", "string")
        assert render_record(rec) == 'ResourceAttribute /r "clock MHz" 375 string'

    def test_attribute_type_validated(self):
        with pytest.raises(ValueError):
            ResourceAttributeRec("/r", "a", "v", "integer")

    def test_perf_result(self):
        rec = PerfResultRec(
            "run1", (ResourceSet(("/r",)),), "mpiP", "MPI time", 1.5, "seconds"
        )
        assert render_record(rec) == 'PerfResult run1 /r(primary) mpiP "MPI time" 1.5 seconds'

    def test_resource_constraint(self):
        rec = ResourceConstraintRec("/p8", "/n16")
        assert render_record(rec) == "ResourceConstraint /p8 /n16"
