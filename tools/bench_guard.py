"""Benchmark regression guard: compare a fresh bench report to a baseline.

``python -m tools.bench_guard baseline.json candidate.json`` exits 1 when
a guarded metric in the candidate regresses more than the allowed
fraction from the committed baseline.  CI copies the committed
``BENCH_scalability.json`` aside, re-runs the scalability benchmark, then
runs this guard so a PR cannot silently regress the bulk-load or
query-execution paths.

Guarded keys are dotted paths into the report.  Direction is inferred
from the key name: keys ending in ``_seconds`` are latencies (lower is
better, the guard fails when the candidate rises above
``base * (1 + threshold)``); everything else is a rate (higher is
better, failing below ``base * (1 - threshold)``).  A key missing from
the *baseline* is skipped (new metrics need one PR to seed a baseline);
a key missing from the *candidate* fails (the bench stopped reporting
something it should).  Whole-section absences are reported as such
("missing baseline section ..." / "missing section ... in candidate")
so a dropped benchmark reads differently from a renamed leaf metric.
Unreadable or malformed report files exit 2 with a clear error instead
of a traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

#: dotted report paths guarded by default; ``*_seconds`` keys are
#: latencies (lower = better), the rest are rates (higher = better)
DEFAULT_KEYS = (
    "load.bulk_rows_per_s",
    "query_path.stream_full_drain_seconds",
    "query_path.stream_first_row_seconds",
    "vectorized.drain_seconds",
    "vectorized.first_row_seconds",
    "observability.profiler_enabled_drain_seconds",
    "concurrency.throughput_ops_per_s",
    "concurrency.p95_seconds",
    "sharded.parallel_rows_per_s",
    "sharded.prfilter_p95_seconds",
)

DEFAULT_THRESHOLD = 0.10


def _lookup(report: dict, dotted: str) -> Optional[Any]:
    node: Any = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _section(dotted: str) -> str:
    """The top-level report section a dotted key lives in."""
    return dotted.split(".", 1)[0]


def _has_section(report: dict, dotted: str) -> bool:
    return isinstance(report, dict) and _section(dotted) in report


def _lower_is_better(key: str) -> bool:
    return key.rsplit(".", 1)[-1].endswith("_seconds")


def compare(
    baseline: dict,
    candidate: dict,
    keys: tuple[str, ...] = DEFAULT_KEYS,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Problems found comparing *candidate* to *baseline* (empty = pass)."""
    problems = []
    for key in keys:
        base = _lookup(baseline, key)
        cand = _lookup(candidate, key)
        if base is None:
            # Distinguish a whole section never seeded (fine: new metrics
            # need one PR to land a baseline) from a present section that
            # lost one leaf — both skip, but say which happened.
            if not _has_section(baseline, key):
                print(
                    f"bench_guard: missing baseline section "
                    f"{_section(key)!r} for {key}; skipping (new sections "
                    f"need one PR to seed a baseline)"
                )
            else:
                print(f"bench_guard: {key}: no baseline value, skipping")
            continue
        if cand is None:
            if not _has_section(candidate, key):
                problems.append(
                    f"{key}: missing section {_section(key)!r} in candidate "
                    f"report — did the benchmark that produces it fail to run?"
                )
            else:
                problems.append(f"{key}: missing from candidate report")
            continue
        if _lower_is_better(key):
            bound = base * (1.0 + threshold)
            ok = cand <= bound
            verdict = "OK" if ok else "REGRESSION"
            print(
                f"bench_guard: {key}: baseline={base:.6g} candidate={cand:.6g} "
                f"ceiling={bound:.6g} [{verdict}]"
            )
            if not ok:
                problems.append(
                    f"{key}: {cand:.6g} is more than {threshold:.0%} above "
                    f"baseline {base:.6g}"
                )
        else:
            bound = base * (1.0 - threshold)
            ok = cand >= bound
            verdict = "OK" if ok else "REGRESSION"
            print(
                f"bench_guard: {key}: baseline={base:.6g} candidate={cand:.6g} "
                f"floor={bound:.6g} [{verdict}]"
            )
            if not ok:
                problems.append(
                    f"{key}: {cand:.6g} is more than {threshold:.0%} below "
                    f"baseline {base:.6g}"
                )
    return problems


class _ReportError(Exception):
    """A report file could not be read or parsed."""


def _load_report(path: str, role: str) -> dict:
    """Load one report, translating failures into actionable messages."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            report = json.load(fh)
    except OSError as exc:
        raise _ReportError(f"cannot read {role} report {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise _ReportError(
            f"{role} report {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(report, dict):
        raise _ReportError(
            f"{role} report {path!r} must be a JSON object of sections, "
            f"got {type(report).__name__}"
        )
    return report


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m tools.bench_guard")
    parser.add_argument("baseline", help="committed baseline report (JSON)")
    parser.add_argument("candidate", help="freshly generated report (JSON)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional regression before failing (default: 0.10)",
    )
    parser.add_argument(
        "--key",
        action="append",
        dest="keys",
        help=f"dotted metric path to guard (default: {', '.join(DEFAULT_KEYS)})",
    )
    args = parser.parse_args(argv)
    try:
        baseline = _load_report(args.baseline, "baseline")
        candidate = _load_report(args.candidate, "candidate")
    except _ReportError as exc:
        print(f"bench_guard: ERROR: {exc}", file=sys.stderr)
        return 2
    keys = tuple(args.keys) if args.keys else DEFAULT_KEYS
    problems = compare(baseline, candidate, keys, args.threshold)
    for problem in problems:
        print(f"bench_guard: FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
