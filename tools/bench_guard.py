"""Benchmark regression guard: compare a fresh bench report to a baseline.

``python -m tools.bench_guard baseline.json candidate.json`` exits 1 when
a guarded metric in the candidate regresses more than the allowed
fraction from the committed baseline.  CI copies the committed
``BENCH_scalability.json`` aside, re-runs the scalability benchmark, then
runs this guard so a PR cannot silently regress the bulk-load or
query-execution paths.

Guarded keys are dotted paths into the report.  Direction is inferred
from the key name: keys ending in ``_seconds`` are latencies (lower is
better, the guard fails when the candidate rises above
``base * (1 + threshold)``); everything else is a rate (higher is
better, failing below ``base * (1 - threshold)``).  A key missing from
the *baseline* is skipped (new metrics need one PR to seed a baseline);
a key missing from the *candidate* fails (the bench stopped reporting
something it should).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Optional

#: dotted report paths guarded by default; ``*_seconds`` keys are
#: latencies (lower = better), the rest are rates (higher = better)
DEFAULT_KEYS = (
    "load.bulk_rows_per_s",
    "query_path.stream_full_drain_seconds",
    "query_path.stream_first_row_seconds",
    "vectorized.drain_seconds",
    "vectorized.first_row_seconds",
)

DEFAULT_THRESHOLD = 0.10


def _lookup(report: dict, dotted: str) -> Optional[Any]:
    node: Any = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _lower_is_better(key: str) -> bool:
    return key.rsplit(".", 1)[-1].endswith("_seconds")


def compare(
    baseline: dict,
    candidate: dict,
    keys: tuple[str, ...] = DEFAULT_KEYS,
    threshold: float = DEFAULT_THRESHOLD,
) -> list[str]:
    """Problems found comparing *candidate* to *baseline* (empty = pass)."""
    problems = []
    for key in keys:
        base = _lookup(baseline, key)
        cand = _lookup(candidate, key)
        if base is None:
            print(f"bench_guard: {key}: no baseline value, skipping")
            continue
        if cand is None:
            problems.append(f"{key}: missing from candidate report")
            continue
        if _lower_is_better(key):
            bound = base * (1.0 + threshold)
            ok = cand <= bound
            verdict = "OK" if ok else "REGRESSION"
            print(
                f"bench_guard: {key}: baseline={base:.6g} candidate={cand:.6g} "
                f"ceiling={bound:.6g} [{verdict}]"
            )
            if not ok:
                problems.append(
                    f"{key}: {cand:.6g} is more than {threshold:.0%} above "
                    f"baseline {base:.6g}"
                )
        else:
            bound = base * (1.0 - threshold)
            ok = cand >= bound
            verdict = "OK" if ok else "REGRESSION"
            print(
                f"bench_guard: {key}: baseline={base:.6g} candidate={cand:.6g} "
                f"floor={bound:.6g} [{verdict}]"
            )
            if not ok:
                problems.append(
                    f"{key}: {cand:.6g} is more than {threshold:.0%} below "
                    f"baseline {base:.6g}"
                )
    return problems


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m tools.bench_guard")
    parser.add_argument("baseline", help="committed baseline report (JSON)")
    parser.add_argument("candidate", help="freshly generated report (JSON)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional regression before failing (default: 0.10)",
    )
    parser.add_argument(
        "--key",
        action="append",
        dest="keys",
        help=f"dotted metric path to guard (default: {', '.join(DEFAULT_KEYS)})",
    )
    args = parser.parse_args(argv)
    with open(args.baseline, "r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    with open(args.candidate, "r", encoding="utf-8") as fh:
        candidate = json.load(fh)
    keys = tuple(args.keys) if args.keys else DEFAULT_KEYS
    problems = compare(baseline, candidate, keys, args.threshold)
    for problem in problems:
        print(f"bench_guard: FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
