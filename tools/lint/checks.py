"""AST + dataflow checkers behind ``python -m tools.lint`` (stdlib only).

PTL001/PTL002/PTL007 run on the reaching-definitions engine in
:mod:`tools.lint.dataflow`; the remaining checks are syntactic.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from .dataflow import FunctionFacts, analyze, escaping_names

#: call-attribute names whose first argument is treated as SQL text
SQL_SINKS = frozenset(
    {
        "execute",
        "executemany",
        "executescript",
        "query",
        "query_one",
        "query_all",
        "insert",
        "scalar",
    }
)

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: batch-protocol method names scanned by PTL006
BATCH_METHODS = frozenset({"next_batch", "_produce_batches"})

#: classes whose batch methods legitimately loop per row (PTL006 allowlist):
#: VecScan falls back to per-row live lookups when the table mutates
#: mid-scan; VecDistinct probes its dedup set one row at a time by nature.
#: Additions must be justified in docs/static_analysis.md.
PTL006_ALLOWED_CLASSES = frozenset({"VecScan", "VecDistinct"})

#: PTL007 — attribute names that are shared mutable engine state, by the
#: kind of object that owns them.  Writing them outside the owning module
#: bypasses WAL logging, undo bookkeeping and data_version bumps.
PTL007_TABLE_ATTRS = frozenset(
    {"rows", "next_rowid", "next_auto", "data_version", "_column_store"}
)
PTL007_CATALOG_ATTRS = frozenset({"tables", "indexes", "version"})
PTL007_STORE_ATTRS = frozenset({"version"})

#: modules that own the engine state and may mutate it directly: storage.py
#: defines Table/Catalog/ColumnStore, wal.py restores them during replay
#: and checkpoint.  Additions must be justified in docs/static_analysis.md.
PTL007_ALLOWED_MODULES = frozenset({"storage.py", "wal.py"})

#: method names that mutate their receiver in place
_PTL007_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
    }
)

#: PTL008 — Database mutators that take the writing transaction.  Since the
#: concurrent engine landed, these acquire the table's writer lock and do
#: the copy-on-write detach through the transaction passed as ``txn=``;
#: calling them without one silently falls back to the embedded implicit
#: transaction, which takes no locks and is wrong in shared mode.
PTL008_MUTATORS = frozenset(
    {
        "insert_row",
        "insert_rows",
        "update_row",
        "delete_row",
        "create_table",
        "drop_table",
        "create_index",
        "drop_index",
    }
)

#: modules that own the transaction plumbing and may use the implicit
#: fallback: storage.py defines the mutators (and resolves the implicit
#: transaction), wal.py replays already-committed records outside any
#: transaction.  Additions must be justified in docs/static_analysis.md.
PTL008_ALLOWED_MODULES = frozenset({"storage.py", "wal.py"})

#: PTL009 — fact tables hash-partitioned across shard databases (plus
#: the closure/focus replicas each shard keeps).  SQL naming one of
#: these against a single backend silently sees one shard's fraction of
#: the rows on a sharded deployment.
PTL009_SHARDED_TABLES = frozenset(
    {
        "performance_result",
        "performance_result_vector",
        "performance_result_has_focus",
        "focus_has_resource",
        "resource_has_ancestor",
    }
)

#: modules that own shard routing or the single-store fallback and may
#: address fact tables directly: schema.py defines the DDL, shards.py
#: and bulkload.py route and replicate rows, datastore.py is the serial
#: store the catalog reuses, query.py builds the per-shard evaluation
#: indexes and the serial probes, comparison.py joins fact rows inside
#: one serial store.  Additions must be justified in
#: docs/static_analysis.md.
PTL009_ALLOWED_MODULES = frozenset(
    {
        "schema.py",
        "shards.py",
        "bulkload.py",
        "datastore.py",
        "query.py",
        "comparison.py",
    }
)

_PTL009_RE = re.compile(
    r"\b(" + "|".join(sorted(PTL009_SHARDED_TABLES)) + r")\b"
)


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _noqa_lines(source: str) -> dict[int, Optional[set[str]]]:
    """Line -> suppressed codes (None = all) for ``# noqa`` comments."""
    out: dict[int, Optional[set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(text)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return out


def _is_constant_name(node: ast.expr) -> bool:
    """True for UPPER_CASE names/attributes — module or class constants."""
    if isinstance(node, ast.Name):
        return node.id.isupper()
    if isinstance(node, ast.Attribute):
        return node.attr.isupper()
    return False


def _interpolated_sql(node: ast.expr) -> Optional[str]:
    """Why *node* is interpolation-built SQL, or None when it is safe."""
    if isinstance(node, ast.JoinedStr):
        for part in node.values:
            if isinstance(part, ast.FormattedValue) and not _is_constant_name(
                part.value
            ):
                return f"f-string interpolates {ast.unparse(part.value)!r}"
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        for side in (node.left, node.right):
            reason = _interpolated_sql(side)
            if reason is not None:
                return reason
        # `"..." % x` and `"..." + x` with a non-literal, non-constant side
        for side in (node.left, node.right):
            if not isinstance(side, (ast.Constant, ast.JoinedStr, ast.BinOp)):
                if not _is_constant_name(side):
                    return f"SQL concatenated with {ast.unparse(side)!r}"
        return None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "format":
            return "SQL built with str.format()"
    return None


def _literal_sql_text(node: ast.expr) -> str:
    """Best-effort constant rendering of a SQL expression.

    Interpolated pieces (f-string placeholders, non-literal concatenation
    operands) drop out — table names written literally anywhere in the
    statement still surface for PTL009.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        return "".join(
            part.value
            for part in node.values
            if isinstance(part, ast.Constant) and isinstance(part.value, str)
        )
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        return _literal_sql_text(node.left) + " " + _literal_sql_text(node.right)
    return ""


def _walk_no_nested(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: list[Violation] = []
        self._class_stack: list[str] = []
        #: dataflow facts for the innermost enclosing scope (module,
        #: class body, or function) — consulted by the flow-aware checks
        self._facts_stack: list[FunctionFacts] = []

    @property
    def _facts(self) -> Optional[FunctionFacts]:
        return self._facts_stack[-1] if self._facts_stack else None

    def visit_Module(self, node: ast.Module) -> None:
        self._facts_stack.append(analyze(node))
        self.generic_visit(node)
        self._facts_stack.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self._facts_stack.append(analyze(node))
        self.generic_visit(node)
        self._facts_stack.pop()
        self._class_stack.pop()

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.violations.append(Violation(self.path, line, code, message))

    # -- PTL001 / PTL004 / PTL007 ---------------------------------------------

    def _sql_taint(self, arg: ast.expr) -> Optional[str]:
        """Why *arg* carries interpolation-built SQL, or None.

        Checks the expression itself first; a bare name is then resolved
        through its reaching definitions, so SQL built in a variable and
        executed later is caught at the sink.
        """
        reason = _interpolated_sql(arg)
        if reason is not None:
            return reason
        facts = self._facts
        if isinstance(arg, ast.Name) and facts is not None:
            for origin in facts.origins(arg):
                reason = _interpolated_sql(origin)
                if reason is not None:
                    line = getattr(origin, "lineno", "?")
                    return f"{reason} (via {arg.id!r} assigned at line {line})"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in SQL_SINKS
            and node.args
        ):
            reason = self._sql_taint(node.args[0])
            if reason is not None:
                self._add(
                    node,
                    "PTL001",
                    f"string-interpolated SQL passed to .{node.func.attr}(): "
                    f"{reason}; use ? placeholders (or interpolate only "
                    f"UPPERCASE constants)",
                )
            self._check_sharded_table(node)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "time"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            self._add(
                node,
                "PTL004",
                "direct time.time() call; use repro.obs.clock.now() for "
                "durations or repro.obs.clock.wall_clock() for timestamps "
                "so instrumentation stays on one clock",
            )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _PTL007_MUTATORS
            and isinstance(node.func.value, ast.Attribute)
        ):
            # e.g. table.rows.clear(), db.catalog.indexes.pop(name)
            self._check_state_write(node, node.func.value, node.func.attr)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in PTL008_MUTATORS
            and self._is_database(node.func.value)
            and not any(k.arg == "txn" for k in node.keywords)
        ):
            self._add(
                node,
                "PTL008",
                f"Database.{node.func.attr}() called without txn=: the "
                f"implicit embedded transaction takes no writer locks and "
                f"no copy-on-write detach; pass the session transaction "
                f"(or add the module to the PTL008 allowlist with a "
                f"justification in docs/static_analysis.md)",
            )
        self.generic_visit(node)

    def _check_sharded_table(self, node: ast.Call) -> None:
        """PTL009: SQL addressing a hash-partitioned fact table.

        The statement text is recovered literally (following a bare name
        one hop through its reaching definitions); any sharded table
        named in it is flagged — on a sharded store a single backend
        holds one partition, so the query silently misses rows.
        """
        arg = node.args[0]
        text = _literal_sql_text(arg)
        if not text and isinstance(arg, ast.Name) and self._facts is not None:
            for origin in self._facts.origins(arg):
                text = _literal_sql_text(origin)
                if text:
                    break
        match = _PTL009_RE.search(text)
        if match is not None:
            self._add(
                node,
                "PTL009",
                f"SQL addresses sharded table {match.group(1)!r} directly: "
                f"each shard backend holds one hash partition of it, so "
                f"this statement silently misses rows on a sharded store; "
                f"go through ShardedPTDataStore (table_rows/count_rows) or "
                f"the scatter-gather query engine (or add the module to "
                f"the PTL009 allowlist with a justification in "
                f"docs/static_analysis.md)",
            )

    def _is_database(self, expr: ast.expr, depth: int = 4) -> bool:
        """Heuristic: does *expr* evaluate to the engine ``Database``?

        True for any ``*.db`` attribute (the conventional handle on
        connections, engines and executors), a direct ``Database(...)``
        constructor call, or a bare name whose reaching definitions
        resolve to either.
        """
        if depth <= 0:
            return False
        if isinstance(expr, ast.Attribute) and expr.attr == "db":
            return True
        if isinstance(expr, ast.Name) and expr.id in ("db", "database"):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if name == "Database":
                return True
        facts = self._facts
        if isinstance(expr, ast.Name) and facts is not None:
            for origin in facts.origins(expr):
                if self._is_database(origin, depth - 1):
                    return True
        return False

    # -- PTL007 ---------------------------------------------------------------

    def _receiver_kind(self, expr: ast.expr, depth: int = 4) -> Optional[str]:
        """Classify what engine object *expr* evaluates to.

        Returns ``"table"`` for ``db.table(...)`` / ``db.tables[...]``,
        ``"catalog"`` for ``*.catalog``, ``"store"`` for
        ``*.column_store()`` — resolving bare names through their
        reaching definitions.
        """
        if depth <= 0:
            return None
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            if expr.func.attr == "table":
                return "table"
            if expr.func.attr == "column_store":
                return "store"
        if isinstance(expr, ast.Subscript):
            base = expr.value
            if isinstance(base, ast.Attribute) and base.attr == "tables":
                return "table"
        if isinstance(expr, ast.Attribute) and expr.attr == "catalog":
            return "catalog"
        facts = self._facts
        if isinstance(expr, ast.Name) and facts is not None:
            for origin in facts.origins(expr):
                kind = self._receiver_kind(origin, depth - 1)
                if kind is not None:
                    return kind
        return None

    def _check_state_write(
        self, site: ast.AST, attr_node: ast.Attribute, how: str
    ) -> None:
        """Flag *site* when *attr_node* is protected engine state."""
        kind = self._receiver_kind(attr_node.value)
        if kind == "table" and attr_node.attr in PTL007_TABLE_ATTRS:
            owner = "Table"
        elif kind == "catalog" and attr_node.attr in PTL007_CATALOG_ATTRS:
            owner = "Catalog"
        elif kind == "store" and attr_node.attr in PTL007_STORE_ATTRS:
            owner = "ColumnStore"
        else:
            return
        self._add(
            site,
            "PTL007",
            f"shared engine state {owner}.{attr_node.attr} mutated via "
            f"{how!r} outside its owning module; route the write through "
            f"the storage helpers so WAL logging, undo and data_version "
            f"stay consistent",
        )

    def _check_target_write(self, site: ast.AST, target: ast.expr, how: str) -> None:
        if isinstance(target, ast.Attribute):
            self._check_state_write(site, target, how)
        elif isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Attribute
        ):
            # e.g. table.rows[rowid] = row
            self._check_state_write(site, target.value, how)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_target_write(site, element, how)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target_write(node, target, "assignment")
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target_write(node, node.target, "augmented assignment")
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target_write(node, target, "del")
        self.generic_visit(node)

    # -- PTL003 ---------------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                node,
                "PTL003",
                "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                "catch a concrete exception class",
            )
        self.generic_visit(node)

    # -- PTL005 ---------------------------------------------------------------

    def _check_fetchall_iter(self, iter_node: ast.expr) -> None:
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr == "fetchall"
        ):
            self._add(
                iter_node,
                "PTL005",
                "iterating directly over .fetchall() materializes the whole "
                "result set; engine cursors stream — iterate the cursor "
                "itself or use Backend.stream()",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_fetchall_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_fetchall_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(
        self,
        node: Union[ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp],
    ) -> None:
        for gen in node.generators:
            self._check_fetchall_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- PTL002 ---------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        facts = analyze(node)
        self._check_cursors(node, facts)
        if isinstance(node, ast.FunctionDef):
            self._check_batch_loops(node)
        self._facts_stack.append(facts)
        self.generic_visit(node)
        self._facts_stack.pop()

    def _check_cursors(self, func: ast.AST, facts: FunctionFacts) -> None:
        """Flag ``x = conn.cursor()`` whose alias group never escapes.

        Opens are collected without descending into nested defs (those get
        their own visit, avoiding double reports); escapes are collected
        from the whole body so a closure closing the cursor counts.  A
        name escapes when it is closed, managed by a ``with`` item, at an
        ownership-transfer position of a return/yield (whole value,
        container element, call argument or receiver — *not* a subscript
        index or arithmetic operand), stored into an attribute/subscript,
        or passed as a direct call argument.  Closing *any* alias of the
        cursor (``c2 = cur; c2.close()``) counts for the whole group.
        """
        opened: dict[str, ast.AST] = {}
        escaped: set[str] = set()

        for node in _walk_no_nested(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "cursor"
                ):
                    opened[target.id] = node

        for node in ast.walk(func):
            if isinstance(node, ast.withitem):
                # `with conn.cursor() as cur` or `with closing(cur)`
                escaped.update(escaping_names(node.context_expr))
                if isinstance(node.optional_vars, ast.Name):
                    escaped.add(node.optional_vars.id)
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "close"
                    and isinstance(node.func.value, ast.Name)
                ):
                    escaped.add(node.func.value.id)
                # ownership transfer: cursor passed to a helper whole
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Name):
                        escaped.add(arg.id)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                escaped.update(escaping_names(node.value))
            elif isinstance(node, ast.Assign):
                # stored into an attribute, subscript or container: the
                # object outlives the function
                if any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ):
                    escaped.update(escaping_names(node.value))

        for name, site in opened.items():
            if facts.alias_group(name).isdisjoint(escaped):
                self._add(
                    site,
                    "PTL002",
                    f"cursor {name!r} is never closed, returned or used in a "
                    f"'with' block; wrap it in contextlib.closing() or call "
                    f".close()",
                )

    # -- PTL006 ---------------------------------------------------------------

    def _check_batch_loops(self, func: ast.FunctionDef) -> None:
        """Flag a loop nested inside another loop in a batch-protocol method.

        ``next_batch``/``_produce_batches`` implementations should move one
        batch per outer iteration via vectorized kernels; an inner For/While
        is a per-row Python loop defeating the point of batching.  Classes
        in PTL006_ALLOWED_CLASSES are exempt (justified per-row fallbacks).
        """
        if func.name not in BATCH_METHODS:
            return
        if self._class_stack and self._class_stack[-1] in PTL006_ALLOWED_CLASSES:
            return

        def scan(node: ast.AST, in_loop: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, (ast.For, ast.While)):
                    if in_loop:
                        self._add(
                            child,
                            "PTL006",
                            f"per-row loop inside {func.name}(): evaluate the "
                            f"batch with a vectorized kernel, or add the class "
                            f"to the PTL006 allowlist with a justification in "
                            f"docs/static_analysis.md",
                        )
                    scan(child, True)
                else:
                    scan(child, in_loop)

        scan(func, False)


def _is_test_path(path: str) -> bool:
    """Paths allowlisted for PTL005/PTL007 — tests materialize results and
    poke engine internals legitimately."""
    parts = os.path.normpath(path).split(os.sep)
    if any(p in ("tests", "test") for p in parts[:-1]):
        return True
    base = parts[-1]
    return base.startswith("test_") or base == "conftest.py"


def check_file(path: str) -> list[Violation]:
    """Run every checker over one Python file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "PTL000", f"syntax error: {exc.msg}")]
    checker = _Checker(path)
    checker.visit(tree)
    noqa = _noqa_lines(source)
    is_test = _is_test_path(path)
    owns_engine_state = os.path.basename(path) in PTL007_ALLOWED_MODULES
    owns_txn_plumbing = os.path.basename(path) in PTL008_ALLOWED_MODULES
    owns_shard_routing = os.path.basename(path) in PTL009_ALLOWED_MODULES
    out = []
    for v in checker.violations:
        if v.code == "PTL005" and is_test:
            continue
        if v.code == "PTL007" and (is_test or owns_engine_state):
            continue
        if v.code == "PTL008" and (is_test or owns_txn_plumbing):
            continue
        if v.code == "PTL009" and (is_test or owns_shard_routing):
            continue
        codes = noqa.get(v.line, False)
        if codes is False:
            out.append(v)
        elif codes is not None and v.code not in codes:
            out.append(v)
    return sorted(out, key=lambda v: (v.path, v.line, v.code))


def _python_files(paths: Iterable[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = [d for d in dirs if d not in ("__pycache__", ".git")]
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def check_paths(paths: Iterable[str]) -> list[Violation]:
    """Run every checker over files/directories in *paths*."""
    out: list[Violation] = []
    for path in _python_files(paths):
        out.extend(check_file(path))
    return out
