"""AST checkers behind ``python -m tools.lint`` (stdlib only)."""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

#: call-attribute names whose first argument is treated as SQL text
SQL_SINKS = frozenset(
    {
        "execute",
        "executemany",
        "executescript",
        "query",
        "query_one",
        "query_all",
        "insert",
        "scalar",
    }
)

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9, ]+))?", re.IGNORECASE)

#: batch-protocol method names scanned by PTL006
BATCH_METHODS = frozenset({"next_batch", "_produce_batches"})

#: classes whose batch methods legitimately loop per row (PTL006 allowlist):
#: VecScan falls back to per-row live lookups when the table mutates
#: mid-scan; VecDistinct probes its dedup set one row at a time by nature.
#: Additions must be justified in docs/static_analysis.md.
PTL006_ALLOWED_CLASSES = frozenset({"VecScan", "VecDistinct"})


@dataclass(frozen=True)
class Violation:
    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _noqa_lines(source: str) -> dict[int, Optional[set[str]]]:
    """Line -> suppressed codes (None = all) for ``# noqa`` comments."""
    out: dict[int, Optional[set[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(text)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return out


def _is_constant_name(node: ast.expr) -> bool:
    """True for UPPER_CASE names/attributes — module or class constants."""
    if isinstance(node, ast.Name):
        return node.id.isupper()
    if isinstance(node, ast.Attribute):
        return node.attr.isupper()
    return False


def _interpolated_sql(node: ast.expr) -> Optional[str]:
    """Why *node* is interpolation-built SQL, or None when it is safe."""
    if isinstance(node, ast.JoinedStr):
        for part in node.values:
            if isinstance(part, ast.FormattedValue) and not _is_constant_name(
                part.value
            ):
                return f"f-string interpolates {ast.unparse(part.value)!r}"
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        for side in (node.left, node.right):
            reason = _interpolated_sql(side)
            if reason is not None:
                return reason
        # `"..." % x` and `"..." + x` with a non-literal, non-constant side
        for side in (node.left, node.right):
            if not isinstance(side, (ast.Constant, ast.JoinedStr, ast.BinOp)):
                if not _is_constant_name(side):
                    return f"SQL concatenated with {ast.unparse(side)!r}"
        return None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr == "format":
            return "SQL built with str.format()"
    return None


def _walk_no_nested(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: list[Violation] = []
        self._class_stack: list[str] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _add(self, node: ast.AST, code: str, message: str) -> None:
        self.violations.append(Violation(self.path, node.lineno, code, message))

    # -- PTL001 / PTL004 ------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in SQL_SINKS
            and node.args
        ):
            reason = _interpolated_sql(node.args[0])
            if reason is not None:
                self._add(
                    node,
                    "PTL001",
                    f"string-interpolated SQL passed to .{node.func.attr}(): "
                    f"{reason}; use ? placeholders (or interpolate only "
                    f"UPPERCASE constants)",
                )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "time"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"
        ):
            self._add(
                node,
                "PTL004",
                "direct time.time() call; use repro.obs.clock.now() for "
                "durations or repro.obs.clock.wall_clock() for timestamps "
                "so instrumentation stays on one clock",
            )
        self.generic_visit(node)

    # -- PTL003 ---------------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                node,
                "PTL003",
                "bare 'except:' swallows KeyboardInterrupt/SystemExit; "
                "catch a concrete exception class",
            )
        self.generic_visit(node)

    # -- PTL005 ---------------------------------------------------------------

    def _check_fetchall_iter(self, iter_node: ast.expr) -> None:
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr == "fetchall"
        ):
            self._add(
                iter_node,
                "PTL005",
                "iterating directly over .fetchall() materializes the whole "
                "result set; engine cursors stream — iterate the cursor "
                "itself or use Backend.stream()",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_fetchall_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_fetchall_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_fetchall_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- PTL002 ---------------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_cursors(node)
        self._check_batch_loops(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_cursors(node)
        self.generic_visit(node)

    def _check_cursors(self, func: ast.AST) -> None:
        """Flag ``x = conn.cursor()`` never closed/returned/escaped.

        Opens are collected without descending into nested defs (those get
        their own visit, avoiding double reports); closes are collected
        from the whole body so a closure closing the cursor counts.
        """
        opened: dict[str, ast.AST] = {}
        closed: set[str] = set()

        for node in _walk_no_nested(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Attribute)
                    and node.value.func.attr == "cursor"
                ):
                    opened[target.id] = node

        for node in ast.walk(func):
            if isinstance(node, ast.withitem):
                # `with conn.cursor() as cur` or `with closing(cur)`
                if isinstance(node.context_expr, ast.Call):
                    closed.update(
                        n.id
                        for n in ast.walk(node.context_expr)
                        if isinstance(n, ast.Name)
                    )
                if isinstance(node.optional_vars, ast.Name):
                    closed.add(node.optional_vars.id)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr == "close" and isinstance(
                    node.func.value, ast.Name
                ):
                    closed.add(node.func.value.id)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None:
                    closed.update(
                        n.id for n in ast.walk(value) if isinstance(n, ast.Name)
                    )

        for name, site in opened.items():
            if name not in closed:
                self._add(
                    site,
                    "PTL002",
                    f"cursor {name!r} is never closed, returned or used in a "
                    f"'with' block; wrap it in contextlib.closing() or call "
                    f".close()",
                )

    # -- PTL006 ---------------------------------------------------------------

    def _check_batch_loops(self, func: ast.FunctionDef) -> None:
        """Flag a loop nested inside another loop in a batch-protocol method.

        ``next_batch``/``_produce_batches`` implementations should move one
        batch per outer iteration via vectorized kernels; an inner For/While
        is a per-row Python loop defeating the point of batching.  Classes
        in PTL006_ALLOWED_CLASSES are exempt (justified per-row fallbacks).
        """
        if func.name not in BATCH_METHODS:
            return
        if self._class_stack and self._class_stack[-1] in PTL006_ALLOWED_CLASSES:
            return

        def scan(node: ast.AST, in_loop: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                if isinstance(child, (ast.For, ast.While)):
                    if in_loop:
                        self._add(
                            child,
                            "PTL006",
                            f"per-row loop inside {func.name}(): evaluate the "
                            f"batch with a vectorized kernel, or add the class "
                            f"to the PTL006 allowlist with a justification in "
                            f"docs/static_analysis.md",
                        )
                    scan(child, True)
                else:
                    scan(child, in_loop)

        scan(func, False)


def _is_test_path(path: str) -> bool:
    """Paths allowlisted for PTL005 — tests routinely materialize results."""
    parts = os.path.normpath(path).split(os.sep)
    if any(p in ("tests", "test") for p in parts[:-1]):
        return True
    base = parts[-1]
    return base.startswith("test_") or base == "conftest.py"


def check_file(path: str) -> list[Violation]:
    """Run every checker over one Python file."""
    with open(path, "r", encoding="utf-8") as fh:
        source = fh.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Violation(path, exc.lineno or 0, "PTL000", f"syntax error: {exc.msg}")]
    checker = _Checker(path)
    checker.visit(tree)
    noqa = _noqa_lines(source)
    allow_fetchall = _is_test_path(path)
    out = []
    for v in checker.violations:
        if v.code == "PTL005" and allow_fetchall:
            continue
        codes = noqa.get(v.line, False)
        if codes is False:
            out.append(v)
        elif codes is not None and v.code not in codes:
            out.append(v)
    return sorted(out, key=lambda v: (v.path, v.line, v.code))


def _python_files(paths: Iterable[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = [d for d in dirs if d not in ("__pycache__", ".git")]
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def check_paths(paths: Iterable[str]) -> list[Violation]:
    """Run every checker over files/directories in *paths*."""
    out: list[Violation] = []
    for path in _python_files(paths):
        out.extend(check_file(path))
    return out
