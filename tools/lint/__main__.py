"""``python -m tools.lint`` — run the repo lint harness.

Exit 0 when clean, 1 on violations (or, with ``--require-external``, when
ruff/mypy are not installed — CI insists on the full harness; a bare
checkout just skips them).
"""

from __future__ import annotations

import argparse
import importlib.util
import subprocess
import sys

from .checks import check_paths

DEFAULT_PATHS = ("src/repro", "tools")

#: modules held to strict typing (``mypy`` section of pyproject.toml)
MYPY_TARGETS = (
    "src/repro/minidb/sqltypes.py",
    "src/repro/minidb/analyzer.py",
    "src/repro/minidb/verifier.py",
    "src/repro/ptdf/lint.py",
    "tools/lint/checks.py",
    "tools/lint/dataflow.py",
)


def _have(module: str) -> bool:
    return importlib.util.find_spec(module) is not None


def _run_external(name: str, cmd: list[str], require: bool) -> int:
    if not _have(name):
        if require:
            print(f"tools.lint: {name} is required but not installed", file=sys.stderr)
            return 1
        print(f"tools.lint: {name} not installed, skipping", file=sys.stderr)
        return 0
    proc = subprocess.run([sys.executable, "-m", *cmd])
    return 1 if proc.returncode else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m tools.lint")
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help=f"files/directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--require-external", action="store_true",
        help="fail when ruff/mypy are missing instead of skipping them",
    )
    parser.add_argument(
        "--no-external", action="store_true",
        help="run only the PTL checkers",
    )
    args = parser.parse_args(argv)

    failures = 0
    violations = check_paths(args.paths)
    for violation in violations:
        print(violation)
    if violations:
        failures += 1
    print(
        f"tools.lint: {len(violations)} violation(s) from the PTL checkers",
        file=sys.stderr,
    )

    if not args.no_external:
        failures += _run_external(
            "ruff", ["ruff", "check", "src", "tools", "tests"],
            args.require_external,
        )
        failures += _run_external(
            "mypy", ["mypy", *MYPY_TARGETS], args.require_external
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
