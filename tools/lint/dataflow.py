"""A small intraprocedural dataflow engine for the repo lint harness.

The first generation of PTL checks was purely syntactic: PTL001 only
saw SQL interpolated *inline* at the call site, and PTL002 treated any
name mentioned in a ``return`` as an escaped cursor.  Both need the same
missing ingredient — *reaching definitions*: which assignments can flow
into a name at a given use site.

:func:`analyze` interprets one function (or module) body in source
order, tracking an abstract environment ``name -> {Definition}``.
Branches merge by union, loop bodies run through a two-pass fixpoint
(enough for a may-reach analysis over a lattice of sets), and nested
function bodies are opaque (each gets its own analysis).  The result is
a :class:`FunctionFacts`:

* ``reaching(name_node)`` — the definitions reaching a ``Name`` load;
* ``origins(expr)`` — the *value expressions* a name may hold,
  resolved transitively through simple ``x = y`` copies (flow-sensitive:
  a rebound name only reports the definitions live at the use site);
* ``alias_group(name)`` — names connected by ``x = y`` copies anywhere
  in the function (flow-insensitive union-find, deliberately
  over-approximate so "closed via an alias" is never a false positive).

Everything is stdlib ``ast``; the engine is deliberately small — it
exists to kill specific false positives/negatives in PTL001/PTL002 and
to power PTL007's shared-state write tracing, not to be a general
abstract interpreter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

__all__ = ["Definition", "FunctionFacts", "analyze"]

Env = Dict[str, FrozenSet["Definition"]]


@dataclass(frozen=True)
class Definition:
    """One definition site of a name.

    ``value`` is the assigned expression for simple ``name = expr``
    bindings and None when the bound value is opaque (loop targets,
    tuple unpacking, ``except ... as``, parameters, imports).
    """

    name: str
    value: Optional[ast.expr]
    node: ast.AST

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class FunctionFacts:
    """Dataflow facts for one function (or module) body."""

    #: id(Name-load-node) -> definitions reaching that use
    use_defs: Dict[int, FrozenSet[Definition]] = field(default_factory=dict)
    #: every definition interpreted in this scope
    definitions: List[Definition] = field(default_factory=list)
    #: union-find parent pointers over name-to-name copies
    _alias_parent: Dict[str, str] = field(default_factory=dict)

    # -- alias union-find ------------------------------------------------------

    def _find(self, name: str) -> str:
        parent = self._alias_parent.setdefault(name, name)
        if parent != name:
            root = self._find(parent)
            self._alias_parent[name] = root
            return root
        return name

    def _union(self, a: str, b: str) -> None:
        ra, rb = self._find(a), self._find(b)
        if ra != rb:
            self._alias_parent[ra] = rb

    def alias_group(self, name: str) -> Set[str]:
        """Names connected to *name* through simple copy assignments."""
        root = self._find(name)
        return {n for n in self._alias_parent if self._find(n) == root} | {name}

    # -- reaching definitions --------------------------------------------------

    def reaching(self, name_node: ast.Name) -> FrozenSet[Definition]:
        """Definitions that may reach this ``Name`` load (empty when the
        name is a parameter, global, closure variable, or unknown)."""
        return self.use_defs.get(id(name_node), frozenset())

    def origins(self, expr: ast.expr, _depth: int = 8) -> List[ast.expr]:
        """The value expressions *expr* may evaluate to.

        A non-``Name`` expression is its own origin.  A ``Name`` resolves
        through its reaching definitions, following simple ``x = y``
        copies transitively (each hop uses the environment captured when
        the copy executed, so the resolution stays flow-sensitive).
        Opaque definitions (``value is None``) contribute nothing — a
        name with only opaque definitions has no known origins.
        """
        if not isinstance(expr, ast.Name):
            return [expr]
        out: List[ast.expr] = []
        seen: Set[int] = set()

        def resolve(node: ast.Name, depth: int) -> None:
            if depth <= 0:
                return
            for definition in self.use_defs.get(id(node), frozenset()):
                if id(definition) in seen:
                    continue
                seen.add(id(definition))
                value = definition.value
                if value is None:
                    continue
                if isinstance(value, ast.Name):
                    resolve(value, depth - 1)
                else:
                    out.append(value)

        resolve(expr, _depth)
        return out


def _merge(*envs: Env) -> Env:
    out: Env = {}
    for env in envs:
        for name, defs in env.items():
            have = out.get(name)
            out[name] = defs if have is None else have | defs
    return out


class _Interpreter:
    """In-order abstract interpretation of one scope's statements."""

    def __init__(self, facts: FunctionFacts) -> None:
        self.facts = facts

    # -- expression side: record uses -----------------------------------------

    def visit_expr(self, expr: Optional[ast.expr], env: Env) -> None:
        if expr is None:
            return
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                self.facts.use_defs[id(node)] = env.get(node.id, frozenset())

    # -- binding helpers -------------------------------------------------------

    def _bind(
        self, env: Env, name: str, value: Optional[ast.expr], node: ast.AST
    ) -> None:
        definition = Definition(name, value, node)
        self.facts.definitions.append(definition)
        env[name] = frozenset({definition})

    def _bind_target(
        self, env: Env, target: ast.expr, value: Optional[ast.expr], node: ast.AST
    ) -> None:
        if isinstance(target, ast.Name):
            if isinstance(value, ast.Name):
                self.facts._union(target.id, value.id)
            self._bind(env, target.id, value, node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                inner = element.value if isinstance(element, ast.Starred) else element
                self._bind_target(env, inner, None, node)
        elif isinstance(target, ast.Starred):
            self._bind_target(env, target.value, None, node)
        else:
            # Attribute / Subscript stores: the base object is *used*.
            self.visit_expr(target, env)

    # -- statement interpretation ----------------------------------------------

    def exec_block(self, stmts: List[ast.stmt], env: Env) -> Env:
        for stmt in stmts:
            env = self.exec_stmt(stmt, env)
        return env

    def exec_stmt(self, stmt: ast.stmt, env: Env) -> Env:
        if isinstance(stmt, ast.Assign):
            self.visit_expr(stmt.value, env)
            env = dict(env)
            for target in stmt.targets:
                self._bind_target(env, target, stmt.value, stmt)
            return env
        if isinstance(stmt, ast.AnnAssign):
            self.visit_expr(stmt.value, env)
            env = dict(env)
            self._bind_target(env, stmt.target, stmt.value, stmt)
            return env
        if isinstance(stmt, ast.AugAssign):
            self.visit_expr(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                # x += y reads then rebinds x; the result is opaque.
                self.facts.use_defs[id(stmt.target)] = env.get(
                    stmt.target.id, frozenset()
                )
                env = dict(env)
                self._bind(env, stmt.target.id, None, stmt)
            else:
                self.visit_expr(stmt.target, env)
            return env
        if isinstance(stmt, ast.If):
            self.visit_expr(stmt.test, env)
            return _merge(
                self.exec_block(stmt.body, dict(env)),
                self.exec_block(stmt.orelse, dict(env)),
            )
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.visit_expr(stmt.iter, env)
            loop_env = dict(env)
            self._bind_target(loop_env, stmt.target, None, stmt)
            once = self.exec_block(stmt.body, loop_env)
            merged = _merge(env, once)
            loop_env = dict(merged)
            self._bind_target(loop_env, stmt.target, None, stmt)
            twice = self.exec_block(stmt.body, loop_env)
            merged = _merge(merged, twice)
            return self.exec_block(stmt.orelse, merged)
        if isinstance(stmt, ast.While):
            self.visit_expr(stmt.test, env)
            once = self.exec_block(stmt.body, dict(env))
            merged = _merge(env, once)
            twice = self.exec_block(stmt.body, dict(merged))
            merged = _merge(merged, twice)
            return self.exec_block(stmt.orelse, merged)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            env = dict(env)
            for item in stmt.items:
                self.visit_expr(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind_target(
                        env, item.optional_vars, item.context_expr, stmt
                    )
            return self.exec_block(stmt.body, env)
        if isinstance(stmt, ast.Try):
            body_env = self.exec_block(stmt.body, dict(env))
            # An exception can interrupt the body anywhere: handlers see
            # the merge of entry and full-body states.
            at_handler = _merge(env, body_env)
            branch_envs = [self.exec_block(stmt.orelse, dict(body_env))]
            for handler in stmt.handlers:
                handler_env = dict(at_handler)
                if handler.name:
                    self._bind(handler_env, handler.name, None, handler)
                branch_envs.append(self.exec_block(handler.body, handler_env))
            merged = _merge(*branch_envs)
            return self.exec_block(stmt.finalbody, merged)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # Opaque: nested scopes get their own analysis.
            env = dict(env)
            self._bind(env, stmt.name, None, stmt)
            return env
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            env = dict(env)
            for alias in stmt.names:
                bound = (alias.asname or alias.name).split(".", 1)[0]
                self._bind(env, bound, None, stmt)
            return env
        if isinstance(stmt, (ast.Global, ast.Nonlocal)):
            env = dict(env)
            for name in stmt.names:
                env[name] = frozenset()
            return env
        if isinstance(stmt, ast.Delete):
            env = dict(env)
            for target in stmt.targets:
                self.visit_expr(target, env)
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
            return env
        if isinstance(stmt, ast.Return):
            self.visit_expr(stmt.value, env)
            return env
        if isinstance(stmt, ast.Expr):
            self.visit_expr(stmt.value, env)
            return env
        if isinstance(stmt, ast.Assert):
            self.visit_expr(stmt.test, env)
            self.visit_expr(stmt.msg, env)
            return env
        if isinstance(stmt, ast.Raise):
            self.visit_expr(stmt.exc, env)
            self.visit_expr(stmt.cause, env)
            return env
        # Pass, Break, Continue — nothing to do.
        return env


def analyze(scope: ast.AST) -> FunctionFacts:
    """Dataflow facts for a function, module, or class body.

    Parameters of a function bind opaque definitions (their values are
    unknown); nested function/class bodies are not descended into.
    """
    facts = FunctionFacts()
    interp = _Interpreter(facts)
    env: Env = {}
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        every = (
            list(args.posonlyargs)
            + list(args.args)
            + ([args.vararg] if args.vararg else [])
            + list(args.kwonlyargs)
            + ([args.kwarg] if args.kwarg else [])
        )
        for arg in every:
            interp._bind(env, arg.arg, None, arg)
    body = getattr(scope, "body", None)
    if isinstance(body, list):
        interp.exec_block(body, env)
    return facts


def escaping_names(value: Optional[ast.expr]) -> Iterator[str]:
    """Names in *value* at ownership-transfer positions.

    Used by PTL002: a cursor whose name is returned/yielded whole, packed
    into a container, passed to a call, or reached through an attribute
    chain escapes the function's responsibility.  Names buried in
    arithmetic, comparisons, or subscript *indexes* do not — ``return
    rows[cur_count]`` hands nothing over.
    """
    if value is None:
        return
    if isinstance(value, ast.Name):
        yield value.id
    elif isinstance(value, ast.Attribute):
        yield from escaping_names(value.value)
    elif isinstance(value, ast.Call):
        yield from escaping_names(value.func)
        for arg in value.args:
            yield from escaping_names(arg)
        for keyword in value.keywords:
            yield from escaping_names(keyword.value)
    elif isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        for element in value.elts:
            yield from escaping_names(element)
    elif isinstance(value, ast.Dict):
        for v in value.values:
            yield from escaping_names(v)
    elif isinstance(value, ast.Starred):
        yield from escaping_names(value.value)
    elif isinstance(value, ast.IfExp):
        yield from escaping_names(value.body)
        yield from escaping_names(value.orelse)
    elif isinstance(value, (ast.Await, ast.YieldFrom, ast.Yield)):
        yield from escaping_names(getattr(value, "value", None))
