"""Repo lint harness: AST + dataflow checks plus external tools.

``python -m tools.lint`` runs seven custom checkers over the source
tree (stdlib ``ast`` only, so it works in a bare checkout).  PTL001,
PTL002 and PTL007 are flow-aware: they resolve names through the
reaching-definitions engine in :mod:`tools.lint.dataflow`.

========  ==========================================================
code      meaning
========  ==========================================================
PTL001    SQL passed to an execute/query call is built by string
          interpolation from a non-constant value — inline or via a
          variable traced to the sink (injection-prone; interpolating
          UPPERCASE module/class constants is allowed, audited sites
          carry ``# noqa: PTL001`` on the sink line)
PTL002    a DB-API cursor is opened but neither closed, returned,
          yielded, stored, nor managed by a ``with`` block — through
          any alias of the cursor variable
PTL003    bare ``except:`` in engine code (swallows KeyboardInterrupt
          and hides real faults)
PTL004    direct ``time.time()`` call instead of ``repro.obs.clock``
PTL005    iterating directly over ``.fetchall()`` (tests exempt)
PTL006    per-row loop nested in a batch-protocol method
PTL007    shared mutable engine state (Table/Catalog/ColumnStore
          fields) written outside the owning modules
          (``storage.py``/``wal.py``; tests exempt)
========  ==========================================================

It then runs ``ruff`` and ``mypy`` when they are importable; pass
``--require-external`` (CI does) to fail when they are missing instead
of skipping them.  The full catalogue with rationale lives in
``docs/static_analysis.md``.
"""

from .checks import Violation, check_file, check_paths
from .dataflow import FunctionFacts, analyze

__all__ = ["Violation", "check_file", "check_paths", "FunctionFacts", "analyze"]
