"""Repo lint harness: project-specific AST checks plus external tools.

``python -m tools.lint`` runs three custom checkers over the source tree
(stdlib ``ast`` only, so it works in a bare checkout):

========  ==========================================================
code      meaning
========  ==========================================================
PTL001    SQL passed to an execute/query call is built by string
          interpolation from a non-constant value (injection-prone;
          interpolating UPPERCASE module/class constants is allowed,
          audited sites carry ``# noqa: PTL001``)
PTL002    a DB-API cursor is opened but neither closed, returned,
          yielded, stored, nor managed by a ``with`` block
PTL003    bare ``except:`` in engine code (swallows KeyboardInterrupt
          and hides real faults)
========  ==========================================================

It then runs ``ruff`` and ``mypy`` when they are importable; pass
``--require-external`` (CI does) to fail when they are missing instead
of skipping them.
"""

from .checks import Violation, check_file, check_paths

__all__ = ["Violation", "check_file", "check_paths"]
