"""Figure 6 — the PTdataFormat interface.

The artifact is a sample PTdf document exercising all seven record kinds;
the bench measures parse and render throughput at Purple-study volume.
"""

import os

from repro.ptdf.parser import parse_file, parse_string
from repro.ptdf.writer import write_string

SAMPLE = """\
Application IRS
ResourceType grid/machine/partition/node/processor
Execution irs-001 IRS
Resource /MCR/mcr/batch/n1/p0 grid/machine/partition/node/processor
Resource /irs-001 execution irs-001
ResourceAttribute /MCR/mcr/batch/n1/p0 "clock MHz" 2400 string
PerfResult irs-001 /irs-001,/MCR/mcr/batch/n1/p0(primary) IRS "CPU time" 12.5 seconds
ResourceConstraint /irs-001 /MCR/mcr/batch/n1/p0
"""


class TestFig6PTdf:
    def test_roundtrip_identity(self, benchmark, write_report):
        records = benchmark(parse_string, SAMPLE)
        rendered = write_string(records)
        assert parse_string(rendered) == records
        write_report("fig6_ptdf_sample", rendered)

    def test_parse_throughput(self, benchmark, purple_report):
        """Parse one real generated PTdf file (~1.6k lines)."""
        path = sorted(
            os.path.join(purple_report.ptdf_dir, f)
            for f in os.listdir(purple_report.ptdf_dir)
            if f.endswith(".ptdf")
        )[0]
        records = benchmark(parse_file, path)
        assert len(records) > 1000
        # every record kind survives re-rendering
        assert parse_string(write_string(records)) == records

    def test_render_throughput(self, benchmark, purple_report):
        path = sorted(
            os.path.join(purple_report.ptdf_dir, f)
            for f in os.listdir(purple_report.ptdf_dir)
            if f.endswith(".ptdf")
        )[0]
        records = parse_file(path)
        text = benchmark(write_string, records)
        assert text.count("\n") == len(records)
