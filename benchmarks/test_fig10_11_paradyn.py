"""Figures 10 and 11 + Section 4.3 — Paradyn hierarchies and their
integration into the PerfTrack type system.

Artifacts: the Paradyn-side hierarchy (Fig. 10) as generated, and the
post-mapping PerfTrack type census (Fig. 11).  The bench times the full
per-execution conversion (resources + all histograms), the step the paper
flags as "an area of focus for performance optimization".
"""

from repro.core import PTDataStore


class TestFig10ParadynHierarchy:
    def test_exported_hierarchy(self, benchmark, paradyn_report, write_report):
        store = paradyn_report.store
        benchmark(store.resources_of_type, "time/interval")
        lines = ["Paradyn resources mapped into PerfTrack:"]
        for type_path in (
            "build",
            "build/module",
            "build/module/function",
            "environment/module/function",
            "execution/process",
            "execution/process/thread",
            "syncObject/syncClass",
            "syncObject/syncClass/syncInstance",
            "time",
            "time/interval",
        ):
            n = len(store.resources_of_type(type_path))
            lines.append(f"  {type_path:<38} {n:>8}")
        write_report("fig10_11_paradyn_mapping", "\n".join(lines))
        assert len(store.resources_of_type("syncObject/syncClass/syncInstance")) > 0
        assert len(store.resources_of_type("time/interval")) > 100


class TestSection43Scale:
    def test_per_execution_stats(self, benchmark, paradyn_report, write_report):
        store = paradyn_report.store
        benchmark(store.execution_details, paradyn_report.executions[0])
        lines = [
            "paper: ~17,000 resources, 8 metrics, ~25,000 results per execution",
            "measured (bench scale):",
        ]
        counts = []
        for execution in paradyn_report.executions:
            d = store.execution_details(execution)
            counts.append(d["results"])
            lines.append(
                f"  {execution}: results={d['results']} metrics={len(d['metrics'])}"
            )
        lines.append(
            f"  resources/exec (PTdf) = {paradyn_report.table1.resources_per_exec:.0f}"
        )
        write_report("section43_paradyn_scale", "\n".join(lines))
        # 8 metrics, exactly as the paper states.
        d = store.execution_details(paradyn_report.executions[0])
        assert len(d["metrics"]) == 8
        # Result counts vary between executions (dynamic instrumentation).
        assert len(set(counts)) > 1

    def test_ingest_performance(self, benchmark, paradyn_report):
        """Load one Paradyn execution's PTdf from scratch (the slow path)."""
        import os

        path = sorted(
            os.path.join(paradyn_report.ptdf_dir, f)
            for f in os.listdir(paradyn_report.ptdf_dir)
            if f.endswith(".ptdf")
        )[0]

        def ingest():
            store = PTDataStore()
            return store.load_file(path)

        stats = benchmark.pedantic(ingest, rounds=3, iterations=1)
        assert stats.results > 1000
