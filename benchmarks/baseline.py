"""Shared writer for the committed benchmark baseline.

``BENCH_scalability.json`` is kept in two places — the harness results
directory and the committed repo-root copy ``tools/bench_guard.py``
compares against — and every producer (the pytest benches and the
load-generator harness) must update both through :func:`merge_baseline`
so the copies can never drift apart.
"""

from __future__ import annotations

import json
import os

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def merge_baseline(results_dir: str, updates: dict) -> None:
    """Merge *updates* (top-level sections) into both baseline copies.

    Section dicts merge one level deep, so two benchmark classes can each
    contribute keys to the same section (e.g. ``observability``)
    regardless of run order.

    Each copy is written to a temp file in the same directory and moved
    into place with :func:`os.replace`, so a crash (or two racing bench
    processes) can never leave a torn half-written JSON file behind —
    readers always see either the old complete report or the new one.
    """
    for path in (
        os.path.join(results_dir, "BENCH_scalability.json"),
        os.path.join(_REPO_ROOT, "BENCH_scalability.json"),
    ):
        report = {"benchmark": "scalability"}
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                report = json.load(fh)
        for key, value in updates.items():
            if isinstance(value, dict) and isinstance(report.get(key), dict):
                report[key].update(value)
            else:
                report[key] = value
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # only on a failed write
                os.unlink(tmp)
