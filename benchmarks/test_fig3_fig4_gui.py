"""Figures 3 and 4 — the selection dialog and the main-window table.

Fig. 3: building a pr-filter shows, per family, how many results it
matches alone and how many the whole filter matches — benched as the
count-update operation the GUI performs on every click.

Fig. 4: retrieval plus the two-step Add Columns over free resources.
"""

from repro.core import Expansion
from repro.core.query import QueryEngine
from repro.gui.mainwindow import MainWindow
from repro.gui.selection import SelectionDialog


class TestFig3SelectionCounts:
    def test_count_updates(self, benchmark, purple_report, write_report):
        store = purple_report.store

        def build_filter():
            dialog = SelectionDialog(store)
            p1 = dialog.add_name("/LLNL/MCR", Expansion.DESCENDANTS)
            p2 = dialog.add_name("/IRS/src/matsolve", Expansion.NONE)
            return dialog, p1, p2, dialog.total_count()

        dialog, p1, p2, total = benchmark(build_filter)
        lines = [
            "Selected Parameters            Relatives  matches-alone",
            f"  name=/LLNL/MCR                 D        {p1.count}",
            f"  name=/IRS/src/matsolve         N        {p2.count}",
            f"whole pr-filter match count: {total}",
        ]
        write_report("fig3_selection_counts", "\n".join(lines))
        assert 0 < total <= min(p1.count, p2.count)

    def test_relatives_flag_changes_counts(self, benchmark, purple_report):
        dialog = SelectionDialog(purple_report.store)
        dialog.add_name("/LLNL/MCR", Expansion.NONE)
        none_count = dialog.selected[0].count
        updated = benchmark(dialog.set_relatives, 0, Expansion.DESCENDANTS)
        assert none_count > 0  # machine-level contexts exist on IRS results
        assert updated.count >= none_count  # D adds descendants' matches

    def test_lazy_menus(self, benchmark, purple_report):
        store = purple_report.store

        def browse():
            dialog = SelectionDialog(store)
            dialog.choose_type("grid/machine")
            names = dialog.resource_names()
            kids = dialog.children_of_name("/LLNL/MCR")
            return names, kids

        names, kids = benchmark(browse)
        assert "MCR" in names and "/LLNL/MCR/batch" in kids


class TestFig4ResultTable:
    def test_retrieve_and_add_columns(self, benchmark, purple_report, write_report):
        store = purple_report.store
        engine = QueryEngine(store)

        def retrieve_and_decorate():
            dialog = SelectionDialog(store)
            dialog.add_name("/IRS/src/matsolve", Expansion.NONE)
            results = dialog.retrieve()
            window = MainWindow(engine)
            window.show_results(results)
            window.add_column("execution")
            window.sort("value", descending=True)
            return window

        window = benchmark(retrieve_and_decorate)
        top = window.as_table()[:10]
        header = "  ".join(window.columns)
        body = "\n".join("  ".join(str(c) for c in row) for row in top)
        write_report("fig4_result_table", header + "\n" + body)
        values = [r.cell("value") for r in window.rows]
        assert values == sorted(values, reverse=True)
        assert "execution" in window.columns

    def test_free_resources_offered(self, benchmark, purple_report):
        engine = QueryEngine(purple_report.store)
        dialog = SelectionDialog(purple_report.store)
        dialog.add_name("/IRS/src/matsolve", Expansion.NONE)
        window = MainWindow(engine)
        window.show_results(dialog.retrieve())
        addable = benchmark(window.addable_columns)
        # Executions vary across the retrieved rows -> offered as a column.
        assert "execution" in addable
