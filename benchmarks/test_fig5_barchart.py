"""Figure 5 — min/max running time of a function across processors for
different process counts ("a rough indication of load balance").

The bench times the query + distillation that feeds the chart; the
artifact is the two series and the rendered chart.  Shape assertion: the
min/max spread widens as the process count grows, which is what makes
the paper's chart interesting.
"""

from repro.core import ByName, Expansion, PrFilter
from repro.core.query import QueryEngine
from repro.gui.barchart import min_max_chart

FUNCTION = "/IRS/src/matsolve"


def _series(store, executions):
    engine = QueryEngine(store)
    categories, minima, maxima = [], [], []
    for execution in executions:
        prf = PrFilter(
            [
                ByName(f"/{execution}", Expansion.DESCENDANTS),
                ByName(FUNCTION, Expansion.NONE),
            ]
        )
        by_metric = {
            r.metric: r.value
            for r in engine.fetch(prf)
            if r.metric in ("CPU time (min)", "CPU time (max)")
        }
        if len(by_metric) == 2:
            nproc = execution.split("-p")[1].split("-")[0].lstrip("0")
            categories.append(nproc)
            minima.append(by_metric["CPU time (min)"])
            maxima.append(by_metric["CPU time (max)"])
    return categories, minima, maxima


class TestFig5BarChart:
    def test_min_max_series(self, benchmark, purple_report, write_report):
        store = purple_report.store
        mcr = [e for e in purple_report.executions if "mcr" in e]
        categories, minima, maxima = benchmark(_series, store, mcr)
        chart = min_max_chart(
            f"{FUNCTION} min/max across processors (MCR)",
            categories,
            minima,
            maxima,
        )
        write_report(
            "fig5_barchart", chart.render_ascii(width=46) + "\n" + chart.to_csv()
        )
        # A dropped min or max cell ("doesn't apply") may lose a category.
        assert len(categories) >= len(mcr) - 2
        # Shape: relative spread (max-min)/min grows with process count.
        rel = [(hi - lo) / lo for lo, hi in zip(minima, maxima)]
        assert rel[-1] > rel[0]

    def test_multiple_series_on_one_chart(self, benchmark, purple_report):
        """Fig. 5 shows multiple series on the same chart."""
        store = purple_report.store
        mcr = [e for e in purple_report.executions if "mcr" in e]
        frost = [e for e in purple_report.executions if "frost" in e]
        c1, lo1, hi1 = _series(store, mcr)
        c2, lo2, hi2 = benchmark(_series, store, frost)
        chart = min_max_chart("MCR", c1, lo1, hi1)
        frost_chart = min_max_chart("Frost", c2, lo2, hi2)
        for s in frost_chart.series:
            s.name = f"frost-{s.name}"
            chart.add_series(s)
        assert len(chart.series) == 4
        assert chart.to_csv().splitlines()[0] == "category,min,max,frost-min,frost-max"
