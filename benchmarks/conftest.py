"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper (see DESIGN.md's
experiment index) and writes its reproduced rows/series to
``benchmarks/results/<experiment>.txt`` in addition to timing the
underlying operation with pytest-benchmark.
"""

from __future__ import annotations

import os

import pytest

from repro.studies import run_noise_study, run_paradyn_study, run_purple_study

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Bench scales: large enough to show the paper's shape, small enough for
#: the whole harness to run in minutes.
PURPLE_PROCESS_COUNTS = (2, 4, 8, 16, 32, 64)
UV_EXECUTIONS = 3
BGL_EXECUTIONS = 4
PARADYN_EXECUTIONS = 2


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def write_report(results_dir):
    def _write(name: str, text: str) -> None:
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
            if not text.endswith("\n"):
                fh.write("\n")
        print(f"\n--- {name} ---\n{text}")

    return _write


@pytest.fixture(scope="session")
def purple_report():
    return run_purple_study(process_counts=PURPLE_PROCESS_COUNTS, runs_per_count=1)


@pytest.fixture(scope="session")
def noise_reports():
    return run_noise_study(
        uv_executions=UV_EXECUTIONS,
        bgl_executions=BGL_EXECUTIONS,
        uv_processes=(8, 16, 32),
        mpip_callsites=25,
    )


@pytest.fixture(scope="session")
def paradyn_report():
    return run_paradyn_study(
        executions=PARADYN_EXECUTIONS,
        processes=4,
        modules=40,
        functions_per_module=12,
        histograms=25,
        bins=500,
    )
