"""Scalability of the data store (paper Section 1).

The paper motivates DBMS storage with scalability: "it is anticipated
that a production use data store will be quite large".  This bench loads
a growing number of IRS executions into one store and reports load time
and per-filter query time as functions of store size — the artifact shows
whether cost stays near-linear in data volume (load) and near-constant in
store size for indexed family probes (query).
"""

import json
import os
import random
import tempfile
import time

import pytest

import repro.minidb as minidb
from repro.core import ByName, Expansion, PTDataStore, PrFilter
from repro.minidb import optimizer as minidb_optimizer
from repro.minidb import vector as minidb_vector
from repro.core.query import QueryEngine
from repro.obs import metrics as obs_metrics
from repro.obs.profiler import profiler as obs_profiler
from repro.ptdf.parser import parse_file
from repro.ptdf.ptdfgen import IndexEntry, PTdfGen
from repro.synth.irs_gen import IRSRunSpec, generate_irs_run
from repro.synth.machines import MCR
from repro.tools import ALL_CONVERTERS

from baseline import merge_baseline  # noqa: E402  (benchmarks/ on sys.path)

SIZES = (1, 2, 4, 8)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def ptdf_records():
    """Pre-parsed PTdf for 8 executions (generation excluded from timing)."""
    d = tempfile.mkdtemp(prefix="scal-")
    entries = []
    for i in range(max(SIZES)):
        name = f"irs-scal-p{2 ** (i % 4 + 1):04d}-r{i}"
        generate_irs_run(IRSRunSpec(name, MCR, 2 ** (i % 4 + 1)), d + "/raw")
        entries.append(IndexEntry(name, "IRS", "MPI", 2 ** (i % 4 + 1), 1, "t", "t"))
    with open(d + "/i.index", "w") as fh:
        for e in entries:
            fh.write(" ".join(e.fields()) + "\n")
    gen = PTdfGen(ALL_CONVERTERS)
    reports = gen.generate(d + "/raw", d + "/i.index", out_dir=d + "/ptdf")
    return [parse_file(r.output_path) for r in reports]


def _load_n(records_list, n, bulk=True):
    store = PTDataStore(bulk_load=bulk)
    total = 0
    for records in records_list[:n]:
        total += store.load_records(records).results
    return store, total


def _db_state(store):
    """Full physical state of a minidb-backed store, for identity checks."""
    db = store.backend.connection.db
    return {
        name: (
            dict(db.table(name).rows),
            db.table(name).next_rowid,
            db.table(name).next_auto,
        )
        for name in db.catalog.tables
    }


def _row_count(store):
    db = store.backend.connection.db
    return sum(len(db.table(name).rows) for name in db.catalog.tables)


class TestLoadScaling:
    @pytest.mark.parametrize("n", SIZES)
    def test_load_n_executions(self, benchmark, ptdf_records, n):
        store, total = benchmark.pedantic(
            _load_n, args=(ptdf_records, n), rounds=2, iterations=1
        )
        assert total > n * 1000

    def test_load_cost_roughly_linear(self, benchmark, ptdf_records, write_report):
        import time

        benchmark.pedantic(lambda: None, rounds=1, iterations=1)

        lines = [f"{'executions':>12}{'results':>10}{'load (s)':>10}{'s/exec':>8}"]
        times = {}
        for n in SIZES:
            t0 = time.perf_counter()
            _store, total = _load_n(ptdf_records, n)
            dt = time.perf_counter() - t0
            times[n] = dt
            lines.append(f"{n:>12}{total:>10}{dt:>10.3f}{dt / n:>8.3f}")
        write_report("scalability_load", "\n".join(lines))
        # Near-linear: per-execution cost at 8x data within 3x of at 1x.
        assert times[8] / 8 < times[1] * 3


class TestBulkVsPerRow:
    """Vectorized bulk load vs the per-row ablation (paper Section 4.3).

    Emits ``BENCH_scalability.json`` — the machine-readable perf baseline
    tracked across PRs: load rows/s for both paths, the speedup, family
    probe latency, and the access paths the planner picked.
    """

    ROUNDS = 3

    def test_bulk_load_speedup_and_identity(
        self, benchmark, ptdf_records, results_dir
    ):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        n = max(SIZES)

        def timed(bulk):
            best, store = None, None
            for _ in range(self.ROUNDS):
                t0 = time.perf_counter()
                store, _total = _load_n(ptdf_records, n, bulk=bulk)
                dt = time.perf_counter() - t0
                if best is None or dt < best:
                    best = dt
            return best, store

        bulk_s, bulk_store = timed(True)
        per_row_s, per_row_store = timed(False)

        # Byte-identical datastore contents under both paths: same rows,
        # same rowids, same id counters, table by table.
        assert _db_state(bulk_store) == _db_state(per_row_store)

        rows = _row_count(bulk_store)
        speedup = per_row_s / bulk_s

        engine = QueryEngine(bulk_store)
        families = bulk_store.resolve_prfilter(
            PrFilter([ByName("/IRS/src/matsolve", Expansion.NONE)])
        )
        q0 = time.perf_counter()
        reps = 5
        for _ in range(reps):
            count = engine.count_for_filter(families)
        query_s = (time.perf_counter() - q0) / reps
        assert count > 0

        backend = bulk_store.backend
        probe_plan = [
            r[0]
            for r in backend.query(
                "EXPLAIN SELECT DISTINCT focus_id FROM focus_has_resource "
                "WHERE resource_id IN (?, ?)",
                (1, 2),
            )
        ]
        join_plan = [
            r[0]
            for r in backend.query(
                "EXPLAIN SELECT COUNT(*) FROM resource_item r "
                "JOIN resource_attribute a ON a.value = r.name"
            )
        ]
        assert any("HashJoin" in line for line in join_plan)

        # Observability numbers: bulk loads with the metrics registry on,
        # harvesting loader throughput and engine counters straight from
        # the registry, plus the enabled-vs-disabled load time so the
        # instrumentation overhead is tracked across PRs.  Best-of-ROUNDS
        # like the uninstrumented timing, so the overhead figure compares
        # like with like instead of one cold run against three warm ones.
        obs_metrics.enable()
        try:
            instrumented_s = None
            for _ in range(self.ROUNDS):
                obs_metrics.reset()
                t0 = time.perf_counter()
                obs_store, _ = _load_n(ptdf_records, n)
                dt = time.perf_counter() - t0
                if instrumented_s is None or dt < instrumented_s:
                    instrumented_s = dt
            obs_engine = QueryEngine(obs_store)
            obs_families = obs_store.resolve_prfilter(
                PrFilter([ByName("/IRS/src/matsolve", Expansion.NONE)])
            )
            for _ in range(reps):
                obs_engine.count_for_filter(obs_families)
            snap = obs_metrics.snapshot()
        finally:
            obs_metrics.disable()

        def _metric(name, field="value", default=0):
            return snap.get(name, {}).get(field, default)

        prfilter_hist = snap.get("query.prfilter_seconds", {})
        observability = {
            "instrumented_load_seconds": round(instrumented_s, 4),
            "instrumented_rows_per_s": round(rows / instrumented_s, 1),
            "overhead_vs_disabled": round(instrumented_s / bulk_s - 1.0, 4),
            "loader_records_per_s": round(_metric("ptdf.load.records_per_s"), 1),
            "loader_records": _metric("ptdf.load.records"),
            "loader_batches_flushed": _metric("ptdf.load.batches_flushed"),
            "statements": _metric("minidb.statements"),
            "statement_cache_hits": _metric("minidb.statement_cache.hits"),
            "rows_written": _metric("minidb.rows.written"),
            "prfilter_evaluations": _metric("query.prfilter_evaluations"),
            "prfilter_mean_seconds": round(
                prfilter_hist.get("mean") or 0.0, 6
            ),
        }

        report = {
            "benchmark": "scalability",
            "executions": n,
            "load": {
                "rows": rows,
                "per_row_seconds": round(per_row_s, 4),
                "per_row_rows_per_s": round(rows / per_row_s, 1),
                "bulk_seconds": round(bulk_s, 4),
                "bulk_rows_per_s": round(rows / bulk_s, 1),
                "speedup": round(speedup, 2),
            },
            "query": {
                "filter": "/IRS/src/matsolve",
                "latency_seconds": round(query_s, 5),
                "results": count,
            },
            "plans": {
                "family_probe": probe_plan,
                "unindexed_join": join_plan,
            },
            "observability": observability,
        }
        merge_baseline(results_dir, report)
        print(f"\n--- BENCH_scalability ---\n{json.dumps(report, indent=2)}")

        # The acceptance target is >= 3x; assert 2x so CI noise cannot
        # flake the suite while still catching a real regression.
        assert speedup >= 2.0, f"bulk load only {speedup:.2f}x faster"


class TestQueryPathTopN:
    """Engine query-path section of ``BENCH_scalability.json``.

    Two artifacts of the Volcano refactor, measured over a 100k-row table:

    * ``ORDER BY ... LIMIT k`` runs through a bounded TopN heap instead of
      a full sort — the ablation times the same query with the rule off.
    * Cursors stream: the first row of a selective scan arrives without
      paying for the rest of the result set.
    """

    N = 100_000
    LIMIT = 10
    ROUNDS = 3

    def _timed(self, conn, sql):
        best, rows = None, None
        for _ in range(self.ROUNDS):
            t0 = time.perf_counter()
            rows = conn.execute(sql).fetchall()
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
        return best, rows

    def test_topn_and_streaming(self, benchmark, results_dir, write_report):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        rng = random.Random(13)
        conn = minidb.connect()
        conn.execute("CREATE TABLE pts (id INTEGER PRIMARY KEY, v REAL)")
        conn.executemany(
            "INSERT INTO pts VALUES (?, ?)",
            [(i, rng.random()) for i in range(self.N)],
        )
        sql = f"SELECT id FROM pts ORDER BY v LIMIT {self.LIMIT}"

        plan = [r[0] for r in conn.execute("EXPLAIN " + sql).fetchall()]
        assert any("TOP-N" in line for line in plan), plan
        topn_s, topn_rows = self._timed(conn, sql)

        # Ablation: same query, TopN fusion off -> full sort + limit.
        minidb_optimizer.ENABLE_TOPN = False
        conn._statement_cache.clear()  # drop the cached TopN plan
        try:
            plan = [r[0] for r in conn.execute("EXPLAIN " + sql).fetchall()]
            assert any("ORDER BY" in line for line in plan), plan
            assert not any("TOP-N" in line for line in plan), plan
            sort_s, sort_rows = self._timed(conn, sql)
        finally:
            minidb_optimizer.ENABLE_TOPN = True
            conn._statement_cache.clear()

        # Byte-identical output is part of the operator contract.
        assert topn_rows == sort_rows
        speedup = sort_s / topn_s

        # Streaming: first row of a selective scan vs draining it all.
        # Both figures are bench-guard keys, so take the best of ROUNDS to
        # keep single-run scheduler noise out of the committed baseline.
        probe = "SELECT id FROM pts WHERE v >= 0.5"
        first_row_s = drain_s = None
        for _ in range(self.ROUNDS):
            t0 = time.perf_counter()
            cur = conn.execute(probe)
            first = cur.fetchone()
            dt_first = time.perf_counter() - t0
            assert first is not None
            t0 = time.perf_counter()
            rest = cur.fetchall()
            dt_drain = dt_first + (time.perf_counter() - t0)
            assert len(rest) > self.N // 4
            if first_row_s is None or dt_first < first_row_s:
                first_row_s = dt_first
            if drain_s is None or dt_drain < drain_s:
                drain_s = dt_drain

        section = {
            "rows": self.N,
            "limit": self.LIMIT,
            "topn_seconds": round(topn_s, 5),
            "full_sort_seconds": round(sort_s, 5),
            "topn_speedup": round(speedup, 2),
            "stream_first_row_seconds": round(first_row_s, 6),
            "stream_full_drain_seconds": round(drain_s, 5),
        }
        merge_baseline(results_dir, {"query_path": section})
        write_report(
            "scalability_query_path",
            json.dumps(section, indent=2),
        )
        conn.close()

        # The heap must actually win at this scale; assert with slack so
        # CI noise cannot flake the suite.
        assert speedup > 1.1, f"TopN only {speedup:.2f}x over full sort"
        # Streaming: the first row must not pay for the full result set.
        assert first_row_s < drain_s / 5


class TestVectorizedExecution:
    """``vectorized`` section of ``BENCH_scalability.json``.

    The batch engine must drain a selective 100k-row scan several times
    faster than the row-at-a-time ablation while keeping the streaming
    contract: the first row comes out of one prefetched batch, not after
    the full drain.
    """

    N = 100_000
    ROUNDS = 3

    def _fresh(self):
        rng = random.Random(13)
        conn = minidb.connect()
        conn.execute("CREATE TABLE pts (id INTEGER PRIMARY KEY, v REAL)")
        conn.executemany(
            "INSERT INTO pts VALUES (?, ?)",
            [(i, rng.random()) for i in range(self.N)],
        )
        return conn

    def _timed_drain(self, conn, sql):
        best, rows = None, None
        for _ in range(self.ROUNDS):
            t0 = time.perf_counter()
            rows = conn.execute(sql).fetchall()
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
        return best, rows

    def test_vectorized_drain_and_first_row(
        self, benchmark, results_dir, write_report
    ):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        sql = "SELECT id FROM pts WHERE v >= 0.5"
        conn = self._fresh()

        plan = [r[0] for r in conn.execute("EXPLAIN " + sql).fetchall()]
        assert any("[batched]" in line for line in plan), plan
        vec_s, vec_rows = self._timed_drain(conn, sql)

        first_row_s = None
        for _ in range(self.ROUNDS):
            t0 = time.perf_counter()
            cur = conn.execute(sql)
            first = cur.fetchone()
            dt = time.perf_counter() - t0
            assert first is not None
            cur.close()
            if first_row_s is None or dt < first_row_s:
                first_row_s = dt

        # Batch counters over one instrumented drain.
        obs_metrics.enable()
        obs_metrics.reset()
        try:
            conn.execute(sql).fetchall()
            snap = obs_metrics.snapshot()
        finally:
            obs_metrics.disable()
        batches = snap.get("minidb.vector.batches", {}).get("value", 0)
        rows_scanned = snap.get("minidb.vector.rows", {}).get("value", 0)
        assert batches > 0
        assert rows_scanned == self.N

        # Statement profiler cost over the same drain: enabled profiling
        # arms per-operator metering (the EXPLAIN ANALYZE machinery), so
        # this is the price of always-on statement statistics + flight
        # recording.  Best-of-ROUNDS against the untimed vec_s above; the
        # absolute drain time is a bench-guard key.
        obs_profiler.enable()
        obs_profiler.reset()
        try:
            prof_s, prof_rows = self._timed_drain(conn, sql)
        finally:
            obs_profiler.disable()
        assert prof_rows == vec_rows
        profile = obs_profiler.snapshot()
        assert profile["statements"], "profiled drain must be aggregated"
        obs_profiler.reset()

        # Ablation: same query through the row-at-a-time engine.
        minidb_optimizer.ENABLE_VECTORIZATION = False
        try:
            row_conn = self._fresh()
            plan = [r[0] for r in row_conn.execute("EXPLAIN " + sql).fetchall()]
            assert not any("[batched]" in line for line in plan), plan
            row_s, row_rows = self._timed_drain(row_conn, sql)
            row_conn.close()
        finally:
            minidb_optimizer.ENABLE_VECTORIZATION = True

        # Byte-identical output is part of the operator contract.
        assert vec_rows == row_rows
        speedup = row_s / vec_s

        section = {
            "rows": self.N,
            "batch_size": minidb_vector.BATCH_SIZE,
            "drain_seconds": round(vec_s, 5),
            "first_row_seconds": round(first_row_s, 6),
            "row_engine_drain_seconds": round(row_s, 5),
            "speedup_vs_row_engine": round(speedup, 2),
            "drain_batches": batches,
            "rows_scanned": rows_scanned,
        }
        merge_baseline(results_dir, {"vectorized": section})
        merge_baseline(
            results_dir,
            {
                "observability": {
                    "profiler_enabled_drain_seconds": round(prof_s, 5),
                    "profiler_overhead_vs_disabled": round(prof_s / vec_s - 1.0, 4),
                }
            },
        )
        write_report("scalability_vectorized", json.dumps(section, indent=2))
        conn.close()

        # Acceptance is >= 5x over the row engine at this scale; assert 3x
        # so CI noise cannot flake while a real regression still fails.
        assert speedup >= 3.0, f"vectorized drain only {speedup:.2f}x faster"
        # The first row must not pay for the full drain.
        assert first_row_s < vec_s / 2


class TestQueryScaling:
    @pytest.fixture(scope="class")
    def stores(self, ptdf_records):
        return {n: _load_n(ptdf_records, n)[0] for n in SIZES}

    def _query(self, store):
        engine = QueryEngine(store)
        prf = PrFilter([ByName("/IRS/src/matsolve", Expansion.NONE)])
        return engine.count_for_filter(store.resolve_prfilter(prf))

    @pytest.mark.parametrize("n", SIZES)
    def test_family_probe_at_size(self, benchmark, stores, n):
        count = benchmark(self._query, stores[n])
        assert count > 0

    def test_results_grow_with_store(self, benchmark, stores, write_report):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        counts = {n: self._query(stores[n]) for n in SIZES}
        write_report(
            "scalability_query",
            "\n".join(f"{n} executions -> {c} matsolve results" for n, c in counts.items()),
        )
        assert counts[8] > counts[1]


def _bgl_scale() -> dict:
    """BG/L bench scale: quick by default (CI), full via PTRACK_SHARD_SCALE.

    Full scale is the paper's headline shape — a 16k-node BlueGene/L
    machine, 16 executions of 4096 processes, 4 metrics per process —
    which loads >1M logical rows.  Quick keeps the same shape two orders
    of magnitude smaller so the regression guard has a comparable
    ``sharded`` section on every CI run.
    """
    scale = os.environ.get("PTRACK_SHARD_SCALE", "quick").lower()
    if scale == "full":
        return dict(
            name="full", executions=16, procs=4096, partitions=16,
            nodes_per_partition=1024, metrics=4, shards=8, workers=4,
        )
    if scale != "quick":
        raise ValueError(f"PTRACK_SHARD_SCALE must be quick or full, got {scale!r}")
    return dict(
        name="quick", executions=4, procs=256, partitions=2,
        nodes_per_partition=256, metrics=4, shards=4, workers=2,
    )


class TestShardedBGL:
    """Sharded store + parallel loader at BlueGene/L shape.

    Measures (a) single-process bulk-load rate into one serial store,
    (b) the sharded parallel pipeline's rate into catalog + N fact
    shards, and (c) scatter-gather pr-filter latency on the sharded
    store — recorded as the ``sharded`` baseline section watched by
    tools/bench_guard.py (rows/s floor, p95 latency ceiling).

    The >= 3x parallel-rate acceptance only applies with >= 4 CPUs; on
    smaller hosts (CI runners, this container) the bench records honest
    numbers plus the ``cpus`` field and asserts a sanity floor instead.
    """

    METRIC_NAMES = ("CPU time", "MPI time", "cache misses", "memory HWM")

    @pytest.fixture(scope="class")
    def bgl_files(self, tmp_path_factory):
        from repro.ptdf.writer import PTdfWriter
        from repro.ptdf.format import ResourceSet

        cfg = _bgl_scale()
        root = tmp_path_factory.mktemp("bgl")
        nodes = []
        w = PTdfWriter()
        w.add_application("IRS")
        w.add_resource("/LLNL", "grid")
        w.add_resource("/LLNL/BGL", "grid/machine")
        for part in range(cfg["partitions"]):
            pname = f"/LLNL/BGL/R{part:02d}"
            w.add_resource(pname, "grid/machine/partition")
            for n in range(cfg["nodes_per_partition"]):
                node = f"{pname}/n{n:04d}"
                w.add_resource(node, "grid/machine/partition/node")
                nodes.append(node)
        machine_file = str(root / "machine.ptdf")
        w.write(machine_file)
        paths = [machine_file]
        for e in range(cfg["executions"]):
            ename = f"irs-bgl-{e:02d}"
            w = PTdfWriter()
            w.add_execution(ename, "IRS")
            w.add_resource(f"/{ename}", "execution", ename)
            for p in range(cfg["procs"]):
                proc = f"/{ename}/p{p}"
                w.add_resource(proc, "execution/process", ename)
                node = nodes[(e + p) % len(nodes)]
                focus = ResourceSet((f"/{ename}", proc, node))
                for mi, metric in enumerate(self.METRIC_NAMES[: cfg["metrics"]]):
                    w.add_perf_result(
                        ename, focus, "pmapi", metric,
                        float(e * 1000 + p + mi), "units",
                    )
            path = str(root / f"{ename}.ptdf")
            w.write(path)
            paths.append(path)
        return cfg, paths

    def test_sharded_parallel_load_and_prfilter(
        self, benchmark, bgl_files, results_dir, write_report
    ):
        from repro.core.pload import load_files
        from repro.core.shards import ShardedPTDataStore
        from repro.core.schema import TABLE_NAMES

        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        cfg, paths = bgl_files
        cpus = os.cpu_count() or 1

        # (a) single-process reference: one serial store, bulk loader.
        t0 = time.perf_counter()
        serial = PTDataStore(bulk_load=True)
        for path in paths:
            serial.load_file(path)
        serial_s = time.perf_counter() - t0
        rows = sum(serial.count_rows(t) for t in TABLE_NAMES)

        # (b) sharded + parallel pipeline.
        t0 = time.perf_counter()
        sharded = ShardedPTDataStore(n_shards=cfg["shards"])
        load_files(sharded, paths, workers=cfg["workers"], lint=False)
        parallel_s = time.perf_counter() - t0

        # correctness oracle: union of shards == serial store, row for row
        for table in ("performance_result", "focus_has_resource", "focus"):
            assert sharded.table_rows(table) == {
                tuple(r) for r in serial.backend.query(f"SELECT * FROM {table}")
            }, table

        # (c) scatter-gather pr-filter latency on the sharded store.
        engine = sharded.query_engine()
        filters = (
            PrFilter([ByName("/LLNL/BGL/R00", Expansion.DESCENDANTS)]),
            PrFilter([ByName("/LLNL/BGL/R00/n0003", Expansion.NONE)]),
            PrFilter([
                ByName("/irs-bgl-01", Expansion.DESCENDANTS),
                ByName("/LLNL/BGL/R00", Expansion.DESCENDANTS),
            ]),
        )
        specs = [sharded.resolve_prfilter_specs(prf) for prf in filters]
        # one untimed pass builds the per-shard evaluation indexes
        for spec in specs:
            engine.result_ids(spec)
        latencies = []
        matched = 0
        for _ in range(8):
            for spec in specs:
                t0 = time.perf_counter()
                matched = max(matched, len(engine.result_ids(spec)))
                latencies.append(time.perf_counter() - t0)
        latencies.sort()
        p95_s = latencies[int(len(latencies) * 0.95) - 1]

        serial_rate = rows / serial_s
        parallel_rate = rows / parallel_s
        section = {
            "scale": cfg["name"],
            "cpus": cpus,
            "shards": cfg["shards"],
            "workers": cfg["workers"],
            "rows": rows,
            "results": serial.count_rows("performance_result"),
            "serial_load_seconds": round(serial_s, 4),
            "serial_rows_per_s": round(serial_rate, 1),
            "parallel_load_seconds": round(parallel_s, 4),
            "parallel_rows_per_s": round(parallel_rate, 1),
            "speedup_vs_serial": round(parallel_rate / serial_rate, 3),
            "prfilter_evals": len(latencies),
            "prfilter_results_max": matched,
            "prfilter_p95_seconds": round(p95_s, 6),
        }
        merge_baseline(results_dir, {"sharded": section})
        write_report("sharded_bgl", json.dumps(section, indent=2))

        if cfg["name"] == "full":
            assert rows >= 1_000_000, f"full scale loaded only {rows} rows"
        # Acceptance: a multiple of the single-process rate — only
        # meaningful with real parallel hardware.  Elsewhere the floor
        # just catches the pipeline collapsing (e.g. accidental
        # serialisation through one WAL, quadratic replication).
        if cpus >= 4:
            assert parallel_rate >= 3.0 * serial_rate, (
                f"parallel rate {parallel_rate:,.0f} rows/s < 3x serial "
                f"{serial_rate:,.0f} rows/s on {cpus} CPUs"
            )
        else:
            assert parallel_rate >= 0.15 * serial_rate
        assert p95_s < 0.010, f"pr-filter p95 {p95_s * 1e3:.2f}ms >= 10ms"
