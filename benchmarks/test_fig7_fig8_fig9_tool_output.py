"""Figures 7, 8 and 9 — the raw SMG/PMAPI output, the mpiP report, and
the PTdf generated from them.

The artifacts are excerpts of the generated files in the same layout the
paper screenshots; the benches time the converters over them.
"""

import tempfile

from repro.ptdf.ptdfgen import IndexEntry
from repro.ptdf.writer import PTdfWriter
from repro.synth.machines import UV
from repro.synth.mpip_gen import MpiPSpec, generate_mpip_report
from repro.synth.smg_gen import SMGRunSpec, generate_smg_run
from repro.tools.mpip import MpiPConverter
from repro.tools.smg2000 import SMGConverter


def _entry(execution, nproc):
    return IndexEntry(execution, "SMG2000", "MPI", nproc, 1, "t0", "t1")


def _head(path, n):
    with open(path) as fh:
        return "".join(line for _i, line in zip(range(n), fh))


class TestFig7SMGOutput:
    def test_generate_and_convert(self, benchmark, write_report):
        d = tempfile.mkdtemp(prefix="fig7-")
        path = generate_smg_run(SMGRunSpec("smg-fig7", UV, 16, with_pmapi=True), d)
        write_report("fig7_smg_output", _head(path, 30))
        conv = SMGConverter()
        entry = _entry("smg-fig7", 16)

        def convert():
            w = PTdfWriter()
            w.add_application("SMG2000")
            w.add_execution(entry.execution, "SMG2000")
            return conv.convert(path, entry, w)

        n = benchmark(convert)
        assert n == 8 + 16 * 6  # native values + PMAPI block


class TestFig8MpiPOutput:
    def test_generate_and_convert(self, benchmark, write_report):
        d = tempfile.mkdtemp(prefix="fig8-")
        path = generate_mpip_report(MpiPSpec("smg-fig8", 16, callsites=25), d)
        write_report("fig8_mpip_output", _head(path, 40))
        conv = MpiPConverter()
        entry = _entry("smg-fig8", 16)

        def convert():
            w = PTdfWriter()
            w.add_application("SMG2000")
            w.add_execution(entry.execution, "SMG2000")
            return conv.convert(path, entry, w)

        n = benchmark(convert)
        # tasks (16+1)x2 + aggregates 20 + stats 25x17x4
        assert n == 34 + 20 + 25 * 17 * 4


class TestFig9GeneratedPTdf:
    def test_ptdf_for_smg_run(self, benchmark, write_report):
        d = tempfile.mkdtemp(prefix="fig9-")
        smg_path = generate_smg_run(SMGRunSpec("smg-fig9", UV, 8, with_pmapi=True), d)
        mpip_path = generate_mpip_report(MpiPSpec("smg-fig9", 8, callsites=10), d)
        entry = _entry("smg-fig9", 8)

        def build_ptdf():
            w = PTdfWriter()
            w.add_application("SMG2000")
            w.add_execution(entry.execution, "SMG2000")
            SMGConverter().convert(smg_path, entry, w)
            MpiPConverter().convert(mpip_path, entry, w)
            return w.render()

        text = benchmark(build_ptdf)
        # Artifact: the first 40 lines of the generated PTdf (paper Fig. 9).
        write_report("fig9_smg_ptdf", "\n".join(text.splitlines()[:40]))
        assert "PerfResult smg-fig9" in text
        assert "(parent)" in text  # the caller/callee two-set extension
