"""Ablation A4 — scalar-per-bin vs vector results for Paradyn histograms.

Paper Section 6: "We plan to explore complex performance results in
PerfTrack ... to avoid creating a new performance result for each bin in
a Paradyn histogram file."  This bench quantifies that proposal: the same
export loaded in both modes, comparing ingest time and row counts.
"""

import tempfile

import pytest

from repro.core import PTDataStore
from repro.ptdf.ptdfgen import IndexEntry
from repro.ptdf.writer import PTdfWriter
from repro.synth.paradyn_gen import ParadynSpec, generate_paradyn_export
from repro.tools.paradyn import ParadynConverter


@pytest.fixture(scope="module")
def export():
    d = tempfile.mkdtemp(prefix="ablation-vector-")
    spec = ParadynSpec(
        "abl-vec", processes=4, modules=20, functions_per_module=8,
        histograms=12, bins=400,
    )
    exp = generate_paradyn_export(spec, d)
    entry = IndexEntry("abl-vec", "IRS", "MPI", 4, 1, "t0", "t1")
    return exp, entry


def _records_for(export, entry, mode):
    conv = ParadynConverter(bins_as=mode)
    w = PTdfWriter()
    w.add_application("IRS")
    w.add_execution(entry.execution, "IRS")
    conv.convert_resources_file(export.resources_path, entry, w)
    conv.convert_index(export.index_path, entry, w)
    return w.records


class TestA4VectorResults:
    @pytest.fixture(scope="class")
    def record_sets(self, export):
        exp, entry = export
        return {
            mode: _records_for(exp, entry, mode) for mode in ("results", "series")
        }

    @pytest.mark.parametrize("mode", ["results", "series"])
    def test_ingest(self, benchmark, record_sets, mode):
        records = record_sets[mode]

        def load():
            store = PTDataStore()
            return store.load_records(records)

        stats = benchmark.pedantic(load, rounds=3, iterations=1)
        assert stats.results > 0

    def test_row_economics(self, benchmark, record_sets, write_report):
        benchmark.pedantic(lambda: None, rounds=1, iterations=1)
        stats = {}
        for mode, records in record_sets.items():
            store = PTDataStore()
            store.load_records(records)
            stats[mode] = store.db_stats()
        lines = [
            f"{'table':<32}{'per-bin':>10}{'vector':>10}",
        ]
        for table in (
            "performance_result",
            "performance_result_vector",
            "performance_result_has_focus",
            "focus",
            "focus_has_resource",
            "resource_item",
        ):
            lines.append(
                f"{table:<32}{stats['results'][table]:>10}{stats['series'][table]:>10}"
            )
        write_report("ablation_a4_vector_results", "\n".join(lines))
        # The proposal's payoff: orders of magnitude fewer result rows...
        assert stats["series"]["performance_result"] == 12
        assert stats["results"]["performance_result"] > 1000
        # ...and far fewer resources (no per-bin time intervals).
        assert (
            stats["series"]["resource_item"]
            < stats["results"]["resource_item"] / 2
        )
        # Bin values are preserved one-for-one in the vector table.
        assert (
            stats["series"]["performance_result_vector"]
            == stats["results"]["performance_result"]
        )
