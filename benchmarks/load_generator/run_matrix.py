"""Drive the load-generator client matrix and write the JSON report.

Sweeps a rising client count (1r+1w up to the headline 8r+4w mix from
the acceptance criteria), asserts zero isolation violations at every
point, and reports latency percentiles plus throughput per mix.  With
``--merge-baseline`` the headline mix lands in the ``concurrency``
section of ``BENCH_scalability.json`` (both copies), which
``tools/bench_guard.py`` watches via ``concurrency.throughput_ops_per_s``
and ``concurrency.p95_seconds``.

Usage (repo root)::

    PYTHONPATH=src:benchmarks python -m load_generator.run_matrix \
        --out benchmarks/results/load_generator.json [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from load_generator.workload import Mix, run_mix

#: Rising client counts; the last entry is the acceptance-criteria mix.
DEFAULT_MATRIX = (
    Mix("1r+1w", readers=1, writers=1, ops_per_client=200),
    Mix("2r+1w", readers=2, writers=1, ops_per_client=200),
    Mix("4r+2w", readers=4, writers=2, ops_per_client=150),
    Mix("8r+4w", readers=8, writers=4, ops_per_client=100),
)

QUICK_MATRIX = (
    Mix("2r+1w", readers=2, writers=1, ops_per_client=40),
    Mix("8r+4w", readers=8, writers=4, ops_per_client=25),
)


def run_matrix(mixes=DEFAULT_MATRIX, verbose: bool = True) -> dict:
    """Run every mix and return the full report dict."""
    results = []
    for mix in mixes:
        report = run_mix(mix)
        results.append(report)
        if verbose:
            print(
                f"{mix.name:>7}: {report['total_ops']} ops in "
                f"{report['elapsed_seconds']:.2f}s — "
                f"{report['throughput_ops_per_s']:.0f} ops/s, "
                f"p50 {report['p50_seconds'] * 1000:.2f}ms, "
                f"p95 {report['p95_seconds'] * 1000:.2f}ms, "
                f"p99 {report['p99_seconds'] * 1000:.2f}ms, "
                f"{len(report['violations'])} violations"
            )
    headline = results[-1]
    return {
        "harness": "load_generator",
        "mixes": results,
        "headline": headline["mix"],
        "throughput_ops_per_s": headline["throughput_ops_per_s"],
        "p50_seconds": headline["p50_seconds"],
        "p95_seconds": headline["p95_seconds"],
        "p99_seconds": headline["p99_seconds"],
        "violations": sum(len(r["violations"]) for r in results),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the full JSON report to FILE")
    parser.add_argument(
        "--quick", action="store_true",
        help="small matrix for CI smoke runs",
    )
    parser.add_argument(
        "--merge-baseline", action="store_true",
        help="merge the headline mix into BENCH_scalability.json",
    )
    args = parser.parse_args(argv)

    report = run_matrix(QUICK_MATRIX if args.quick else DEFAULT_MATRIX)

    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}")

    if args.merge_baseline:
        from baseline import merge_baseline

        results_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "results",
        )
        os.makedirs(results_dir, exist_ok=True)
        merge_baseline(
            results_dir,
            {
                "concurrency": {
                    "headline": report["headline"],
                    "throughput_ops_per_s": report["throughput_ops_per_s"],
                    "p50_seconds": report["p50_seconds"],
                    "p95_seconds": report["p95_seconds"],
                    "p99_seconds": report["p99_seconds"],
                }
            },
        )
        print("merged concurrency section into BENCH_scalability.json")

    if report["violations"]:
        print(
            f"FAIL: {report['violations']} isolation violations",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
