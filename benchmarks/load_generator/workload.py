"""Workload mixes and isolation invariants for the load generator.

One :class:`Mix` describes a population of concurrent sessions over a
shared engine: ``readers`` sessions running invariant-checking queries
and ``writers`` sessions running a weighted mix of transactions.  The
writers are constructed so that *every* committed state satisfies three
invariants a snapshot reader can check with plain SQL:

* **balance checksum** — transfers move value between ``accounts`` rows
  inside one transaction, so ``SUM(balance)`` never changes.  A reader
  seeing any other total has observed a torn or dirty write.
* **batch atomicity** — marker rows are inserted ``batch_size`` at a
  time in one transaction; a reader must count each batch at exactly
  ``batch_size`` (or not at all), never a prefix.
* **rollback opacity** — ``ghost`` markers are always inserted and then
  rolled back; a reader must never see one.

Any breach is recorded as a :class:`Violation` with enough context to
debug it; the matrix driver fails the run if any are found.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.minidb import Engine, LockTimeoutError
from load_generator.metrics import summarize


@dataclass(frozen=True)
class Mix:
    """One load-generator configuration (a point in the client matrix)."""

    name: str
    readers: int
    writers: int
    ops_per_client: int
    accounts: int = 64
    initial_balance: int = 100
    batch_size: int = 8
    seed: int = 20260808

    @property
    def clients(self) -> int:
        return self.readers + self.writers

    @property
    def expected_total(self) -> int:
        return self.accounts * self.initial_balance


@dataclass
class Violation:
    """One observed isolation breach."""

    kind: str
    client: str
    detail: str


@dataclass
class _ClientStats:
    ops: int = 0
    retries: int = 0
    latencies: list = field(default_factory=list)


def seed_schema(engine: Engine, mix: Mix) -> None:
    session = engine.connect()
    cur = session.cursor()
    cur.execute(
        "CREATE TABLE accounts ("
        " id INTEGER PRIMARY KEY,"
        " balance INTEGER NOT NULL)"
    )
    cur.execute(
        "CREATE TABLE markers ("
        " id INTEGER PRIMARY KEY,"
        " batch INTEGER NOT NULL,"
        " kind TEXT NOT NULL)"
    )
    cur.execute("CREATE INDEX idx_markers_batch ON markers (batch)")
    cur.executemany(
        "INSERT INTO accounts (id, balance) VALUES (?, ?)",
        [(i, mix.initial_balance) for i in range(mix.accounts)],
    )
    session.commit()
    cur.close()
    session.close()


def _writer(
    engine: Engine,
    mix: Mix,
    client_id: int,
    barrier: threading.Barrier,
    stats: _ClientStats,
    violations: list,
) -> None:
    session = engine.connect()
    cur = session.cursor()
    rng = random.Random(mix.seed * 1009 + client_id)
    barrier.wait()
    try:
        for op_index in range(mix.ops_per_client):
            batch_tag = client_id * 1_000_000 + op_index
            roll = rng.random()
            t0 = time.perf_counter()
            try:
                if roll < 0.60:
                    # Balanced transfer: SUM(balance) is invariant.
                    a = rng.randrange(mix.accounts)
                    b = (a + 1 + rng.randrange(mix.accounts - 1)) % mix.accounts
                    delta = rng.randrange(1, 10)
                    cur.execute(
                        "UPDATE accounts SET balance = balance - ? WHERE id = ?",
                        (delta, a),
                    )
                    cur.execute(
                        "UPDATE accounts SET balance = balance + ? WHERE id = ?",
                        (delta, b),
                    )
                    session.commit()
                elif roll < 0.85:
                    # Atomic marker batch: all-or-nothing per batch tag.
                    cur.executemany(
                        "INSERT INTO markers (batch, kind) VALUES (?, ?)",
                        [(batch_tag, "batch")] * mix.batch_size,
                    )
                    session.commit()
                else:
                    # Ghost: inserted then rolled back, never visible.
                    cur.execute(
                        "INSERT INTO markers (batch, kind) VALUES (?, ?)",
                        (batch_tag, "ghost"),
                    )
                    session.rollback()
            except LockTimeoutError:
                session.rollback()
                stats.retries += 1
                continue
            stats.latencies.append(time.perf_counter() - t0)
            stats.ops += 1
    finally:
        cur.close()
        session.close()


def _reader(
    engine: Engine,
    mix: Mix,
    client_id: int,
    barrier: threading.Barrier,
    stats: _ClientStats,
    violations: list,
) -> None:
    session = engine.connect()
    cur = session.cursor()
    name = f"reader-{client_id}"
    barrier.wait()
    try:
        for op_index in range(mix.ops_per_client):
            check = op_index % 3
            t0 = time.perf_counter()
            if check == 0:
                cur.execute("SELECT SUM(balance) FROM accounts")
                total = cur.fetchone()[0]
                if total != mix.expected_total:
                    violations.append(
                        Violation(
                            "balance-checksum",
                            name,
                            f"SUM(balance) = {total}, "
                            f"expected {mix.expected_total}",
                        )
                    )
            elif check == 1:
                cur.execute(
                    "SELECT batch, COUNT(*) FROM markers"
                    " WHERE kind = 'batch' GROUP BY batch"
                )
                for batch, count in cur:
                    if count != mix.batch_size:
                        violations.append(
                            Violation(
                                "batch-atomicity",
                                name,
                                f"batch {batch} visible with {count} rows, "
                                f"expected {mix.batch_size}",
                            )
                        )
            else:
                cur.execute(
                    "SELECT COUNT(*) FROM markers WHERE kind = 'ghost'"
                )
                ghosts = cur.fetchone()[0]
                if ghosts:
                    violations.append(
                        Violation(
                            "rollback-opacity",
                            name,
                            f"{ghosts} rolled-back ghost rows visible",
                        )
                    )
            stats.latencies.append(time.perf_counter() - t0)
            stats.ops += 1
    finally:
        cur.close()
        session.close()


def run_mix(mix: Mix, engine: Engine | None = None) -> dict:
    """Run one mix to completion and return its report dict.

    The report carries the bench-guard keys (``throughput_ops_per_s``,
    ``p95_seconds``) at the top level plus per-class summaries and the
    full violation list (empty on a correct engine).
    """
    own_engine = engine is None
    if engine is None:
        engine = Engine(":memory:")
    seed_schema(engine, mix)
    barrier = threading.Barrier(mix.clients + 1)
    violations: list[Violation] = []
    stats = {
        f"reader-{i}": _ClientStats() for i in range(mix.readers)
    }
    threads = []
    for i in range(mix.readers):
        threads.append(
            threading.Thread(
                target=_reader,
                args=(engine, mix, i, barrier, stats[f"reader-{i}"], violations),
                name=f"lg-reader-{i}",
            )
        )
    for i in range(mix.writers):
        stats[f"writer-{i}"] = _ClientStats()
        threads.append(
            threading.Thread(
                target=_writer,
                args=(engine, mix, i, barrier, stats[f"writer-{i}"], violations),
                name=f"lg-writer-{i}",
            )
        )
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    if own_engine:
        engine.close()

    all_latencies = [x for s in stats.values() for x in s.latencies]
    read_latencies = [
        x for k, s in stats.items() if k.startswith("reader") for x in s.latencies
    ]
    write_latencies = [
        x for k, s in stats.items() if k.startswith("writer") for x in s.latencies
    ]
    total_ops = sum(s.ops for s in stats.values())
    summary = summarize(all_latencies)
    return {
        "mix": mix.name,
        "readers": mix.readers,
        "writers": mix.writers,
        "ops_per_client": mix.ops_per_client,
        "total_ops": total_ops,
        "elapsed_seconds": elapsed,
        "throughput_ops_per_s": (total_ops / elapsed) if elapsed > 0 else 0.0,
        "retries": sum(s.retries for s in stats.values()),
        "p50_seconds": summary["p50_seconds"],
        "p95_seconds": summary["p95_seconds"],
        "p99_seconds": summary["p99_seconds"],
        "latency": summary,
        "read_latency": summarize(read_latencies),
        "write_latency": summarize(write_latencies),
        "violations": [
            {"kind": v.kind, "client": v.client, "detail": v.detail}
            for v in violations
        ],
    }
