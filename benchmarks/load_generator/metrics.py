"""Latency statistics for the load generator (no numpy needed)."""

from __future__ import annotations

import math


def percentile(sorted_values: list[float], q: float) -> float:
    """Linear-interpolated percentile of pre-sorted *sorted_values*.

    ``q`` is a fraction (0.95, not 95).  Matches numpy's default
    ``linear`` interpolation so the reported numbers are comparable to
    any offline re-analysis of the raw latency dump.
    """
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = q * (len(sorted_values) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return sorted_values[lo]
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


def summarize(latencies: list[float]) -> dict:
    """The per-mix latency summary: count, mean and the watched tails."""
    values = sorted(latencies)
    count = len(values)
    return {
        "count": count,
        "mean_seconds": (sum(values) / count) if count else 0.0,
        "p50_seconds": percentile(values, 0.50),
        "p95_seconds": percentile(values, 0.95),
        "p99_seconds": percentile(values, 0.99),
        "max_seconds": values[-1] if values else 0.0,
    }
