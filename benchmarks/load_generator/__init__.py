"""Concurrent load-generator harness for the minidb engine.

Drives a shared :class:`repro.minidb.Engine` with a configurable mix of
reader and writer sessions, checks snapshot-isolation invariants on
every read, and reports latency percentiles (p50/p95/p99) plus
throughput per mix.  ``run_matrix`` sweeps rising client counts and
writes the headline mix into the ``concurrency`` section of
``BENCH_scalability.json`` so ``tools/bench_guard.py`` can watch it.

Run it as a module with both ``src`` and ``benchmarks`` on the path::

    PYTHONPATH=src:benchmarks python -m load_generator.run_matrix --quick
"""

from .workload import Mix, Violation, run_mix

__all__ = ["Mix", "Violation", "run_mix"]
