"""Ablation benches for the design choices DESIGN.md calls out.

A1 — closure tables vs parent-chain traversal: the paper added
     ``resource_has_ancestor``/``resource_has_descendant`` "to avoid
     needing to traverse the resource hierarchy"; this bench measures the
     claim on a deep machine tree.
A2 — minidb vs sqlite backend on the same load + query mix (the paper's
     Oracle-vs-PostgreSQL portability, measured).
A3 — indexed vs unindexed pr-filter evaluation.
"""

import pytest

from repro.collect.machine import machine_to_ptdf
from repro.core import ByName, Expansion, PTDataStore, PrFilter
from repro.core.query import QueryEngine
from repro.ptdf.writer import PTdfWriter
from repro.synth.machines import UV


def _machine_store(use_closure: bool, backend_kind: str = "minidb",
                   with_indexes: bool = True) -> PTDataStore:
    store = PTDataStore(
        backend_kind=backend_kind,
        use_closure_tables=use_closure,
        with_indexes=with_indexes,
    )
    w = PTdfWriter()
    machine_to_ptdf(UV, w, max_nodes_per_partition=32)  # 32 nodes x 8 procs
    store.load_records(w.records)
    return store


class TestA1ClosureTables:
    @pytest.fixture(scope="class")
    def stores(self):
        return _machine_store(True), _machine_store(False)

    def test_results_identical(self, benchmark, stores):
        closure, walk = stores
        rid_c = closure.resource_id("/LLNL/UV")
        rid_w = walk.resource_id("/LLNL/UV")
        names_c = {closure.resource_by_id(i).name for i in benchmark(closure.descendants_of, rid_c)}
        names_w = {walk.resource_by_id(i).name for i in walk.descendants_of(rid_w)}
        assert names_c == names_w
        assert len(names_c) == 1 + 32 + 32 * 8  # partition + nodes + procs

    def test_closure_expansion(self, benchmark, stores, write_report):
        closure, _ = stores
        rid = closure.resource_id("/LLNL/UV")
        result = benchmark(closure.descendants_of, rid)
        write_report(
            "ablation_a1_closure",
            f"descendant expansion of /LLNL/UV ({len(result)} resources): "
            "see pytest-benchmark table rows "
            "test_closure_expansion (closure tables) vs "
            "test_walk_expansion (parent-chain walk)",
        )
        assert len(result) == 289

    def test_walk_expansion(self, benchmark, stores):
        _, walk = stores
        rid = walk.resource_id("/LLNL/UV")
        result = benchmark(walk.descendants_of, rid)
        assert len(result) == 289


class TestA2BackendComparison:
    @pytest.fixture(scope="class")
    def ptdf_text(self, purple_report):
        import os

        path = sorted(
            os.path.join(purple_report.ptdf_dir, f)
            for f in os.listdir(purple_report.ptdf_dir)
            if f.endswith(".ptdf")
        )[0]
        return open(path).read()

    @pytest.mark.parametrize("kind", ["minidb", "sqlite"])
    def test_load_one_execution(self, benchmark, ptdf_text, kind):
        def load():
            store = PTDataStore(backend_kind=kind)
            return store.load_string(ptdf_text)

        stats = benchmark.pedantic(load, rounds=3, iterations=1)
        assert stats.results > 1000

    @pytest.mark.parametrize("kind", ["minidb", "sqlite"])
    def test_query_mix(self, benchmark, ptdf_text, kind):
        store = PTDataStore(backend_kind=kind)
        store.load_string(ptdf_text)
        engine = QueryEngine(store)
        execution = store.executions()[0]

        def queries():
            fam = store.resolve_filter(ByName(f"/{execution}", Expansion.DESCENDANTS))
            n1 = engine.count_for_family(fam)
            results = engine.fetch(
                PrFilter([ByName("/IRS/src/matsolve", Expansion.NONE)])
            )
            return n1, len(results)

        n1, n2 = benchmark(queries)
        assert n1 > 1000 and n2 > 10

    def test_backends_agree(self, benchmark, ptdf_text, write_report):
        counts = {}
        benchmark(lambda: None)  # agreement check; timing is in the load/query benches
        for kind in ("minidb", "sqlite"):
            store = PTDataStore(backend_kind=kind)
            store.load_string(ptdf_text)
            engine = QueryEngine(store)
            counts[kind] = {
                "results": store.count_rows("performance_result"),
                "resources": store.count_rows("resource_item"),
                "matsolve": len(
                    engine.fetch(PrFilter([ByName("/IRS/src/matsolve", Expansion.NONE)]))
                ),
            }
        write_report(
            "ablation_a2_backends",
            "\n".join(f"{k}: {v}" for k, v in counts.items()),
        )
        assert counts["minidb"] == counts["sqlite"]


class TestA3IndexAblation:
    @pytest.fixture(scope="class")
    def loaded(self, purple_report):
        import os

        path = sorted(
            os.path.join(purple_report.ptdf_dir, f)
            for f in os.listdir(purple_report.ptdf_dir)
            if f.endswith(".ptdf")
        )
        texts = [open(p).read() for p in path[:3]]

        def build(with_indexes: bool) -> PTDataStore:
            store = PTDataStore(backend_kind="minidb", with_indexes=with_indexes)
            for t in texts:
                store.load_string(t)
            return store

        return build(True), build(False)

    def _query(self, store):
        engine = QueryEngine(store)
        prf = PrFilter([ByName("/IRS/src/matsolve", Expansion.NONE)])
        return len(engine.fetch(prf))

    def test_indexed_query(self, benchmark, loaded, write_report):
        indexed, _ = loaded
        n = benchmark(self._query, indexed)
        write_report(
            "ablation_a3_indexes",
            f"pr-filter fetch over 3 executions, {n} results: see "
            "pytest-benchmark rows test_indexed_query vs test_unindexed_query",
        )
        assert n > 30

    def test_unindexed_query(self, benchmark, loaded):
        _, unindexed = loaded
        n = benchmark(self._query, unindexed)
        assert n > 30

    def test_same_answers(self, benchmark, loaded):
        indexed, unindexed = loaded
        assert benchmark(self._query, indexed) == self._query(unindexed)
