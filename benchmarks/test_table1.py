"""Table 1 — "Statistics for raw data, PTdf, and data store".

Three rows: IRS (Purple study), SMG-UV and SMG-BG/L (noise study).  Each
bench times the load path that produced the row (PTdf parse + store load
for one representative execution) and emits the full reproduced row next
to the paper's numbers.

Paper row (per execution unless noted):
  IRS       6 files, ~61,100 B raw, 280 resources, 25 metrics, 1,514
            results; 62/2,298 PTdf files/lines-per-exec; 62 loaded; 12 MB
  SMG-UV    2 files, ~190,800 B, 5,657 resources, 259 metrics, 9,777
            results; 35 loaded; 89 MB
  SMG-BG/L  1 file, ~1,000 B, 522 resources, 8 metrics, 8 results;
            60 loaded; 27 MB
"""

import os

from repro.core import PTDataStore

PAPER = {
    "IRS": dict(files=6, raw=61100, resources=280, metrics=25, results=1514, execs=62),
    "SMG-UV": dict(files=2, raw=190800, resources=5657, metrics=259, results=9777, execs=35),
    "SMG-BG/L": dict(files=1, raw=1000, resources=522, metrics=8, results=8, execs=60),
}


def _row_text(label, row):
    p = PAPER[label]
    return (
        f"paper   : files/exec={p['files']}  raw bytes/exec≈{p['raw']}  "
        f"resources/exec={p['resources']}  metrics={p['metrics']}  "
        f"results/exec={p['results']}  execs loaded={p['execs']}\n"
        f"measured: {row.render()}"
    )


def _reload_one_ptdf(report):
    """The benched operation: parse + load one execution's PTdf file."""
    ptdf = sorted(
        os.path.join(report.ptdf_dir, f)
        for f in os.listdir(report.ptdf_dir)
        if f.endswith(".ptdf")
    )[0]

    def loader():
        store = PTDataStore()
        return store.load_file(ptdf)

    return loader


class TestTable1IRS:
    def test_row(self, benchmark, purple_report, write_report):
        stats = benchmark.pedantic(
            _reload_one_ptdf(purple_report), rounds=3, iterations=1
        )
        assert stats.results > 1000
        row = purple_report.table1
        write_report("table1_irs", _row_text("IRS", row))
        # Shape assertions vs the paper.
        assert row.files_per_exec == PAPER["IRS"]["files"]
        assert row.metrics == PAPER["IRS"]["metrics"]
        assert 0.9 < row.results_per_exec / PAPER["IRS"]["results"] < 1.1


class TestTable1SMGUV:
    def test_row(self, benchmark, noise_reports, write_report):
        uv, _bgl = noise_reports
        stats = benchmark.pedantic(_reload_one_ptdf(uv), rounds=3, iterations=1)
        assert stats.results > 100
        write_report("table1_smg_uv", _row_text("SMG-UV", uv.table1))
        assert uv.table1.files_per_exec == PAPER["SMG-UV"]["files"]
        # Shape: SMG-UV generates several-fold more results/exec than IRS's
        # ~1.5k... at bench scale the exact count tracks process counts.
        assert uv.table1.results_per_exec > 1000


class TestTable1SMGBGL:
    def test_row(self, benchmark, noise_reports, write_report):
        _uv, bgl = noise_reports
        stats = benchmark.pedantic(_reload_one_ptdf(bgl), rounds=3, iterations=1)
        assert stats.results == 8
        write_report("table1_smg_bgl", _row_text("SMG-BG/L", bgl.table1))
        assert bgl.table1.files_per_exec == PAPER["SMG-BG/L"]["files"]
        # The paper's defining contrast: 8 whole-run values per execution.
        assert bgl.table1.results_per_exec == PAPER["SMG-BG/L"]["results"]


class TestTable1Shape:
    def test_cross_row_relationships(self, benchmark, purple_report, noise_reports, write_report):
        """The relationships between rows, which is what Table 1 shows."""
        uv, bgl = noise_reports
        irs = purple_report.table1
        benchmark(lambda: (irs.render(), uv.table1.render(), bgl.table1.render()))
        lines = [
            f"results/exec  IRS={irs.results_per_exec:.0f}  "
            f"SMG-UV={uv.table1.results_per_exec:.0f}  "
            f"SMG-BG/L={bgl.table1.results_per_exec:.0f}",
            f"DB growth     IRS={irs.db_growth_bytes}  "
            f"SMG-UV={uv.table1.db_growth_bytes}  "
            f"SMG-BG/L={bgl.table1.db_growth_bytes}",
        ]
        write_report("table1_shape", "\n".join(lines))
        # SMG-UV >> IRS per-exec results (paper: 9,777 vs 1,514).
        assert uv.table1.results_per_exec > irs.results_per_exec
        # SMG-BG/L is tiny per exec (paper: 8).
        assert bgl.table1.results_per_exec < 0.01 * uv.table1.results_per_exec
        # Per-exec DB growth ordering follows result counts.
        assert (
            uv.table1.db_growth_bytes / uv.table1.executions_loaded
            > bgl.table1.db_growth_bytes / bgl.table1.executions_loaded
        )
