"""Figures 1 and 2 — the database schema and the base resource types.

Fig. 1's artifact is the schema itself: the bench creates it on both
backends and emits the table/column listing.  Fig. 2's artifact is the
base-type tree loaded through the type-extension interface.
"""

from repro.core import PTDataStore
from repro.core.schema import TABLE_NAMES, create_schema, describe_schema
from repro.dbapi import open_backend


class TestFig1Schema:
    def test_create_schema_minidb(self, benchmark, write_report):
        def create():
            b = open_backend("minidb")
            create_schema(b)
            return b

        backend = benchmark(create)
        assert all(backend.has_table(t) for t in TABLE_NAMES)
        write_report("fig1_schema", "\n".join(describe_schema()))

    def test_create_schema_sqlite(self, benchmark):
        def create():
            b = open_backend("sqlite")
            create_schema(b)
            return b

        backend = benchmark(create)
        assert all(backend.has_table(t) for t in TABLE_NAMES)


class TestFig2BaseTypes:
    def test_base_type_initialisation(self, benchmark, write_report):
        store = benchmark(PTDataStore)
        lines = []
        for top in store.top_level_types():
            lines.append(top.base)
            stack = [(top, 1)]
            while stack:
                node, depth = stack.pop()
                for child in store.child_types(node.id):
                    lines.append("  " * depth + child.base)
                    stack.append((child, depth + 1))
        write_report("fig2_base_types", "\n".join(lines))
        # Five hierarchies + eight single-level types = 13 top-level nodes.
        assert len(store.top_level_types()) == 13
