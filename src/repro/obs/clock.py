"""Clocks for the observability layer.

All instrumentation in ``src/`` must go through these wrappers (enforced by
the repo lint rule PTL004) so that durations are always measured on the
monotonic high-resolution clock and wall-clock reads are centralised in one
place.  ``now()`` is the duration clock; ``wall_clock()`` is the epoch clock
used only for timestamping exported artefacts.
"""

from __future__ import annotations

import time

#: Monotonic high-resolution clock for measuring durations (seconds).
now = time.perf_counter


def wall_clock() -> float:
    """Seconds since the epoch, for timestamping exported snapshots."""
    return time.time()  # noqa: PTL004 — the one sanctioned wall-clock read
