"""Render metrics snapshots: text, JSON, Prometheus exposition, and PTdf.

The PTdf exporter is the poetic closing of the loop: PerfTrack emits its own
telemetry in the paper's data format, so a metrics snapshot can be loaded
back into a :class:`~repro.core.datastore.PTDataStore` and diagnosed with
the same pr-filter machinery used on application data.  Mapping:

* ``Application PerfTrack`` — the instrumented program,
* ``Execution <name> PerfTrack`` — one snapshot export,
* ``Resource /<name> execution <name>`` — the whole-execution focus,
* one ``PerfResult`` per counter/gauge (metric = the metric name, units =
  the instrument's unit), and four per histogram (``(count)``, ``(sum)``,
  ``(mean)``, ``(max)`` facets, each with a consistent units string).
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, Mapping, Optional

from .metrics import MetricsRegistry, metrics

__all__ = [
    "render_text",
    "render_json",
    "render_prometheus",
    "to_ptdf",
    "render_profile_text",
    "render_profile_json",
    "render_flight_text",
    "profile_to_ptdf",
]

Snapshot = Mapping[str, Mapping[str, Any]]


def _resolve(snapshot: Optional[Snapshot],
             registry: Optional[MetricsRegistry]) -> Snapshot:
    if snapshot is not None:
        return snapshot
    return (registry or metrics).snapshot()


# ---------------------------------------------------------------- text


def render_text(snapshot: Optional[Snapshot] = None, *,
                registry: Optional[MetricsRegistry] = None) -> str:
    """Aligned human-readable table, one metric per line."""
    snap = _resolve(snapshot, registry)
    if not snap:
        return "(no metrics recorded)\n"
    width = max(len(name) for name in snap)
    lines = []
    for name, data in snap.items():
        if data["type"] == "histogram":
            value = (
                f"count={data['count']} sum={data['sum']:.6g} "
                f"mean={data['mean']:.6g} max={data['max']:.6g} {data['unit']}"
            )
        else:
            v = data["value"]
            value = f"{v:.6g} {data['unit']}" if isinstance(v, float) else f"{v} {data['unit']}"
        lines.append(f"{name:<{width}}  {value}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------- JSON


def render_json(snapshot: Optional[Snapshot] = None, *,
                registry: Optional[MetricsRegistry] = None) -> str:
    """The snapshot as a stable JSON document."""
    snap = _resolve(snapshot, registry)
    return json.dumps(snap, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------- Prometheus

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _PROM_BAD.sub("_", name)


def render_prometheus(snapshot: Optional[Snapshot] = None, *,
                      registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text exposition format (v0.0.4).

    Histograms render cumulative ``_bucket{le=...}`` series plus ``_sum``
    and ``_count``, counters get a ``_total`` suffix.
    """
    snap = _resolve(snapshot, registry)
    lines = []
    for name, data in snap.items():
        pname = _prom_name(name)
        kind = data["type"]
        if kind == "counter":
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {data['value']}")
        elif kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {data['value']}")
        else:
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in data["buckets"]:
                cumulative += count
                le = "+Inf" if math.isinf(bound) else f"{bound:.9g}"
                lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
            if not data["buckets"] or not math.isinf(data["buckets"][-1][0]):
                lines.append(f'{pname}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{pname}_sum {data['sum']}")
            lines.append(f"{pname}_count {data['count']}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------- PTdf


def to_ptdf(execution: str = "ptrack-telemetry", *,
            snapshot: Optional[Snapshot] = None,
            registry: Optional[MetricsRegistry] = None,
            application: str = "PerfTrack",
            tool: str = "ptrack-obs") -> str:
    """Render a metrics snapshot as PTdf telemetry.

    The returned text passes ``pt-lint --strict`` and loads into a fresh
    :class:`~repro.core.datastore.PTDataStore` (covered by tests), giving
    one Execution whose PerfResults are the snapshot's metrics.
    """
    from ..ptdf.format import ResourceSet
    from ..ptdf.writer import PTdfWriter

    snap = _resolve(snapshot, registry)
    writer = PTdfWriter()
    writer.add_application(application)
    writer.add_execution(execution, application)
    focus_name = f"/{execution}"
    writer.add_resource(focus_name, "execution", execution)
    focus = ResourceSet((focus_name,), "primary")

    def result(metric: str, value: float, units: str) -> None:
        writer.add_perf_result(execution, focus, tool, metric, value, units)

    for name, data in snap.items():
        if data["type"] == "histogram":
            result(f"{name} (count)", float(data["count"]), "count")
            result(f"{name} (sum)", float(data["sum"]), data["unit"])
            result(f"{name} (mean)", float(data["mean"]), data["unit"])
            if data["max"] is not None:
                result(f"{name} (max)", float(data["max"]), data["unit"])
        else:
            result(name, float(data["value"]), data["unit"])
    return writer.render()


# ---------------------------------------------------------------- profiles

Profile = Mapping[str, Any]

_SORT_KEYS = {
    "time": "total_seconds",
    "calls": "calls",
    "mean": "mean_seconds",
    "rows": "rows_returned",
}


def _resolve_profile(profile: Optional[Profile]) -> Profile:
    if profile is not None:
        return profile
    from .profiler import profiler
    return profiler.snapshot()


def _top_statements(profile: Profile, top: Optional[int], sort: str) -> list:
    try:
        key = _SORT_KEYS[sort]
    except KeyError:
        raise ValueError(
            f"unknown profile sort {sort!r}; one of {sorted(_SORT_KEYS)}"
        ) from None
    ranked = sorted(profile["statements"], key=lambda s: s[key], reverse=True)
    return ranked[:top] if top else ranked


def render_profile_text(profile: Optional[Profile] = None, *,
                        top: Optional[int] = None, sort: str = "time") -> str:
    """The statement profile as an aligned table, hottest first.

    Statement rows are followed by the per-operator-type drift table
    (q-error of planner row estimates) when any metered plans were seen.
    """
    prof = _resolve_profile(profile)
    statements = _top_statements(prof, top, sort)
    if not statements:
        return "(no statements profiled)\n"
    lines = [
        f"{'calls':>7} {'total ms':>10} {'mean ms':>9} {'p95 ms':>9} "
        f"{'rows ret':>9} {'scanned':>9} {'hits':>6} {'err':>4} "
        f"{'plan':<12} statement"
    ]
    for s in statements:
        lines.append(
            f"{s['calls']:>7} {s['total_seconds'] * 1e3:>10.3f} "
            f"{s['mean_seconds'] * 1e3:>9.3f} {s['p95_seconds'] * 1e3:>9.3f} "
            f"{s['rows_returned']:>9} {s['rows_scanned']:>9} "
            f"{s['cache_hits']:>6} {s['errors']:>4} "
            f"{s['plan_hash'] or '-':<12} {s['fingerprint']}"
        )
    lines.append("")
    lines.append(
        f"{prof['calls']} calls profiled, {len(prof['statements'])} "
        f"statements tracked ({prof['evicted']} evicted), "
        f"{len(prof['flights'])} plans in the flight recorder"
    )
    if prof["drift"]:
        lines.append("")
        lines.append(
            f"{'operator':<16} {'nodes':>7} {'mean q':>8} {'p95 q':>8} "
            f"{'max q':>8} {'misest':>7}"
        )
        for op, d in prof["drift"].items():
            lines.append(
                f"{op:<16} {d['count']:>7} {d['mean_q']:>8.2f} "
                f"{d['p95_q']:>8.2f} {d['max_q']:>8.2f} {d['misestimates']:>7}"
            )
    return "\n".join(lines) + "\n"


def render_profile_json(profile: Optional[Profile] = None, *,
                        top: Optional[int] = None, sort: str = "time") -> str:
    """The profile snapshot as a stable JSON document."""
    prof = dict(_resolve_profile(profile))
    prof["statements"] = _top_statements(prof, top, sort)
    return json.dumps(prof, indent=2, sort_keys=True) + "\n"


def render_flight_text(profile: Optional[Profile] = None) -> str:
    """Recorded plans, oldest first, with per-node estimate vs actual.

    Nodes whose per-loop row estimate misses by a q-error of 4 or more
    are flagged with ``!`` — the planner drift the recorder exists to
    surface.
    """
    from .profiler import MISESTIMATE_Q, qerror

    prof = _resolve_profile(profile)
    if not prof["flights"]:
        return "(flight recorder is empty)\n"
    lines = []
    for flight in prof["flights"]:
        lines.append(
            f"[{flight['seq']}] {flight['trigger']} "
            f"{flight['seconds'] * 1e3:.3f} ms "
            f"rows={flight['rows_returned']} plan={flight['plan_hash']}"
        )
        lines.append(f"    {flight['fingerprint']}")
        for node in flight["nodes"]:
            indent = "  " * node["depth"]
            actuals = ""
            if node["rows"] is not None:
                est = node["est_rows"]
                loops = node["loops"] or 1
                drift = ""
                if est is not None and qerror(est, node["rows"] / loops) >= MISESTIMATE_Q:
                    drift = " !"
                ms = (node["seconds"] or 0.0) * 1e3
                actuals = (
                    f"  (est={est} actual={node['rows']} "
                    f"loops={loops} time={ms:.3f} ms{drift})"
                )
            lines.append(f"    {indent}{node['describe']}{actuals}")
        lines.append("")
    return "\n".join(lines)


def profile_to_ptdf(execution: str = "ptrack-profile", *,
                    profile: Optional[Profile] = None,
                    application: str = "PerfTrack",
                    tool: str = "ptrack-profiler") -> str:
    """Render a statement profile as PTdf.

    Each profiled fingerprint becomes an ``execution/statement`` resource
    under the execution (fingerprint and plan hash as resource
    attributes) carrying its statistics as PerfResults; drift and
    recorder totals land on the whole-execution focus.  The text passes
    ``pt-lint --strict`` and loads into a fresh store, so statement
    profiles can be compared across runs with the same pr-filter
    machinery as application data.
    """
    from ..ptdf.format import ResourceSet
    from ..ptdf.writer import PTdfWriter

    prof = _resolve_profile(profile)
    writer = PTdfWriter()
    writer.add_application(application)
    writer.add_execution(execution, application)
    writer.add_resource_type("execution/statement")
    focus_name = f"/{execution}"
    writer.add_resource(focus_name, "execution", execution)
    focus = ResourceSet((focus_name,), "primary")

    def result(rset: ResourceSet, metric: str, value: float, units: str) -> None:
        writer.add_perf_result(execution, rset, tool, metric, float(value), units)

    result(focus, "profile.calls", prof["calls"], "count")
    result(focus, "profile.statements", len(prof["statements"]), "count")
    result(focus, "profile.flights", len(prof["flights"]), "count")
    for op, d in prof["drift"].items():
        result(focus, f"drift.{op} (mean q-error)", d["mean_q"], "ratio")
        result(focus, f"drift.{op} (p95 q-error)", d["p95_q"], "ratio")
        result(focus, f"drift.{op} (misestimates)", d["misestimates"], "count")
    for i, s in enumerate(prof["statements"], 1):
        rname = f"{focus_name}/stmt-{i:03d}"
        writer.add_resource(rname, "execution/statement", execution)
        writer.add_resource_attribute(rname, "fingerprint", s["fingerprint"])
        if s["plan_hash"]:
            writer.add_resource_attribute(rname, "plan hash", s["plan_hash"])
        sfocus = ResourceSet((rname,), "primary")
        result(sfocus, "calls", s["calls"], "count")
        result(sfocus, "errors", s["errors"], "count")
        result(sfocus, "cache hits", s["cache_hits"], "count")
        result(sfocus, "rows scanned", s["rows_scanned"], "rows")
        result(sfocus, "rows returned", s["rows_returned"], "rows")
        result(sfocus, "total time", s["total_seconds"], "seconds")
        result(sfocus, "mean time", s["mean_seconds"], "seconds")
        result(sfocus, "p95 time", s["p95_seconds"], "seconds")
        result(sfocus, "max time", s["max_seconds"], "seconds")
    return writer.render()
