"""Render metrics snapshots: text, JSON, Prometheus exposition, and PTdf.

The PTdf exporter is the poetic closing of the loop: PerfTrack emits its own
telemetry in the paper's data format, so a metrics snapshot can be loaded
back into a :class:`~repro.core.datastore.PTDataStore` and diagnosed with
the same pr-filter machinery used on application data.  Mapping:

* ``Application PerfTrack`` — the instrumented program,
* ``Execution <name> PerfTrack`` — one snapshot export,
* ``Resource /<name> execution <name>`` — the whole-execution focus,
* one ``PerfResult`` per counter/gauge (metric = the metric name, units =
  the instrument's unit), and four per histogram (``(count)``, ``(sum)``,
  ``(mean)``, ``(max)`` facets, each with a consistent units string).
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, Mapping, Optional

from .metrics import MetricsRegistry, metrics

__all__ = [
    "render_text",
    "render_json",
    "render_prometheus",
    "to_ptdf",
]

Snapshot = Mapping[str, Mapping[str, Any]]


def _resolve(snapshot: Optional[Snapshot],
             registry: Optional[MetricsRegistry]) -> Snapshot:
    if snapshot is not None:
        return snapshot
    return (registry or metrics).snapshot()


# ---------------------------------------------------------------- text


def render_text(snapshot: Optional[Snapshot] = None, *,
                registry: Optional[MetricsRegistry] = None) -> str:
    """Aligned human-readable table, one metric per line."""
    snap = _resolve(snapshot, registry)
    if not snap:
        return "(no metrics recorded)\n"
    width = max(len(name) for name in snap)
    lines = []
    for name, data in snap.items():
        if data["type"] == "histogram":
            value = (
                f"count={data['count']} sum={data['sum']:.6g} "
                f"mean={data['mean']:.6g} max={data['max']:.6g} {data['unit']}"
            )
        else:
            v = data["value"]
            value = f"{v:.6g} {data['unit']}" if isinstance(v, float) else f"{v} {data['unit']}"
        lines.append(f"{name:<{width}}  {value}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------- JSON


def render_json(snapshot: Optional[Snapshot] = None, *,
                registry: Optional[MetricsRegistry] = None) -> str:
    """The snapshot as a stable JSON document."""
    snap = _resolve(snapshot, registry)
    return json.dumps(snap, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------- Prometheus

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return _PROM_BAD.sub("_", name)


def render_prometheus(snapshot: Optional[Snapshot] = None, *,
                      registry: Optional[MetricsRegistry] = None) -> str:
    """Prometheus text exposition format (v0.0.4).

    Histograms render cumulative ``_bucket{le=...}`` series plus ``_sum``
    and ``_count``, counters get a ``_total`` suffix.
    """
    snap = _resolve(snapshot, registry)
    lines = []
    for name, data in snap.items():
        pname = _prom_name(name)
        kind = data["type"]
        if kind == "counter":
            lines.append(f"# TYPE {pname}_total counter")
            lines.append(f"{pname}_total {data['value']}")
        elif kind == "gauge":
            lines.append(f"# TYPE {pname} gauge")
            lines.append(f"{pname} {data['value']}")
        else:
            lines.append(f"# TYPE {pname} histogram")
            cumulative = 0
            for bound, count in data["buckets"]:
                cumulative += count
                le = "+Inf" if math.isinf(bound) else f"{bound:.9g}"
                lines.append(f'{pname}_bucket{{le="{le}"}} {cumulative}')
            if not data["buckets"] or not math.isinf(data["buckets"][-1][0]):
                lines.append(f'{pname}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{pname}_sum {data['sum']}")
            lines.append(f"{pname}_count {data['count']}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------- PTdf


def to_ptdf(execution: str = "ptrack-telemetry", *,
            snapshot: Optional[Snapshot] = None,
            registry: Optional[MetricsRegistry] = None,
            application: str = "PerfTrack",
            tool: str = "ptrack-obs") -> str:
    """Render a metrics snapshot as PTdf telemetry.

    The returned text passes ``pt-lint --strict`` and loads into a fresh
    :class:`~repro.core.datastore.PTDataStore` (covered by tests), giving
    one Execution whose PerfResults are the snapshot's metrics.
    """
    from ..ptdf.format import ResourceSet
    from ..ptdf.writer import PTdfWriter

    snap = _resolve(snapshot, registry)
    writer = PTdfWriter()
    writer.add_application(application)
    writer.add_execution(execution, application)
    focus_name = f"/{execution}"
    writer.add_resource(focus_name, "execution", execution)
    focus = ResourceSet((focus_name,), "primary")

    def result(metric: str, value: float, units: str) -> None:
        writer.add_perf_result(execution, focus, tool, metric, value, units)

    for name, data in snap.items():
        if data["type"] == "histogram":
            result(f"{name} (count)", float(data["count"]), "count")
            result(f"{name} (sum)", float(data["sum"]), data["unit"])
            result(f"{name} (mean)", float(data["mean"]), data["unit"])
            if data["max"] is not None:
                result(f"{name} (max)", float(data["max"]), data["unit"])
        else:
            result(name, float(data["value"]), data["unit"])
    return writer.render()
