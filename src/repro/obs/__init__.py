"""Self-instrumentation for the PerfTrack reproduction.

A zero-dependency observability subsystem threaded through every layer of
the stack (minidb engine, PTdf loaders, datastore/query core, CLI):

* :data:`metrics` — the process-wide :class:`MetricsRegistry` (counters,
  gauges, log2-binned histograms; thread-safe; **disabled by default** so
  the hot paths pay only a predicate check),
* :data:`trace` — the process-wide :class:`Tracer` (hierarchical spans,
  ring buffer, Chrome-trace JSON export),
* :data:`profiler` — the process-wide :class:`StatementProfiler`
  (per-fingerprint statement statistics, plan flight recorder,
  estimate-vs-actual drift; also disabled by default),
* exporters — :func:`render_text` / :func:`render_json` /
  :func:`render_prometheus` / :func:`to_ptdf` (PerfTrack loading its own
  telemetry as PTdf), plus :func:`render_profile_text` /
  :func:`render_flight_text` / :func:`profile_to_ptdf` for profiles,
* :func:`configure_logging` / :func:`get_logger` — stdlib logging under
  the ``ptrack`` hierarchy, level via ``--log-level`` or ``$PTRACK_LOG``.

See ``docs/observability.md`` for the metric catalogue and span taxonomy.
"""

from .clock import now, wall_clock
from .export import (
    profile_to_ptdf,
    render_flight_text,
    render_json,
    render_profile_json,
    render_profile_text,
    render_prometheus,
    render_text,
    to_ptdf,
)
from .logsetup import configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metrics
from .profiler import FlightRecord, StatementProfiler, StatementStats, profiler
from .tracing import Span, Tracer, trace

__all__ = [
    "Counter",
    "FlightRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "StatementProfiler",
    "StatementStats",
    "Tracer",
    "configure_logging",
    "get_logger",
    "metrics",
    "now",
    "profile_to_ptdf",
    "profiler",
    "render_flight_text",
    "render_json",
    "render_profile_json",
    "render_profile_text",
    "render_prometheus",
    "render_text",
    "to_ptdf",
    "trace",
    "wall_clock",
]
