"""Hierarchical span tracing with a ring buffer and Chrome-trace export.

``trace.span("load")`` opens a span; spans started while another is open on
the same thread become its children (depth is tracked per-thread).  Closed
spans land in a bounded ring buffer — steady-state tracing cannot grow
memory without bound — and can be exported in the Chrome trace-event format
(``chrome://tracing`` / Perfetto ``"X"`` complete events).

Like the metrics registry, the tracer starts disabled and then costs one
predicate check per ``span()`` call: a shared no-op context manager is
returned so nothing is allocated or recorded.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Dict, List, Optional

from .clock import now

__all__ = ["Span", "Tracer", "trace"]


class Span:
    """One closed span: name, category, start/duration, depth, thread."""

    __slots__ = ("name", "cat", "start", "duration", "depth", "tid", "args")

    def __init__(self, name: str, cat: str, start: float, duration: float,
                 depth: int, tid: int, args: Dict[str, Any]) -> None:
        self.name = name
        self.cat = cat
        self.start = start
        self.duration = duration
        self.depth = depth
        self.tid = tid
        self.args = args

    def to_chrome_event(self) -> Dict[str, Any]:
        """Chrome trace-event ``"X"`` (complete) event, microsecond units."""
        event: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": round(self.start * 1e6, 3),
            "dur": round(self.duration * 1e6, 3),
            "pid": 1,
            "tid": self.tid,
        }
        if self.args:
            event["args"] = self.args
        return event


class _NullSpan:
    """Shared do-nothing context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager recording one span into the tracer on exit."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_LiveSpan":
        state = self._tracer._state
        self._depth = getattr(state, "depth", 0)
        state.depth = self._depth + 1
        self._start = now()
        return self

    def __exit__(self, *exc: Any) -> None:
        end = now()
        self._tracer._state.depth = self._depth
        self._tracer._record(
            Span(self.name, self.cat, self._start, end - self._start,
                 self._depth, threading.get_ident() & 0xFFFF, self.args)
        )


class Tracer:
    """Span recorder with a bounded ring buffer.

    ``capacity`` bounds retained spans; once full, the oldest are evicted
    (ring-buffer semantics via :class:`collections.deque`).
    """

    def __init__(self, capacity: int = 10000) -> None:
        self.enabled = False
        self.capacity = capacity
        self._buffer: deque = deque(maxlen=capacity)
        self._state = threading.local()

    # -- recording ---------------------------------------------------------------

    def span(self, name: str, cat: str = "ptrack", **args: Any):
        """Open a span; use as ``with trace.span("load"): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, cat, args)

    def _record(self, span: Span) -> None:
        self._buffer.append(span)

    # -- lifecycle ---------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._buffer.clear()

    # -- read side ---------------------------------------------------------------

    def spans(self) -> List[Span]:
        """Recorded spans, oldest first (a copy; safe to iterate)."""
        return list(self._buffer)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The whole buffer as a Chrome trace-event JSON object."""
        return {
            "traceEvents": [s.to_chrome_event() for s in self._buffer],
            "displayTimeUnit": "ms",
        }

    def save(self, path: str) -> int:
        """Write the Chrome trace JSON to ``path``; returns span count."""
        doc = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
        return len(doc["traceEvents"])


#: The process-wide tracer every subsystem opens spans on.
trace = Tracer()
