"""Stdlib logging wiring for PerfTrack.

Everything in ``src/`` logs under the ``ptrack`` logger hierarchy
(``ptrack.minidb.wal``, ``ptrack.load``, ...).  :func:`configure_logging`
attaches one stderr handler to the root ``ptrack`` logger; the level comes
from (highest precedence first) the explicit argument, the ``PTRACK_LOG``
environment variable, or ``warning``.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

__all__ = ["configure_logging", "get_logger"]

_ROOT = "ptrack"

LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: str = "") -> logging.Logger:
    """A logger in the ``ptrack`` hierarchy (``get_logger("minidb.wal")``)."""
    return logging.getLogger(f"{_ROOT}.{name}" if name else _ROOT)


def configure_logging(level: Optional[str] = None, stream=None) -> logging.Logger:
    """Attach a stderr handler to the ``ptrack`` logger (idempotent).

    ``level`` falls back to ``$PTRACK_LOG``, then ``warning``.  Calling
    again reconfigures the level and reuses the existing handler.
    """
    name = (level or os.environ.get("PTRACK_LOG") or "warning").lower()
    if name not in LEVELS:
        raise ValueError(f"bad log level {name!r}; expected one of {LEVELS}")
    logger = get_logger()
    logger.setLevel(getattr(logging, name.upper()))
    if not logger.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
        logger.propagate = False
    return logger
