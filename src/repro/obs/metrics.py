"""Process-wide metrics registry: counters, gauges, log2-binned histograms.

Design constraints (see docs/observability.md):

* **Zero dependencies** — stdlib only.
* **Near-zero overhead when disabled.**  Every instrument holds a reference
  to its registry and checks ``registry.enabled`` itself, so call sites are
  a single unconditional method call (``C.inc()``) with an early return —
  no branching or ``if obs:`` clutter at the instrumentation points.  Hot
  loops should still aggregate locally and call ``add(n)`` once per batch.
* **Thread-safe.**  Mutations take a per-instrument lock; ``snapshot()``
  returns an independent deep copy so readers never see torn state.
* **Stable snapshot schema.**  ``snapshot()`` maps metric name to a plain
  dict (``type``/``unit``/values) that the exporters in
  :mod:`repro.obs.export` render as text, JSON, Prometheus exposition, or
  PTdf telemetry.

Histograms use fixed log2 bins: an observation ``v`` lands in the bin whose
upper bound is ``2**e`` where ``2**(e-1) < v <= 2**e``, clamped to
``[2**MIN_EXP, 2**MAX_EXP]``.  Bin upper bounds are **inclusive** so the
Prometheus exposition's ``le`` (less-or-equal) bucket labels are exact: an
observation of precisely ``1.0`` counts in ``le="1"``, not ``le="2"``.
With seconds as the unit this spans ~1 microsecond to ~17 minutes in 31
bins.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics",
]

#: Smallest histogram bin upper bound is 2**MIN_EXP (~9.5e-7 s).
MIN_EXP = -20
#: Largest finite bin upper bound is 2**MAX_EXP (1024 s); above that, +Inf.
MAX_EXP = 10
_NBINS = MAX_EXP - MIN_EXP + 2  # one underflow bin + one +Inf overflow bin


class _Instrument:
    """Base: a named instrument bound to one registry."""

    __slots__ = ("name", "unit", "description", "_registry", "_lock")

    def __init__(self, registry: "MetricsRegistry", name: str, unit: str,
                 description: str) -> None:
        self.name = name
        self.unit = unit
        self.description = description
        self._registry = registry
        self._lock = threading.Lock()


class Counter(_Instrument):
    """Monotonically increasing count (events, rows, bytes)."""

    __slots__ = ("_value",)

    def __init__(self, registry: "MetricsRegistry", name: str,
                 unit: str = "count", description: str = "") -> None:
        super().__init__(registry, name, unit, description)
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += n

    add = inc

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        self._value = 0

    def _snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "unit": self.unit, "value": self._value}


class Gauge(_Instrument):
    """Point-in-time value that can go up and down (rates, sizes)."""

    __slots__ = ("_value",)

    def __init__(self, registry: "MetricsRegistry", name: str,
                 unit: str = "value", description: str = "") -> None:
        super().__init__(registry, name, unit, description)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        self._value = 0.0

    def _snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "unit": self.unit, "value": self._value}


class Histogram(_Instrument):
    """Distribution with fixed log2 bins plus count/sum/min/max."""

    __slots__ = ("_count", "_sum", "_min", "_max", "_bins")

    def __init__(self, registry: "MetricsRegistry", name: str,
                 unit: str = "seconds", description: str = "") -> None:
        super().__init__(registry, name, unit, description)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._bins = [0] * _NBINS

    @staticmethod
    def bin_index(value: float) -> int:
        """Bin for ``value``: 0 is underflow (<= 2**MIN_EXP), last is +Inf.

        Upper bounds are inclusive (``le`` semantics): a value exactly equal
        to ``2**e`` belongs to the bin whose bound is ``2**e``, which is what
        Prometheus ``_bucket{le=...}`` series promise.
        """
        if value <= 2.0 ** MIN_EXP:
            return 0
        m, exp = math.frexp(value)  # value = m * 2**exp with 0.5 <= m < 1
        if m == 0.5:
            exp -= 1  # exact power of two: its own bound's bin, not the next
        if exp > MAX_EXP:
            return _NBINS - 1
        return exp - MIN_EXP

    @staticmethod
    def bin_upper_bound(index: int) -> float:
        """Inclusive upper bound of bin ``index`` (+Inf for the last bin)."""
        if index >= _NBINS - 1:
            return math.inf
        return 2.0 ** (MIN_EXP + index)

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._bins[self.bin_index(value)] += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def buckets(self) -> List[Tuple[float, int]]:
        """Non-empty ``(upper_bound, count)`` pairs, bounds ascending."""
        return [
            (self.bin_upper_bound(i), n)
            for i, n in enumerate(self._bins)
            if n
        ]

    def _reset(self) -> None:
        self._count = 0
        self._sum = 0.0
        self._min = None
        self._max = None
        self._bins = [0] * _NBINS

    def _snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "unit": self.unit,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "mean": self.mean,
            "buckets": self.buckets(),
        }


class MetricsRegistry:
    """Thread-safe collection of named instruments.

    Instruments are created lazily and cached by name; asking twice for the
    same name returns the same object (a type mismatch is a programming
    error and raises).  The registry starts **disabled**: every instrument
    mutation is a no-op until :meth:`enable` is called, so the engine's hot
    paths pay only a predicate check by default.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    # -- lifecycle ---------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every instrument (registration is kept)."""
        with self._lock:
            for inst in self._instruments.values():
                with inst._lock:
                    inst._reset()

    # -- registration ------------------------------------------------------------

    def _get(self, cls: type, name: str, unit: str, description: str) -> Any:
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(self, name, unit, description)
                self._instruments[name] = inst
            elif not isinstance(inst, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, not {cls.__name__}"
                )
            return inst

    def counter(self, name: str, unit: str = "count",
                description: str = "") -> Counter:
        return self._get(Counter, name, unit, description)

    def gauge(self, name: str, unit: str = "value",
              description: str = "") -> Gauge:
        return self._get(Gauge, name, unit, description)

    def histogram(self, name: str, unit: str = "seconds",
                  description: str = "") -> Histogram:
        return self._get(Histogram, name, unit, description)

    # -- read side ---------------------------------------------------------------

    def __iter__(self) -> Iterator[_Instrument]:
        with self._lock:
            return iter(list(self._instruments.values()))

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def snapshot(self, include_zero: bool = False) -> Dict[str, Dict[str, Any]]:
        """Deep-copied view of every instrument, keyed by metric name.

        By default instruments that never fired are omitted so exports stay
        focused on what actually ran; pass ``include_zero=True`` for the
        full catalogue.
        """
        out: Dict[str, Dict[str, Any]] = {}
        with self._lock:
            instruments = sorted(self._instruments.items())
        for name, inst in instruments:
            with inst._lock:
                snap = inst._snapshot()
            if not include_zero:
                if snap["type"] == "histogram" and snap["count"] == 0:
                    continue
                if snap["type"] != "histogram" and not snap["value"]:
                    continue
            out[name] = snap
        return out


#: The process-wide registry every subsystem instruments against.
metrics = MetricsRegistry()
