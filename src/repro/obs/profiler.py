"""Statement profiler and plan flight recorder.

The profiler is the engine-side analogue of ``pg_stat_statements`` plus
``auto_explain``: while enabled it aggregates per-*fingerprint* statement
statistics (calls, rows scanned/returned, total/mean/p95 seconds, plan
hash, cache hits) in a bounded LRU table, and captures the full
EXPLAIN-ANALYZE-style operator tree — per-operator actual rows, loops,
time **and** the planner's estimated rows — into a ring buffer for
statements that exceed a slow threshold or match a sample rate.

Plans are never re-executed to get actuals: while the profiler is on,
the connection arms the same per-operator metering EXPLAIN ANALYZE uses
(``Executor(meter=True)``) and hands the already-metered tree snapshot
here at finalize time.  The per-node estimate-vs-actual pairs also feed
q-error histograms per operator type ("drift"), surfacing planner
misestimates without anyone running EXPLAIN ANALYZE by hand.

Like the metrics registry and tracer, the profiler starts **disabled**
and the query path then pays a single predicate check per statement.
The singleton is :data:`profiler`; ``ptrack profile`` renders it.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional

from .metrics import Histogram, metrics as _M

__all__ = ["FlightRecord", "StatementProfiler", "StatementStats", "profiler"]

#: q-error at or above which a node counts as a planner misestimate.
MISESTIMATE_Q = 4.0

# Drift counters live in the global registry too, so `ptrack stats` and
# the Prometheus render see them when metrics are enabled alongside the
# profiler.  (The profiler keeps its own authoritative tallies: it can be
# on while the registry is off.)
_DRIFT_NODES = _M.counter("minidb.drift.nodes", unit="nodes")
_DRIFT_MISEST = _M.counter("minidb.drift.misestimates", unit="nodes")
_FLIGHTS = _M.counter("minidb.profiler.flights")
_EVICTIONS = _M.counter("minidb.profiler.evictions")


def qerror(est: float, actual: float) -> float:
    """Symmetric estimation error: ``max(e/a, a/e)`` with a floor of 1 row.

    Always >= 1.0; a perfect estimate scores exactly 1.0.  The floor keeps
    empty results from producing infinite error (the convention used by
    the "How Good Are Query Optimizers, Really?" cardinality benchmarks).
    """
    e = max(float(est), 1.0)
    a = max(float(actual), 1.0)
    return e / a if e >= a else a / e


def plan_hash(nodes: List[Dict[str, Any]]) -> str:
    """Stable short hash of a plan's shape (operators + arguments).

    Depends only on the ``depth``/``describe`` skeleton, not on actuals,
    so repeated executions of the same plan — and the same statement
    across processes — hash identically.
    """
    h = hashlib.blake2b(digest_size=6)
    for node in nodes:
        h.update(b"%d|" % node["depth"])
        h.update(node["describe"].encode("utf-8", "replace"))
        h.update(b"\n")
    return h.hexdigest()


class _P95Bins:
    """Log2-binned latency sketch: p95 in O(1) memory per fingerprint.

    Reuses the registry histogram's le-inclusive bin geometry
    (:meth:`Histogram.bin_index`) so profiler percentiles and Prometheus
    buckets quantize identically.
    """

    __slots__ = ("bins",)

    def __init__(self) -> None:
        self.bins: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        i = Histogram.bin_index(value)
        self.bins[i] = self.bins.get(i, 0) + 1

    def quantile(self, q: float) -> float:
        """Upper bound of the bin containing the q-quantile observation."""
        total = sum(self.bins.values())
        if total == 0:
            return 0.0
        rank = max(1, int(q * total + 0.9999999))
        seen = 0
        for i in sorted(self.bins):
            seen += self.bins[i]
            if seen >= rank:
                return Histogram.bin_upper_bound(i)
        return Histogram.bin_upper_bound(max(self.bins))


class StatementStats:
    """Aggregate execution statistics for one statement fingerprint."""

    __slots__ = (
        "fingerprint", "example", "calls", "errors", "cache_hits",
        "rows_scanned", "rows_returned", "total_seconds", "max_seconds",
        "plan_hash", "_p95",
    )

    def __init__(self, fingerprint: str, example: str) -> None:
        self.fingerprint = fingerprint
        self.example = example
        self.calls = 0
        self.errors = 0
        self.cache_hits = 0
        self.rows_scanned = 0
        self.rows_returned = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.plan_hash: Optional[str] = None
        self._p95 = _P95Bins()

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    @property
    def p95_seconds(self) -> float:
        return self._p95.quantile(0.95)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "example": self.example,
            "calls": self.calls,
            "errors": self.errors,
            "cache_hits": self.cache_hits,
            "rows_scanned": self.rows_scanned,
            "rows_returned": self.rows_returned,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "p95_seconds": self.p95_seconds,
            "max_seconds": self.max_seconds,
            "plan_hash": self.plan_hash,
        }


class FlightRecord:
    """One recorded plan: the metered operator tree of a single execution."""

    __slots__ = ("fingerprint", "plan_hash", "seconds", "rows_returned",
                 "trigger", "nodes", "seq")

    def __init__(self, fingerprint: str, plan: str, seconds: float,
                 rows_returned: int, trigger: str,
                 nodes: List[Dict[str, Any]], seq: int) -> None:
        self.fingerprint = fingerprint
        self.plan_hash = plan
        self.seconds = seconds
        self.rows_returned = rows_returned
        self.trigger = trigger  # "slow" or "sample"
        self.nodes = nodes
        self.seq = seq

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "fingerprint": self.fingerprint,
            "plan_hash": self.plan_hash,
            "seconds": self.seconds,
            "rows_returned": self.rows_returned,
            "trigger": self.trigger,
            "nodes": [dict(n) for n in self.nodes],
        }


class _OpDrift:
    """Per-operator-type q-error aggregate."""

    __slots__ = ("count", "misestimates", "sum_q", "max_q", "_bins")

    def __init__(self) -> None:
        self.count = 0
        self.misestimates = 0
        self.sum_q = 0.0
        self.max_q = 1.0
        self._bins = _P95Bins()

    def observe(self, q: float) -> None:
        self.count += 1
        self.sum_q += q
        if q > self.max_q:
            self.max_q = q
        if q >= MISESTIMATE_Q:
            self.misestimates += 1
        self._bins.observe(q)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "misestimates": self.misestimates,
            "mean_q": self.sum_q / self.count if self.count else 0.0,
            "p95_q": self._bins.quantile(0.95),
            "max_q": self.max_q,
        }


class StatementProfiler:
    """Bounded per-fingerprint statistics + plan flight recorder.

    ``max_statements`` bounds the LRU stats table (least recently
    *executed* fingerprint is evicted; an eviction counter records the
    loss).  ``flight_capacity`` bounds the plan ring buffer.  A plan is
    recorded when its statement ran for at least ``slow_seconds``, or
    unconditionally for every ``sample_every``-th profiled statement
    (0 disables sampling).
    """

    def __init__(self, max_statements: int = 256, flight_capacity: int = 64,
                 slow_seconds: float = 0.1, sample_every: int = 0) -> None:
        self.enabled = False
        self.max_statements = max_statements
        self.slow_seconds = slow_seconds
        self.sample_every = sample_every
        self._stats: "OrderedDict[str, StatementStats]" = OrderedDict()
        self._flights: deque = deque(maxlen=flight_capacity)
        self._drift: Dict[str, _OpDrift] = {}
        self._calls = 0
        self._evicted = 0
        self._seq = 0
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def enable(self, slow_seconds: Optional[float] = None,
               sample_every: Optional[int] = None,
               max_statements: Optional[int] = None,
               flight_capacity: Optional[int] = None) -> None:
        if slow_seconds is not None:
            self.slow_seconds = slow_seconds
        if sample_every is not None:
            self.sample_every = sample_every
        if max_statements is not None:
            self.max_statements = max_statements
        if flight_capacity is not None:
            self._flights = deque(self._flights, maxlen=flight_capacity)
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
            self._flights.clear()
            self._drift.clear()
            self._calls = 0
            self._evicted = 0
            self._seq = 0

    # -- recording ---------------------------------------------------------------

    def record(
        self,
        fingerprint: str,
        sql: str,
        seconds: float,
        rows_returned: int = 0,
        rows_scanned: int = 0,
        plan: Optional[List[Dict[str, Any]]] = None,
        cache_hit: bool = False,
        error: bool = False,
    ) -> None:
        """Finalize one statement execution.

        ``plan`` is a :func:`repro.minidb.operators.plan_snapshot` list for
        metered executions (``None`` for DDL/transaction statements, which
        have no operator tree).  Called once per execution, after any
        result stream has drained, so ``seconds`` covers the full pull.
        """
        if not self.enabled:
            return
        with self._lock:
            self._calls += 1
            stats = self._stats.get(fingerprint)
            if stats is None:
                stats = StatementStats(fingerprint, " ".join(sql.split())[:200])
                self._stats[fingerprint] = stats
                while len(self._stats) > self.max_statements:
                    self._stats.popitem(last=False)
                    self._evicted += 1
                    _EVICTIONS.inc()
            else:
                self._stats.move_to_end(fingerprint)
            stats.calls += 1
            stats.total_seconds += seconds
            if seconds > stats.max_seconds:
                stats.max_seconds = seconds
            stats._p95.observe(seconds)
            stats.rows_returned += rows_returned
            stats.rows_scanned += rows_scanned
            stats.cache_hits += cache_hit
            stats.errors += error
            if plan:
                stats.plan_hash = plan_hash(plan)
                self._observe_drift(plan)
                trigger = None
                if seconds >= self.slow_seconds:
                    trigger = "slow"
                elif self.sample_every and self._calls % self.sample_every == 0:
                    trigger = "sample"
                if trigger is not None:
                    self._seq += 1
                    _FLIGHTS.inc()
                    self._flights.append(FlightRecord(
                        fingerprint, stats.plan_hash, seconds, rows_returned,
                        trigger, plan, self._seq,
                    ))

    def _observe_drift(self, plan: List[Dict[str, Any]]) -> None:
        for node in plan:
            est, actual = node.get("est_rows"), node.get("rows")
            if est is None or actual is None:
                continue
            loops = node.get("loops") or 1
            # est_rows is per-open; actuals accumulate across re-opens
            # (the inner side of a nested-loop join), so compare per-loop.
            q = qerror(est, actual / loops)
            _DRIFT_NODES.inc()
            if q >= MISESTIMATE_Q:
                _DRIFT_MISEST.inc()
            drift = self._drift.get(node["op"])
            if drift is None:
                drift = self._drift[node["op"]] = _OpDrift()
            drift.observe(q)

    # -- read side ---------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deep-copied profile state, safe to render or serialize."""
        with self._lock:
            return {
                "statements": [s.to_dict() for s in self._stats.values()],
                "flights": [f.to_dict() for f in self._flights],
                "drift": {op: d.to_dict() for op, d in sorted(self._drift.items())},
                "calls": self._calls,
                "evicted": self._evicted,
            }


#: The process-wide statement profiler; the minidb connection feeds it.
profiler = StatementProfiler()
