"""In-memory views of resources and resource types.

These light objects are what the data store hands back from lookups; they
carry database ids so follow-up queries (children, attributes, ancestors)
stay cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..ptdf.format import base_name as _base_name
from ..ptdf.format import parent_name as _parent_name
from ..ptdf.format import split_name as _split_name


@dataclass(frozen=True)
class ResourceType:
    """One node in the resource type system (``focus_framework`` row)."""

    id: int
    name: str  # full path, e.g. "grid/machine/partition"
    parent_id: Optional[int] = None

    @property
    def base(self) -> str:
        """Last segment of the type path (``partition``)."""
        return self.name.rsplit("/", 1)[-1]

    @property
    def depth(self) -> int:
        return self.name.count("/") + 1

    @property
    def is_hierarchical(self) -> bool:
        return self.depth > 1 or self.parent_id is not None


@dataclass(frozen=True)
class Resource:
    """One resource (``resource_item`` row)."""

    id: int
    name: str  # full path-style unique name
    type_name: str  # full type path
    type_id: int
    parent_id: Optional[int] = None
    execution_id: Optional[int] = None

    @property
    def base(self) -> str:
        """The base name (paper Section 2.1), e.g. ``batch``."""
        return _base_name(self.name)

    @property
    def parent_name(self) -> Optional[str]:
        return _parent_name(self.name)

    @property
    def segments(self) -> list[str]:
        return _split_name(self.name)

    @property
    def depth(self) -> int:
        return len(self.segments)


@dataclass(frozen=True)
class ResourceAttribute:
    """One attribute of a resource."""

    resource_id: int
    name: str
    value: str
    attr_type: str = "string"


@dataclass
class ResourceTree:
    """A materialised subtree of the resource hierarchy (for display)."""

    resource: Resource
    children: list["ResourceTree"] = field(default_factory=list)

    def walk(self):
        yield self.resource
        for child in self.children:
            yield from child.walk()

    def render(self, indent: int = 0) -> str:
        lines = [" " * indent + self.resource.base]
        for child in self.children:
            lines.append(child.render(indent + 2))
        return "\n".join(lines)
