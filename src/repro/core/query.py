"""Query evaluation: pr-filters over stored performance results.

Semantics (paper Section 2.2): a pr-filter matches a context ``C`` iff
every resource family intersects ``C``.  A performance result is selected
when **some** context of that result matches the whole filter.  The
implementation works focus-first:

1. per family, find the focus ids that contain at least one family member
   (an indexed probe on ``focus_has_resource``),
2. intersect the focus-id sets across families, and
3. map surviving foci to performance-result ids.

This is exactly the ∃-context ∀-family semantics, and it is also the shape
that makes the GUI's live match counts cheap (Figure 3: per-family count
and whole-filter count as the query is built).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from typing import TYPE_CHECKING

from ..obs.clock import now as _now
from ..obs.metrics import metrics as _M
from ..obs.tracing import trace as _trace
from .datastore import PTDataStore
from .filters import FamilySpec, PrFilter, ResourceFamily
from .results import Context, PerformanceResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .shards import ShardedPTDataStore

_CHUNK = 400  # stay under sqlite's default 999-parameter limit

# Query-layer metrics (no-ops while the registry is disabled).
_PRFILTER_EVALS = _M.counter("query.prfilter_evaluations")
_PRFILTER_SECONDS = _M.histogram("query.prfilter_seconds")
_RESULTS_MATCHED = _M.counter("query.results_matched", unit="results")
_RESULTS_FETCHED = _M.counter("query.results_fetched", unit="results")
_FETCH_SECONDS = _M.histogram("query.fetch_seconds")

# Scatter-gather metrics (see docs/observability.md).
_SCATTER_MERGES = _M.counter("shard.scatter_gather_merges")
_SHARD_SHORT_CIRCUITS = _M.counter("shard.short_circuits")
_DESC_EXPANSIONS = _M.counter("shard.descendant_expansions")
_EVAL_INDEX_BUILDS = _M.counter("shard.eval_index_builds")
_EVAL_INDEX_BUILD_SECONDS = _M.histogram("shard.eval_index_build_seconds")


def _chunks(values: Sequence, size: int = _CHUNK):
    for i in range(0, len(values), size):
        yield values[i : i + size]


class QueryEngine:
    """Evaluates pr-filters and materialises result objects."""

    def __init__(self, store: PTDataStore) -> None:
        self.store = store

    # -- family / filter matching -------------------------------------------------

    def matching_focus_ids(self, family: ResourceFamily) -> set[int]:
        """Focus ids whose resource set intersects *family*."""
        ids = sorted(family.resource_ids)
        out: set[int] = set()
        for chunk in _chunks(ids):
            marks = ",".join("?" * len(chunk))
            rows = self.store.backend.stream(  # noqa: PTL001 — '?' marks only
                f"SELECT DISTINCT focus_id FROM focus_has_resource "
                f"WHERE resource_id IN ({marks})",
                chunk,
            )
            out.update(r[0] for r in rows)
        return out

    def _result_ids_for_focus_ids(
        self, focus_ids: Iterable[int], focus_type: Optional[str] = None
    ) -> set[int]:
        ids = sorted(focus_ids)
        out: set[int] = set()
        for chunk in _chunks(ids):
            marks = ",".join("?" * len(chunk))
            sql = (
                f"SELECT DISTINCT performance_result_id "
                f"FROM performance_result_has_focus "
                f"WHERE focus_id IN ({marks})"
            )
            params = list(chunk)
            if focus_type is not None:
                sql += " AND focus_type = ?"
                params.append(focus_type)
            rows = self.store.backend.stream(sql, params)
            out.update(r[0] for r in rows)
        return out

    def result_ids(
        self,
        families: Sequence[ResourceFamily],
        focus_type: Optional[str] = None,
    ) -> set[int]:
        """Performance-result ids matching the whole pr-filter.

        An empty filter matches everything (vacuous ∀) — the GUI uses that
        as the starting count.  ``focus_type`` restricts matching to
        contexts of one kind (e.g. ``"sender"`` to find message-transit
        results by their sending side).
        """
        if not (_M.enabled or _trace.enabled):
            return self._result_ids_inner(families, focus_type)
        t0 = _now()
        with _trace.span("query.evaluate", cat="query", families=len(families)):
            out = self._result_ids_inner(families, focus_type)
        _PRFILTER_SECONDS.observe(_now() - t0)
        _PRFILTER_EVALS.inc()
        _RESULTS_MATCHED.add(len(out))
        return out

    def _result_ids_inner(
        self,
        families: Sequence[ResourceFamily],
        focus_type: Optional[str] = None,
    ) -> set[int]:
        if not families:
            if focus_type is None:
                rows = self.store.backend.stream("SELECT id FROM performance_result")
                return {r[0] for r in rows}
            rows = self.store.backend.stream(  # noqa: PTL001 — '?' marks only
                "SELECT DISTINCT performance_result_id "
                "FROM performance_result_has_focus WHERE focus_type = ?",
                (focus_type,),
            )
            return {r[0] for r in rows}
        # Intersect incrementally, smallest family first: the moment the
        # surviving set goes empty no further family needs to be probed
        # (∀-family semantics short-circuit on the first empty meet).
        surviving: Optional[set[int]] = None
        for fam in sorted(families, key=lambda f: len(f.resource_ids)):
            matched = self.matching_focus_ids(fam)
            surviving = matched if surviving is None else surviving & matched
            if not surviving:
                return set()
        if not surviving:
            return set()
        return self._result_ids_for_focus_ids(surviving, focus_type)

    def count_for_family(self, family: ResourceFamily) -> int:
        """How many results match this family alone (Figure 3's per-row count)."""
        return len(self._result_ids_for_focus_ids(self.matching_focus_ids(family)))

    def count_for_filter(self, families: Sequence[ResourceFamily]) -> int:
        """How many results match the whole filter (Figure 3's total count)."""
        return len(self.result_ids(families))

    def evaluate(self, prf: PrFilter) -> set[int]:
        return self.result_ids(self.store.resolve_prfilter(prf))

    # -- materialisation -------------------------------------------------------------

    def fetch_results(self, result_ids: Iterable[int]) -> list[PerformanceResult]:
        """Materialise PerformanceResult objects (with contexts) by id."""
        if not (_M.enabled or _trace.enabled):
            return self._fetch_results_inner(result_ids)
        t0 = _now()
        with _trace.span("query.fetch", cat="query"):
            out = self._fetch_results_inner(result_ids)
        _FETCH_SECONDS.observe(_now() - t0)
        _RESULTS_FETCHED.add(len(out))
        return out

    def _fetch_results_inner(
        self, result_ids: Iterable[int]
    ) -> list[PerformanceResult]:
        ids = sorted(set(result_ids))
        if not ids:
            return []
        base: dict[int, tuple] = {}
        for chunk in _chunks(ids):
            marks = ",".join("?" * len(chunk))
            rows = self.store.backend.stream(  # noqa: PTL001 — '?' marks only
                f"SELECT p.id, e.name, m.name, t.name, p.value, p.units, "
                f"p.start_time, p.end_time, p.value_type "
                f"FROM performance_result p "
                f"JOIN execution e ON e.id = p.execution_id "
                f"JOIN metric m ON m.id = p.metric_id "
                f"JOIN performance_tool t ON t.id = p.performance_tool_id "
                f"WHERE p.id IN ({marks})",
                chunk,
            )
            for r in rows:
                base[r[0]] = r
        # Contexts: result -> [(focus_id, focus_type)], focus -> resource ids.
        assoc: dict[int, list[tuple[int, str]]] = {rid: [] for rid in ids}
        focus_ids: set[int] = set()
        for chunk in _chunks(ids):
            marks = ",".join("?" * len(chunk))
            rows = self.store.backend.stream(  # noqa: PTL001 — '?' marks only
                f"SELECT performance_result_id, focus_id, focus_type "
                f"FROM performance_result_has_focus "
                f"WHERE performance_result_id IN ({marks})",
                chunk,
            )
            for pr_id, fid, ftype in rows:
                assoc[pr_id].append((fid, ftype))
                focus_ids.add(fid)
        # Vector payloads for array-valued results (Section-6 extension).
        vector_ids = [rid for rid, row in base.items() if row[8] == "vector"]
        vectors: dict[int, list[tuple[int, float, float, float]]] = {
            rid: [] for rid in vector_ids
        }
        for chunk in _chunks(sorted(vector_ids)):
            marks = ",".join("?" * len(chunk))
            rows = self.store.backend.stream(  # noqa: PTL001 — '?' marks only
                f"SELECT performance_result_id, bin_index, bin_start, bin_end, value "
                f"FROM performance_result_vector "
                f"WHERE performance_result_id IN ({marks})",
                chunk,
            )
            for pr_id, bi, bs, be, v in rows:
                vectors[pr_id].append((bi, bs, be, v))
        for rows_ in vectors.values():
            rows_.sort()
        focus_resources: dict[int, set[int]] = {fid: set() for fid in focus_ids}
        for chunk in _chunks(sorted(focus_ids)):
            marks = ",".join("?" * len(chunk))
            rows = self.store.backend.stream(  # noqa: PTL001 — '?' marks only
                f"SELECT focus_id, resource_id FROM focus_has_resource "
                f"WHERE focus_id IN ({marks})",
                chunk,
            )
            for fid, rid in rows:
                focus_resources[fid].add(rid)
        out: list[PerformanceResult] = []
        for rid in ids:
            row = base.get(rid)
            if row is None:
                continue
            contexts = tuple(
                Context(fid, frozenset(focus_resources.get(fid, ())), ftype)
                for fid, ftype in assoc.get(rid, ())
            )
            out.append(
                PerformanceResult(
                    id=row[0],
                    execution=row[1],
                    metric=row[2],
                    tool=row[3],
                    value=row[4],
                    units=row[5] or "",
                    contexts=contexts,
                    start_time=row[6],
                    end_time=row[7],
                    value_type=row[8],
                    series=tuple(vectors.get(rid, ())),
                )
            )
        return out

    def fetch(self, prf: PrFilter) -> list[PerformanceResult]:
        """One-shot: resolve, evaluate and materialise a pr-filter."""
        return self.fetch_results(self.evaluate(prf))

    # -- free resources (Figure 4's two-step Add Columns) -----------------------------

    def free_resources(
        self,
        results: Sequence[PerformanceResult],
        specified_ids: Optional[set[int]] = None,
    ) -> dict[str, list[str]]:
        """Free resources of *results*, grouped by type.

        Free resources are context resources the user's pr-filter did not
        specify; types whose resource names are identical across all
        results are dropped ("if all the selected results came from ...
        Linux, the resource type 'operating system' would not be shown").
        Returns ``{type path: sorted resource names}`` for offering as
        addable columns.
        """
        specified = specified_ids or set()
        per_type_names: dict[str, set[str]] = {}
        per_type_per_result: dict[str, list[set[str]]] = {}
        resource_cache: dict[int, tuple[str, str]] = {}  # id -> (name, type)
        for pr in results:
            seen_types: dict[str, set[str]] = {}
            for rid in pr.resource_ids:
                if rid in specified:
                    continue
                info = resource_cache.get(rid)
                if info is None:
                    res = self.store.resource_by_id(rid)
                    if res is None:
                        continue
                    info = (res.name, res.type_name)
                    resource_cache[rid] = info
                name, type_name = info
                seen_types.setdefault(type_name, set()).add(name)
                per_type_names.setdefault(type_name, set()).add(name)
            for t, names in seen_types.items():
                per_type_per_result.setdefault(t, []).append(names)
        out: dict[str, list[str]] = {}
        for type_name, names in per_type_names.items():
            appearances = per_type_per_result.get(type_name, [])
            # Identical for all results (and present in all) -> not interesting.
            if (
                len(appearances) == len(results)
                and len(names) == 1
            ):
                continue
            out[type_name] = sorted(names)
        return out

    def resource_names_of_type_for_result(
        self, result: PerformanceResult, type_name: str
    ) -> list[str]:
        """Names of a result's context resources having *type_name* (cell value)."""
        names = []
        for rid in sorted(result.resource_ids):
            res = self.store.resource_by_id(rid)
            if res is not None and res.type_name == type_name:
                names.append(res.name)
        return names


class ShardEvalIndex:
    """In-memory inverted maps over one shard's fact replicas.

    Scatter-gather evaluation is probe-heavy: every pr-filter costs three
    indexed IN-probes per shard, and at BG/L family sizes (a partition
    family is 1000+ resource ids) the per-key SQL overhead dominates
    end-to-end latency.  Instead, each shard keeps these maps — built
    once from streaming full scans of the shard's replicas, invalidated
    by the owning :class:`~repro.core.shards.ShardedPTDataStore` whenever
    a load or rollback changes shard contents — so filter evaluation is
    pure set algebra over ints.
    """

    __slots__ = (
        "descendants",
        "foci_by_resource",
        "results_by_focus",
        "results_by_focus_typed",
        "results_by_type",
        "result_ids",
    )

    def __init__(self, backend) -> None:
        t0 = _now()
        descendants: dict[int, list[int]] = {}
        for rid, anc in backend.stream(
            "SELECT resource_id, ancestor_id FROM resource_has_ancestor"
        ):
            descendants.setdefault(anc, []).append(rid)
        foci_by_resource: dict[int, list[int]] = {}
        for fid, rid in backend.stream(
            "SELECT focus_id, resource_id FROM focus_has_resource"
        ):
            foci_by_resource.setdefault(rid, []).append(fid)
        results_by_focus: dict[int, list[int]] = {}
        results_by_focus_typed: dict[tuple[int, str], list[int]] = {}
        results_by_type: dict[str, set[int]] = {}
        for pr_id, fid, ftype in backend.stream(
            "SELECT performance_result_id, focus_id, focus_type "
            "FROM performance_result_has_focus"
        ):
            results_by_focus.setdefault(fid, []).append(pr_id)
            results_by_focus_typed.setdefault((fid, ftype), []).append(pr_id)
            results_by_type.setdefault(ftype, set()).add(pr_id)
        self.descendants = descendants
        self.foci_by_resource = foci_by_resource
        self.results_by_focus = results_by_focus
        self.results_by_focus_typed = results_by_focus_typed
        self.results_by_type = results_by_type
        self.result_ids = frozenset(
            r[0] for r in backend.stream("SELECT id FROM performance_result")
        )
        if _M.enabled:
            _EVAL_INDEX_BUILDS.inc()
            _EVAL_INDEX_BUILD_SECONDS.observe(_now() - t0)


class ShardedQueryEngine(QueryEngine):
    """Scatter-gather pr-filter evaluation over a sharded store.

    Filters resolve once against the catalog into :class:`FamilySpec`
    objects (base ids + eager ancestors + a descendants flag); each shard
    then evaluates the whole filter **locally** — descendant expansion
    reads the shard's ``resource_has_ancestor`` replica, focus matching
    its ``focus_has_resource`` replica (both through the shard's
    :class:`ShardEvalIndex`), smallest-family-first with the same
    empty-meet short-circuit as the serial engine — and the matching
    result ids are unioned across shards.  Because execution ids
    partition the fact tables, shard result sets are disjoint and the
    union equals the serial answer exactly.

    Family ordering uses ``len(spec)`` (base + ancestors) rather than the
    fully expanded size the serial engine sorts by; that only changes
    probe order, never the result set.
    """

    def __init__(self, sstore: "ShardedPTDataStore") -> None:
        super().__init__(sstore.catalog)
        self.sstore = sstore

    @staticmethod
    def _as_spec(family) -> FamilySpec:
        if isinstance(family, FamilySpec):
            return family
        return FamilySpec(label=family.label, base_ids=family.resource_ids)

    def _indexes(self) -> list[ShardEvalIndex]:
        return [
            self.sstore.shard_eval_index(i)
            for i in range(self.sstore.n_shards)
        ]

    # -- per-shard evaluation ----------------------------------------------------

    def _family_ids_on(self, index: ShardEvalIndex, spec: FamilySpec) -> set[int]:
        """A family's full membership as seen from one shard.

        Descendants expand from ``base_ids`` only (never the ancestor
        extras), matching the serial resolver's A/D semantics; the lookup
        runs against the shard's closure replica, so only descendants the
        shard actually holds come back.
        """
        ids = set(spec.base_ids)
        if spec.include_descendants and ids:
            descendants = index.descendants
            for base in spec.base_ids:
                hits = descendants.get(base)
                if hits:
                    ids.update(hits)
            if _M.enabled:
                _DESC_EXPANSIONS.inc()
        ids.update(spec.extra_ids)
        return ids

    def _matching_focus_ids_on(
        self, index: ShardEvalIndex, resource_ids
    ) -> set[int]:
        out: set[int] = set()
        foci_by_resource = index.foci_by_resource
        for rid in resource_ids:
            hits = foci_by_resource.get(rid)
            if hits:
                out.update(hits)
        return out

    def _result_ids_for_focus_ids_on(
        self,
        index: ShardEvalIndex,
        focus_ids: Iterable[int],
        focus_type: Optional[str] = None,
    ) -> set[int]:
        out: set[int] = set()
        if focus_type is None:
            results_by_focus = index.results_by_focus
            for fid in focus_ids:
                hits = results_by_focus.get(fid)
                if hits:
                    out.update(hits)
        else:
            typed = index.results_by_focus_typed
            for fid in focus_ids:
                hits = typed.get((fid, focus_type))
                if hits:
                    out.update(hits)
        return out

    def _shard_result_ids(
        self,
        index: ShardEvalIndex,
        specs: Sequence[FamilySpec],
        focus_type: Optional[str],
    ) -> set[int]:
        if not specs:
            if focus_type is None:
                return set(index.result_ids)
            return set(index.results_by_type.get(focus_type, ()))
        surviving: Optional[set[int]] = None
        for spec in sorted(specs, key=len):
            matched = self._matching_focus_ids_on(
                index, self._family_ids_on(index, spec)
            )
            surviving = matched if surviving is None else surviving & matched
            if not surviving:
                if _M.enabled:
                    _SHARD_SHORT_CIRCUITS.inc()
                return set()
        return self._result_ids_for_focus_ids_on(index, surviving, focus_type)

    # -- scatter-gather overrides -------------------------------------------------

    def _result_ids_inner(
        self,
        families: Sequence,
        focus_type: Optional[str] = None,
    ) -> set[int]:
        specs = [self._as_spec(f) for f in families]
        out: set[int] = set()
        for index in self._indexes():
            out |= self._shard_result_ids(index, specs, focus_type)
        if _M.enabled:
            _SCATTER_MERGES.inc()
        return out

    def matching_focus_ids(self, family) -> set[int]:
        """Focus ids intersecting *family*, unioned across shard replicas."""
        spec = self._as_spec(family)
        out: set[int] = set()
        for index in self._indexes():
            out |= self._matching_focus_ids_on(
                index, self._family_ids_on(index, spec)
            )
        return out

    def count_for_family(self, family) -> int:
        spec = self._as_spec(family)
        total = 0
        for index in self._indexes():
            focus_ids = self._matching_focus_ids_on(
                index, self._family_ids_on(index, spec)
            )
            total += len(self._result_ids_for_focus_ids_on(index, focus_ids))
        return total

    def evaluate(self, prf: PrFilter) -> set[int]:
        return self.result_ids(self.sstore.resolve_prfilter_specs(prf))

    # -- materialisation ----------------------------------------------------------

    def _fetch_results_inner(
        self, result_ids: Iterable[int]
    ) -> list[PerformanceResult]:
        ids = sorted(set(result_ids))
        if not ids:
            return []
        store = self.store
        exec_names = {i: n for n, i in store._exec_ids.items()}
        metric_names = {i: n for n, i in store._metric_ids.items()}
        tool_names = {i: n for n, i in store._tool_ids.items()}
        out: list[PerformanceResult] = []
        for backend in self.sstore.shard_backends:
            base: dict[int, tuple] = {}
            for chunk in _chunks(ids):
                marks = ",".join("?" * len(chunk))
                rows = backend.stream(  # noqa: PTL001 — '?' marks only
                    f"SELECT id, execution_id, metric_id, performance_tool_id, "
                    f"value, units, start_time, end_time, value_type "
                    f"FROM performance_result WHERE id IN ({marks})",
                    chunk,
                )
                for r in rows:
                    base[r[0]] = r
            if not base:
                continue
            found = sorted(base)
            assoc: dict[int, list[tuple[int, str]]] = {rid: [] for rid in found}
            focus_ids: set[int] = set()
            for chunk in _chunks(found):
                marks = ",".join("?" * len(chunk))
                rows = backend.stream(  # noqa: PTL001 — '?' marks only
                    f"SELECT performance_result_id, focus_id, focus_type "
                    f"FROM performance_result_has_focus "
                    f"WHERE performance_result_id IN ({marks})",
                    chunk,
                )
                for pr_id, fid, ftype in rows:
                    assoc[pr_id].append((fid, ftype))
                    focus_ids.add(fid)
            vector_ids = [rid for rid in found if base[rid][8] == "vector"]
            vectors: dict[int, list[tuple[int, float, float, float]]] = {
                rid: [] for rid in vector_ids
            }
            for chunk in _chunks(sorted(vector_ids)):
                marks = ",".join("?" * len(chunk))
                rows = backend.stream(  # noqa: PTL001 — '?' marks only
                    f"SELECT performance_result_id, bin_index, bin_start, "
                    f"bin_end, value FROM performance_result_vector "
                    f"WHERE performance_result_id IN ({marks})",
                    chunk,
                )
                for pr_id, bi, bs, be, v in rows:
                    vectors[pr_id].append((bi, bs, be, v))
            for rows_ in vectors.values():
                rows_.sort()
            focus_resources: dict[int, set[int]] = {fid: set() for fid in focus_ids}
            for chunk in _chunks(sorted(focus_ids)):
                marks = ",".join("?" * len(chunk))
                rows = backend.stream(  # noqa: PTL001 — '?' marks only
                    f"SELECT focus_id, resource_id FROM focus_has_resource "
                    f"WHERE focus_id IN ({marks})",
                    chunk,
                )
                for fid, rid in rows:
                    focus_resources[fid].add(rid)
            for rid in found:
                row = base[rid]
                contexts = tuple(
                    Context(fid, frozenset(focus_resources.get(fid, ())), ftype)
                    for fid, ftype in assoc.get(rid, ())
                )
                out.append(
                    PerformanceResult(
                        id=row[0],
                        execution=exec_names[row[1]],
                        metric=metric_names[row[2]],
                        tool=tool_names[row[3]],
                        value=row[4],
                        units=row[5] or "",
                        contexts=contexts,
                        start_time=row[6],
                        end_time=row[7],
                        value_type=row[8],
                        series=tuple(vectors.get(rid, ())),
                    )
                )
        out.sort(key=lambda pr: pr.id)
        return out
