"""PerfTrack core: the resource/result model, data store, and queries.

Public surface:

* :class:`~repro.core.datastore.PTDataStore` — the database-backed store
  with the Figure-6 load API and lookup/query methods.
* :class:`~repro.core.shards.ShardedPTDataStore` — the catalog + N fact
  shards deployment for BG/L-scale corpora, with
  :func:`~repro.core.pload.load_files` as its parallel PTdf loader and
  :class:`~repro.core.query.ShardedQueryEngine` for scatter-gather
  pr-filter evaluation.
* :mod:`~repro.core.filters` — resource filters, resource families and
  pr-filters (Section 2.2 semantics).
* :mod:`~repro.core.comparison` / :mod:`~repro.core.diagnosis` — the
  multi-execution comparison operators the paper lists as in-progress
  future work (Section 6), in the PPerfDB lineage.
"""

from .datastore import LoadStats, PTDataStore
from .filters import (
    AttributeClause,
    ByAttributes,
    ByConstraint,
    ByName,
    ByType,
    Expansion,
    FamilySpec,
    PrFilter,
    ResourceFamily,
)
from .pload import ParallelLoadError, load_files, resolve_workers
from .query import QueryEngine, ShardedQueryEngine
from .results import PerformanceResult
from .resources import Resource, ResourceType
from .shards import ShardedPTDataStore, ShardRouter

__all__ = [
    "PTDataStore",
    "ShardedPTDataStore",
    "ShardRouter",
    "LoadStats",
    "load_files",
    "resolve_workers",
    "ParallelLoadError",
    "QueryEngine",
    "ShardedQueryEngine",
    "PrFilter",
    "ResourceFamily",
    "FamilySpec",
    "ByType",
    "ByName",
    "ByAttributes",
    "ByConstraint",
    "AttributeClause",
    "Expansion",
    "Resource",
    "ResourceType",
    "PerformanceResult",
]
