"""PerfTrack core: the resource/result model, data store, and queries.

Public surface:

* :class:`~repro.core.datastore.PTDataStore` — the database-backed store
  with the Figure-6 load API and lookup/query methods.
* :mod:`~repro.core.filters` — resource filters, resource families and
  pr-filters (Section 2.2 semantics).
* :mod:`~repro.core.comparison` / :mod:`~repro.core.diagnosis` — the
  multi-execution comparison operators the paper lists as in-progress
  future work (Section 6), in the PPerfDB lineage.
"""

from .datastore import LoadStats, PTDataStore
from .filters import (
    AttributeClause,
    ByAttributes,
    ByConstraint,
    ByName,
    ByType,
    Expansion,
    PrFilter,
    ResourceFamily,
)
from .results import PerformanceResult
from .resources import Resource, ResourceType

__all__ = [
    "PTDataStore",
    "LoadStats",
    "PrFilter",
    "ResourceFamily",
    "ByType",
    "ByName",
    "ByAttributes",
    "ByConstraint",
    "AttributeClause",
    "Expansion",
    "Resource",
    "ResourceType",
    "PerformanceResult",
]
