"""PerfTrack database schema (paper Figure 1).

Tables, keys and the performance-motivated denormalisations follow the
figure:

* ``focus_framework`` — the resource type system (one row per type path
  node, self-referential parent).
* ``resource_item`` — one row per resource: name, base name, parent,
  ``focus_framework_id`` (its type), and the owning execution when the
  resource is execution-specific.
* ``resource_attribute`` — string attributes of resources.
* ``resource_constraint`` — resource-valued attributes (paper Section 3:
  *"resource attributes that are themselves resources are stored as
  'resource constraints' in a separate table"*).
* ``resource_has_ancestor`` / ``resource_has_descendant`` — transitive
  closure tables *"added for performance reasons ... to avoid needing to
  traverse the resource hierarchy and follow the chain of parent_id's"*.
* ``focus`` + ``focus_has_resource`` — contexts; a focus is a set of
  resources, deduplicated via a canonical hash.
* ``performance_result`` + ``performance_result_has_focus`` — measured
  values and their contexts; the association carries the focus type
  (primary/parent/child/sender/receiver).
* ``application``, ``execution``, ``metric``, ``performance_tool`` —
  dimension tables.
* ``performance_result_vector`` — **extension** (paper Section 6 future
  work): complex, array-valued performance results, so a whole Paradyn
  histogram is one result instead of one result per bin.  Scalar results
  leave it empty; ``performance_result.value_type`` distinguishes.
"""

from __future__ import annotations

from ..dbapi.backends import Backend

#: DDL statements in dependency order.  The dialect is the common subset of
#: minidb and sqlite3.
SCHEMA_DDL: tuple[str, ...] = (
    """
    CREATE TABLE focus_framework (
        id INTEGER PRIMARY KEY,
        name TEXT NOT NULL UNIQUE,
        base_name TEXT NOT NULL,
        parent_id INTEGER REFERENCES focus_framework(id)
    )
    """,
    """
    CREATE TABLE application (
        id INTEGER PRIMARY KEY,
        name TEXT NOT NULL UNIQUE
    )
    """,
    """
    CREATE TABLE execution (
        id INTEGER PRIMARY KEY,
        name TEXT NOT NULL UNIQUE,
        application_id INTEGER NOT NULL REFERENCES application(id)
    )
    """,
    """
    CREATE TABLE performance_tool (
        id INTEGER PRIMARY KEY,
        name TEXT NOT NULL UNIQUE
    )
    """,
    """
    CREATE TABLE metric (
        id INTEGER PRIMARY KEY,
        name TEXT NOT NULL UNIQUE
    )
    """,
    """
    CREATE TABLE resource_item (
        id INTEGER PRIMARY KEY,
        name TEXT NOT NULL UNIQUE,
        base_name TEXT NOT NULL,
        parent_id INTEGER REFERENCES resource_item(id),
        focus_framework_id INTEGER NOT NULL REFERENCES focus_framework(id),
        execution_id INTEGER REFERENCES execution(id)
    )
    """,
    """
    CREATE TABLE resource_attribute (
        id INTEGER PRIMARY KEY,
        resource_id INTEGER NOT NULL REFERENCES resource_item(id),
        name TEXT NOT NULL,
        value TEXT,
        attr_type TEXT NOT NULL DEFAULT 'string'
    )
    """,
    """
    CREATE TABLE resource_constraint (
        id INTEGER PRIMARY KEY,
        resource_id_1 INTEGER NOT NULL REFERENCES resource_item(id),
        resource_id_2 INTEGER NOT NULL REFERENCES resource_item(id)
    )
    """,
    """
    CREATE TABLE resource_has_ancestor (
        resource_id INTEGER NOT NULL REFERENCES resource_item(id),
        ancestor_id INTEGER NOT NULL REFERENCES resource_item(id)
    )
    """,
    """
    CREATE TABLE resource_has_descendant (
        resource_id INTEGER NOT NULL REFERENCES resource_item(id),
        descendant_id INTEGER NOT NULL REFERENCES resource_item(id)
    )
    """,
    """
    CREATE TABLE focus (
        id INTEGER PRIMARY KEY,
        resource_hash TEXT NOT NULL UNIQUE
    )
    """,
    """
    CREATE TABLE focus_has_resource (
        focus_id INTEGER NOT NULL REFERENCES focus(id),
        resource_id INTEGER NOT NULL REFERENCES resource_item(id)
    )
    """,
    """
    CREATE TABLE performance_result (
        id INTEGER PRIMARY KEY,
        execution_id INTEGER NOT NULL REFERENCES execution(id),
        metric_id INTEGER NOT NULL REFERENCES metric(id),
        performance_tool_id INTEGER NOT NULL REFERENCES performance_tool(id),
        value REAL,
        units TEXT,
        start_time TEXT,
        end_time TEXT,
        value_type TEXT NOT NULL DEFAULT 'scalar'
    )
    """,
    """
    CREATE TABLE performance_result_vector (
        performance_result_id INTEGER NOT NULL REFERENCES performance_result(id),
        bin_index INTEGER NOT NULL,
        bin_start REAL,
        bin_end REAL,
        value REAL
    )
    """,
    """
    CREATE TABLE performance_result_has_focus (
        performance_result_id INTEGER NOT NULL REFERENCES performance_result(id),
        focus_id INTEGER NOT NULL REFERENCES focus(id),
        focus_type TEXT NOT NULL DEFAULT 'primary'
    )
    """,
)

#: Secondary indexes for the hot paths: name lookups during load, family
#: probes and focus joins during pr-filter evaluation, closure expansion.
SCHEMA_INDEXES: tuple[str, ...] = (
    "CREATE INDEX idx_ff_base ON focus_framework (base_name)",
    "CREATE INDEX idx_ri_base ON resource_item (base_name)",
    "CREATE INDEX idx_ri_type ON resource_item (focus_framework_id)",
    "CREATE INDEX idx_ri_parent ON resource_item (parent_id)",
    "CREATE INDEX idx_ri_exec ON resource_item (execution_id)",
    "CREATE INDEX idx_ra_resource ON resource_attribute (resource_id)",
    "CREATE INDEX idx_ra_name ON resource_attribute (name)",
    "CREATE INDEX idx_rc_r1 ON resource_constraint (resource_id_1)",
    "CREATE INDEX idx_rc_r2 ON resource_constraint (resource_id_2)",
    "CREATE INDEX idx_rha_resource ON resource_has_ancestor (resource_id)",
    "CREATE INDEX idx_rha_ancestor ON resource_has_ancestor (ancestor_id)",
    "CREATE INDEX idx_rhd_resource ON resource_has_descendant (resource_id)",
    "CREATE INDEX idx_rhd_descendant ON resource_has_descendant (descendant_id)",
    "CREATE INDEX idx_fhr_focus ON focus_has_resource (focus_id)",
    "CREATE INDEX idx_fhr_resource ON focus_has_resource (resource_id)",
    "CREATE INDEX idx_pr_exec ON performance_result (execution_id)",
    "CREATE INDEX idx_pr_metric ON performance_result (metric_id)",
    "CREATE INDEX idx_prv_result ON performance_result_vector (performance_result_id)",
    "CREATE INDEX idx_prf_result ON performance_result_has_focus (performance_result_id)",
    "CREATE INDEX idx_prf_focus ON performance_result_has_focus (focus_id)",
)

#: Tables hash-partitioned by execution id across fact shards (see
#: :mod:`repro.core.shards`).  ``focus_has_resource`` rows replicate to
#: every shard whose results reference the focus, so each shard can
#: evaluate a whole pr-filter locally; the union of the shard copies (as
#: a set) still equals the serial store's table.
SHARDED_TABLES: tuple[str, ...] = (
    "focus_has_resource",
    "performance_result",
    "performance_result_vector",
    "performance_result_has_focus",
)

#: Per-shard DDL: the four sharded fact tables plus a shard-local replica
#: of ``resource_has_ancestor`` (the closure rows of every resource that
#: appears in the shard's foci, maintained incrementally by the sharded
#: loader).  Deliberately **without** REFERENCES clauses — the parent
#: rows (execution, metric, focus, resource_item, ...) live in the
#: catalog database, so cross-database foreign keys are impossible; the
#: catalog's tables keep enforcing them on the dimension side.  Skipping
#: per-row FK probes is also a measurable share of the sharded loader's
#: speed-up.
SHARD_DDL: tuple[str, ...] = (
    """
    CREATE TABLE focus_has_resource (
        focus_id INTEGER NOT NULL,
        resource_id INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE resource_has_ancestor (
        resource_id INTEGER NOT NULL,
        ancestor_id INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE performance_result (
        id INTEGER PRIMARY KEY,
        execution_id INTEGER NOT NULL,
        metric_id INTEGER NOT NULL,
        performance_tool_id INTEGER NOT NULL,
        value REAL,
        units TEXT,
        start_time TEXT,
        end_time TEXT,
        value_type TEXT NOT NULL DEFAULT 'scalar'
    )
    """,
    """
    CREATE TABLE performance_result_vector (
        performance_result_id INTEGER NOT NULL,
        bin_index INTEGER NOT NULL,
        bin_start REAL,
        bin_end REAL,
        value REAL
    )
    """,
    """
    CREATE TABLE performance_result_has_focus (
        performance_result_id INTEGER NOT NULL,
        focus_id INTEGER NOT NULL,
        focus_type TEXT NOT NULL DEFAULT 'primary'
    )
    """,
)

#: Shard table names in creation order.
SHARD_TABLE_NAMES: tuple[str, ...] = (
    "focus_has_resource",
    "resource_has_ancestor",
    "performance_result",
    "performance_result_vector",
    "performance_result_has_focus",
)

#: Secondary indexes for the per-shard query paths: family probes on
#: ``focus_has_resource``, focus→result mapping, context fetch, vector
#: payloads, and the shard-local descendant pushdown on the closure
#: replica.  Built *after* a bulk load (``ensure_shard_indexes``) — a
#: post-hoc build is several times cheaper than incremental maintenance
#: during the load, which is a large part of the sharded speed-up.
SHARD_INDEXES: tuple[str, ...] = (
    "CREATE INDEX idx_shard_fhr_resource ON focus_has_resource (resource_id)",
    "CREATE INDEX idx_shard_fhr_focus ON focus_has_resource (focus_id)",
    "CREATE INDEX idx_shard_rha_ancestor ON resource_has_ancestor (ancestor_id)",
    "CREATE INDEX idx_shard_pr_exec ON performance_result (execution_id)",
    "CREATE INDEX idx_shard_prv_result ON performance_result_vector (performance_result_id)",
    "CREATE INDEX idx_shard_prf_result ON performance_result_has_focus (performance_result_id)",
    "CREATE INDEX idx_shard_prf_focus ON performance_result_has_focus (focus_id)",
)


def create_shard_schema(backend: Backend, with_indexes: bool = False) -> None:
    """Create the fact-shard tables (indexes deferred by default)."""
    for ddl in SHARD_DDL:
        backend.execute(ddl)
    if with_indexes:
        for ddl in SHARD_INDEXES:
            backend.execute(ddl)
    backend.commit()


def shard_schema_is_present(backend: Backend) -> bool:
    """True when the fact-shard tables exist in the connected database."""
    return all(backend.has_table(t) for t in SHARD_TABLE_NAMES)


#: Table names in creation order (used by reports and tests).
TABLE_NAMES: tuple[str, ...] = (
    "focus_framework",
    "application",
    "execution",
    "performance_tool",
    "metric",
    "resource_item",
    "resource_attribute",
    "resource_constraint",
    "resource_has_ancestor",
    "resource_has_descendant",
    "focus",
    "focus_has_resource",
    "performance_result",
    "performance_result_vector",
    "performance_result_has_focus",
)


def create_schema(backend: Backend, with_indexes: bool = True) -> None:
    """Create all PerfTrack tables (and, optionally, secondary indexes)."""
    for ddl in SCHEMA_DDL:
        backend.execute(ddl)
    if with_indexes:
        for ddl in SCHEMA_INDEXES:
            backend.execute(ddl)
    backend.commit()


def schema_is_present(backend: Backend) -> bool:
    """True when the PerfTrack schema exists in the connected database."""
    return all(backend.has_table(t) for t in TABLE_NAMES)


def describe_schema() -> list[str]:
    """Human-readable table listing (regenerates paper Figure 1 as text)."""
    lines: list[str] = []
    for ddl in SCHEMA_DDL:
        body = " ".join(ddl.split())
        name = body.split("(", 1)[0].replace("CREATE TABLE", "").strip()
        cols = body.split("(", 1)[1].rsplit(")", 1)[0]
        lines.append(f"{name}:")
        depth = 0
        col = []
        for ch in cols:
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
            if ch == "," and depth == 0:
                lines.append("    " + "".join(col).strip())
                col = []
            else:
                col.append(ch)
        if col:
            lines.append("    " + "".join(col).strip())
    return lines
