"""Performance results and contexts as returned from queries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Context:
    """One focus: a set of resource ids, with its focus type."""

    focus_id: int
    resource_ids: frozenset[int]
    focus_type: str = "primary"


@dataclass(frozen=True)
class PerformanceResult:
    """One measured or calculated value plus descriptive metadata.

    The paper's prototype stored scalars only (Section 3); the Section-6
    extension implemented here also supports vector results
    (``value_type == "vector"``), where ``value`` is the mean of the bins
    and ``series`` carries the per-bin data.
    """

    id: int
    execution: str
    metric: str
    tool: str
    value: Optional[float]
    units: str
    contexts: tuple[Context, ...] = ()
    start_time: Optional[str] = None
    end_time: Optional[str] = None
    value_type: str = "scalar"
    #: For vector results: (bin_index, bin_start, bin_end, value) rows.
    series: tuple[tuple[int, float, float, float], ...] = ()

    @property
    def is_vector(self) -> bool:
        return self.value_type == "vector"

    def series_values(self) -> list[float]:
        """Just the per-bin values of a vector result."""
        return [v for _i, _s, _e, v in self.series]

    @property
    def resource_ids(self) -> frozenset[int]:
        """Union of all context resource ids."""
        out: set[int] = set()
        for ctx in self.contexts:
            out |= ctx.resource_ids
        return frozenset(out)


@dataclass
class ResultRow:
    """One row of the GUI-style result table (see repro.gui.mainwindow)."""

    result: PerformanceResult
    extra_columns: dict[str, str] = field(default_factory=dict)

    def cell(self, column: str) -> object:
        fixed = {
            "execution": self.result.execution,
            "metric": self.result.metric,
            "tool": self.result.tool,
            "value": self.result.value,
            "units": self.result.units,
        }
        if column in fixed:
            return fixed[column]
        return self.extra_columns.get(column)
