"""Resource filters, resource families and pr-filters (paper Section 2.2).

A *resource filter* selects a set of resources by type, by name, or by
attribute-value-comparator tuples, optionally expanded to ancestors and/or
descendants (the GUI's A/D/B/N "Relatives" flag).  Applying a resource
filter yields a *resource family* — a set of resources from one type
hierarchy.  A *pr-filter* is a set of families; it matches a context C iff
every family contains at least one resource of C::

    PRF matches C  ⇔  ∀ R ∈ PRF: ∃ r ∈ C: r ∈ R

Filter objects here are declarative; the data store resolves them to
id sets (:meth:`repro.core.datastore.PTDataStore.resolve_filter`) and the
query layer (:mod:`repro.core.query`) evaluates matches against foci.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Optional, Sequence, Union


class Expansion(str, Enum):
    """Ancestor/descendant expansion flag for a resource filter.

    The GUI defaults name selections to DESCENDANTS (paper: *"choosing the
    resource 'Frost' defines a resource subset that also includes Frost's
    partitions, all of their nodes, and all of their processors"*).
    """

    NONE = "N"
    ANCESTORS = "A"
    DESCENDANTS = "D"
    BOTH = "B"

    @property
    def include_ancestors(self) -> bool:
        return self in (Expansion.ANCESTORS, Expansion.BOTH)

    @property
    def include_descendants(self) -> bool:
        return self in (Expansion.DESCENDANTS, Expansion.BOTH)


#: Comparators usable in attribute clauses.
COMPARATORS: dict[str, Callable[[str, str], bool]] = {}


def _numeric_or_text(fn_num, fn_text):
    def cmp(actual: str, expected: str) -> bool:
        try:
            return fn_num(float(actual), float(expected))
        except (TypeError, ValueError):
            if actual is None:
                return False
            return fn_text(str(actual), str(expected))

    return cmp


COMPARATORS["="] = _numeric_or_text(lambda a, b: a == b, lambda a, b: a == b)
COMPARATORS["!="] = _numeric_or_text(lambda a, b: a != b, lambda a, b: a != b)
COMPARATORS["<"] = _numeric_or_text(lambda a, b: a < b, lambda a, b: a < b)
COMPARATORS["<="] = _numeric_or_text(lambda a, b: a <= b, lambda a, b: a <= b)
COMPARATORS[">"] = _numeric_or_text(lambda a, b: a > b, lambda a, b: a > b)
COMPARATORS[">="] = _numeric_or_text(lambda a, b: a >= b, lambda a, b: a >= b)
COMPARATORS["contains"] = lambda actual, expected: (
    actual is not None and str(expected) in str(actual)
)


@dataclass(frozen=True)
class AttributeClause:
    """One attribute-value-comparator tuple."""

    name: str
    comparator: str
    value: str

    def __post_init__(self) -> None:
        if self.comparator not in COMPARATORS:
            raise ValueError(
                f"unknown comparator {self.comparator!r}; "
                f"expected one of {sorted(COMPARATORS)}"
            )

    def test(self, actual: Optional[str]) -> bool:
        return COMPARATORS[self.comparator](actual, self.value)


@dataclass(frozen=True)
class ByType:
    """Select all resources of one type (paper: machine-level-only queries)."""

    type_path: str
    expansion: Expansion = Expansion.NONE

    def describe(self) -> str:
        return f"type={self.type_path} [{self.expansion.value}]"


@dataclass(frozen=True)
class ByName:
    """Select resources by full name (``/Frost/batch``) or base name (``batch``)."""

    name: str
    expansion: Expansion = Expansion.DESCENDANTS

    @property
    def is_full_name(self) -> bool:
        return self.name.startswith("/")

    def describe(self) -> str:
        return f"name={self.name} [{self.expansion.value}]"


@dataclass(frozen=True)
class ByAttributes:
    """Select resources matching all attribute clauses (optionally one type)."""

    clauses: tuple[AttributeClause, ...]
    type_path: Optional[str] = None
    expansion: Expansion = Expansion.NONE

    def __post_init__(self) -> None:
        if not self.clauses:
            raise ValueError("ByAttributes requires at least one clause")

    def describe(self) -> str:
        parts = ", ".join(f"{c.name}{c.comparator}{c.value}" for c in self.clauses)
        scope = f" of {self.type_path}" if self.type_path else ""
        return f"attrs({parts}){scope} [{self.expansion.value}]"


@dataclass(frozen=True)
class ByConstraint:
    """Select resources constrained to (resource-valued-attributed by) a
    target resource — e.g. all processes that ran on node ``/M/n16``.

    ``direction`` picks which side of the ``resource_constraint`` pair is
    matched: ``"to"`` selects resources whose constraint points at
    *target* (the common case), ``"from"`` the reverse.
    """

    target: str  # full resource name
    direction: str = "to"
    expansion: Expansion = Expansion.NONE

    def __post_init__(self) -> None:
        if self.direction not in ("to", "from"):
            raise ValueError(f"direction must be 'to' or 'from', got {self.direction!r}")

    def describe(self) -> str:
        arrow = "->" if self.direction == "to" else "<-"
        return f"constraint{arrow}{self.target} [{self.expansion.value}]"


ResourceFilter = Union[ByType, ByName, ByAttributes, ByConstraint]


@dataclass(frozen=True)
class ResourceFamily:
    """A resolved resource family: ids plus provenance for display."""

    label: str
    resource_ids: frozenset[int]

    def __len__(self) -> int:
        return len(self.resource_ids)

    def __contains__(self, resource_id: int) -> bool:
        return resource_id in self.resource_ids


@dataclass(frozen=True)
class FamilySpec:
    """A partially resolved family, shaped for per-shard pushdown.

    ``base_ids`` are the filter's direct matches; ``extra_ids`` carry the
    ancestor expansion (resolved eagerly — ancestors are few and global).
    Descendant expansion stays a flag: the scatter-gather engine expands
    ``base_ids`` *per shard* against the shard's ``resource_has_ancestor``
    replica, so a 32k-descendant machine subtree never turns into 32k
    bound parameters — each shard probes only the descendants it holds.
    The family's full membership is
    ``base_ids ∪ extra_ids ∪ descendants(base_ids)``, exactly matching
    the eager :class:`ResourceFamily` the serial path produces.
    """

    label: str
    base_ids: frozenset[int]
    extra_ids: frozenset[int] = frozenset()
    include_descendants: bool = False

    def __len__(self) -> int:
        return len(self.base_ids) + len(self.extra_ids)


@dataclass
class PrFilter:
    """An (unresolved) pr-filter: an ordered set of resource filters."""

    filters: list[ResourceFilter] = field(default_factory=list)

    def add(self, f: ResourceFilter) -> "PrFilter":
        self.filters.append(f)
        return self

    def remove(self, index: int) -> ResourceFilter:
        return self.filters.pop(index)

    def describe(self) -> str:
        return " AND ".join(f.describe() for f in self.filters) or "<empty>"

    def __len__(self) -> int:
        return len(self.filters)


def matches(families: Sequence[frozenset[int] | set[int]], context: Iterable[int]) -> bool:
    """Pure Section-2.2 match: every family intersects the context.

    An empty pr-filter matches every context (vacuous ∀).
    """
    ctx = set(context)
    return all(bool(ctx & set(fam)) for fam in families)


def filter_results(
    families: Sequence[frozenset[int]],
    results: Iterable,
) -> list:
    """Reference in-memory implementation of applying a pr-filter.

    ``results`` are objects with a ``contexts`` attribute (tuples of
    :class:`repro.core.results.Context`).  A result is kept when *some*
    single context matches all families — the same semantics the SQL path
    in :mod:`repro.core.query` implements via focus-set intersection.
    """
    kept = []
    for pr in results:
        for ctx in pr.contexts:
            if matches(families, ctx.resource_ids):
                kept.append(pr)
                break
    return kept
