"""Comparison-based performance diagnosis helpers.

Builds the analyses PerfTrack's case studies perform on top of the data
store: per-function load balance across processors (Figure 5), scalability
across process counts (the parameter-study use case), historical
regression scanning across application versions, and simple bottleneck
ranking — all expressed through pr-filter queries so they exercise the
same paths as interactive use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .comparison import Distilled, distill
from .datastore import PTDataStore
from .filters import ByName, ByType, Expansion, PrFilter
from .query import QueryEngine
from .results import PerformanceResult


@dataclass(frozen=True)
class LoadBalanceReport:
    """Per-context spread of one metric within one execution."""

    execution: str
    metric: str
    function: Optional[str]
    stats: Distilled

    @property
    def spread(self) -> float:
        """max - min: the bar-height difference plotted in Figure 5."""
        return self.stats.maximum - self.stats.minimum


def _exec_results(
    store: PTDataStore, execution: str, metric: str, function: Optional[str] = None
) -> list[PerformanceResult]:
    prf = PrFilter([ByName(f"/{execution}", Expansion.DESCENDANTS)])
    if function is not None:
        prf.add(ByName(function, Expansion.NONE))
    qe = QueryEngine(store)
    return [r for r in qe.fetch(prf) if r.metric == metric and r.value is not None]


def load_balance(
    store: PTDataStore, execution: str, metric: str, function: Optional[str] = None
) -> LoadBalanceReport:
    """Distill one metric across a run's per-process/per-processor results."""
    results = _exec_results(store, execution, metric, function)
    if not results:
        raise ValueError(
            f"no results for execution={execution!r} metric={metric!r} function={function!r}"
        )
    return LoadBalanceReport(execution, metric, function, distill(r.value for r in results))


@dataclass(frozen=True)
class ScalingPoint:
    """One execution of a scaling study."""

    execution: str
    processes: int
    value: float

    def speedup(self, base: "ScalingPoint") -> float:
        if self.value == 0:
            return float("inf")
        return base.value / self.value

    def efficiency(self, base: "ScalingPoint") -> float:
        if self.processes == 0:
            return 0.0
        return self.speedup(base) * base.processes / self.processes


def scaling_study(
    store: PTDataStore,
    executions: Sequence[str],
    metric: str,
    nproc_attribute: str = "number of processes",
) -> list[ScalingPoint]:
    """Collect (nproc, aggregate value) across a set of executions.

    The process count is read from the execution resource's attribute (the
    PTdfGen index data), so the study works regardless of which tool
    produced the measurements.
    """
    points: list[ScalingPoint] = []
    for execution in executions:
        results = _exec_results(store, execution, metric)
        if not results:
            continue
        rid = store._resource_ids.get(f"/{execution}")
        nproc = None
        if rid is not None:
            raw = store.attribute_value(rid, nproc_attribute)
            if raw is not None:
                nproc = int(float(raw))
        if nproc is None:
            nproc = len(results)
        points.append(
            ScalingPoint(execution, nproc, max(r.value for r in results))
        )
    points.sort(key=lambda p: p.processes)
    return points


@dataclass(frozen=True)
class Bottleneck:
    """One heavy context in the bottleneck ranking."""

    label: str
    value: float
    share: float  # fraction of the total


def rank_bottlenecks(
    store: PTDataStore,
    execution: str,
    metric: str,
    type_path: str = "build/module/function",
    top: int = 10,
) -> list[Bottleneck]:
    """Rank code resources of *type_path* by their share of *metric*.

    This is the simple "where does the time go" diagnosis the PerfTrack
    GUI supports by sorting the result table on the value column.
    """
    qe = QueryEngine(store)
    prf = PrFilter(
        [ByName(f"/{execution}", Expansion.DESCENDANTS), ByType(type_path)]
    )
    results = [r for r in qe.fetch(prf) if r.metric == metric and r.value is not None]
    per_label: dict[str, float] = {}
    for pr in results:
        for rid in pr.resource_ids:
            res = store.resource_by_id(rid)
            if res is not None and res.type_name == type_path:
                per_label[res.name] = per_label.get(res.name, 0.0) + pr.value
    total = sum(per_label.values())
    ranked = sorted(per_label.items(), key=lambda kv: kv[1], reverse=True)[:top]
    return [
        Bottleneck(label, value, (value / total) if total else 0.0)
        for label, value in ranked
    ]


@dataclass(frozen=True)
class Regression:
    """A metric that grew between two executions of the same application."""

    metric: str
    signature: tuple[str, ...]
    before: float
    after: float

    @property
    def factor(self) -> float:
        return self.after / self.before if self.before else float("inf")


def scan_history(
    store: PTDataStore,
    executions: Sequence[str],
    metric: Optional[str] = None,
    threshold: float = 1.25,
) -> list[Regression]:
    """Scan an ordered execution history for metric regressions.

    Uses :func:`repro.core.comparison.compare_executions` pairwise over
    consecutive runs — the "use of historical performance data in the
    diagnosis of parallel applications" (Karavanic & Miller, SC'99) that
    PerfTrack's store makes routine.
    """
    from .comparison import compare_executions

    out: list[Regression] = []
    for before, after in zip(executions, executions[1:]):
        cmp = compare_executions(store, before, after, metric)
        for pair in cmp.regressions(threshold):
            assert pair.left is not None and pair.right is not None
            out.append(Regression(pair.metric, pair.signature, pair.left, pair.right))
    return out
