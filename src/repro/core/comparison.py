"""Comparison operators over executions (paper Section 6 / PPerfDB lineage).

The paper lists "the addition of a set of comparison operators to automate
the comparison of different executions and performance results in the data
store" as work in progress; the operators here follow the experiment-
management line of Karavanic & Miller (SC'97/SC'99) that PerfTrack builds
on:

* **align** — pair up results from two executions by (metric, context
  signature), where the signature abstracts execution-specific resources
  (process ids, time bins) to their base names so cross-execution
  comparison is meaningful.
* **difference / ratio** — numeric comparison of aligned pairs.
* **distill** — collapse a set of results to summary statistics (min /
  max / mean / total), e.g. across processors — the Figure 5 series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from .datastore import PTDataStore
from .query import QueryEngine
from .results import PerformanceResult


def context_signature(store: PTDataStore, result: PerformanceResult) -> tuple[str, ...]:
    """Execution-invariant signature of a result's context.

    Resources from the ``execution`` and ``time`` hierarchies vary from run
    to run (process names, histogram bins); they are reduced to their type
    path.  Code and machine resources keep their base names.
    """
    parts: list[str] = []
    for rid in sorted(result.resource_ids):
        res = store.resource_by_id(rid)
        if res is None:
            continue
        root = res.type_name.split("/", 1)[0]
        if root in ("execution", "time"):
            parts.append(f"<{res.type_name}>")
        else:
            parts.append(res.name)
    return tuple(sorted(parts))


@dataclass(frozen=True)
class AlignedPair:
    """One metric/context matched across two executions."""

    metric: str
    signature: tuple[str, ...]
    left: Optional[float]
    right: Optional[float]

    @property
    def difference(self) -> Optional[float]:
        if self.left is None or self.right is None:
            return None
        return self.right - self.left

    @property
    def ratio(self) -> Optional[float]:
        if self.left is None or self.right is None or self.left == 0:
            return None
        return self.right / self.left


def _results_for_execution(store: PTDataStore, execution: str) -> list[PerformanceResult]:
    eid = store.execution_id(execution)
    if eid is None:
        raise ValueError(f"unknown execution {execution!r}")
    rows = store.backend.query(
        "SELECT id FROM performance_result WHERE execution_id = ?", (eid,)
    )
    return QueryEngine(store).fetch_results([r[0] for r in rows])


def align_executions(
    store: PTDataStore,
    left_exec: str,
    right_exec: str,
    metric: Optional[str] = None,
    combine: Callable[[Sequence[float]], float] = lambda vs: sum(vs) / len(vs),
) -> list[AlignedPair]:
    """Pair up results of two executions by (metric, context signature).

    When several results share a signature (e.g. one per process), they
    are combined with *combine* (mean by default) before pairing.
    """
    def bucket(execution: str) -> dict[tuple, list[float]]:
        out: dict[tuple, list[float]] = {}
        for pr in _results_for_execution(store, execution):
            if metric is not None and pr.metric != metric:
                continue
            if pr.value is None:
                continue
            key = (pr.metric, context_signature(store, pr))
            out.setdefault(key, []).append(pr.value)
        return out

    lefts = bucket(left_exec)
    rights = bucket(right_exec)
    pairs: list[AlignedPair] = []
    for key in sorted(set(lefts) | set(rights)):
        m, sig = key
        lv = combine(lefts[key]) if key in lefts else None
        rv = combine(rights[key]) if key in rights else None
        pairs.append(AlignedPair(m, sig, lv, rv))
    return pairs


@dataclass(frozen=True)
class Distilled:
    """Summary statistics of a result set (the paper's min/max bar chart)."""

    count: int
    minimum: float
    maximum: float
    mean: float
    total: float
    stddev: float

    @property
    def imbalance(self) -> float:
        """max/mean — a rough load-balance indicator (paper Figure 5)."""
        if self.mean == 0:
            return math.inf if self.maximum > 0 else 1.0
        return self.maximum / self.mean


def distill(values: Iterable[float]) -> Distilled:
    vs = [v for v in values if v is not None]
    if not vs:
        raise ValueError("cannot distill an empty result set")
    n = len(vs)
    total = sum(vs)
    mean = total / n
    var = sum((v - mean) ** 2 for v in vs) / n
    return Distilled(
        count=n,
        minimum=min(vs),
        maximum=max(vs),
        mean=mean,
        total=total,
        stddev=math.sqrt(var),
    )


def distill_results(results: Iterable[PerformanceResult]) -> Distilled:
    return distill(pr.value for pr in results if pr.value is not None)


@dataclass(frozen=True)
class ExecutionComparison:
    """Roll-up of aligning two executions."""

    left: str
    right: str
    pairs: tuple[AlignedPair, ...]

    @property
    def common(self) -> list[AlignedPair]:
        return [p for p in self.pairs if p.left is not None and p.right is not None]

    @property
    def only_left(self) -> list[AlignedPair]:
        return [p for p in self.pairs if p.right is None]

    @property
    def only_right(self) -> list[AlignedPair]:
        return [p for p in self.pairs if p.left is None]

    def regressions(self, threshold: float = 1.10) -> list[AlignedPair]:
        """Aligned pairs whose right value grew beyond *threshold*×."""
        return [
            p
            for p in self.common
            if p.ratio is not None and p.ratio >= threshold
        ]

    def improvements(self, threshold: float = 0.90) -> list[AlignedPair]:
        return [
            p
            for p in self.common
            if p.ratio is not None and p.ratio <= threshold
        ]


def compare_executions(
    store: PTDataStore,
    left_exec: str,
    right_exec: str,
    metric: Optional[str] = None,
) -> ExecutionComparison:
    """Full comparison of two executions (align + classify)."""
    pairs = align_executions(store, left_exec, right_exec, metric)
    return ExecutionComparison(left_exec, right_exec, tuple(pairs))
