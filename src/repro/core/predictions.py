"""Performance predictions and models (paper Section 6).

"Finally, we plan to explore the incorporation of performance predictions
and models into PerfTrack for direct comparison to actual program runs."

This module implements that: analytic scaling models (Amdahl-plus-
communication, the same family the synthetic workload uses), least-squares
fitting of a model to measured executions, storing a model's predictions
*as performance results* (tool ``prediction:<model>``) so every PerfTrack
facility — pr-filters, the GUI table, comparison operators — applies to
them unchanged, and a direct predicted-vs-actual comparison report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ptdf.format import ResourceSet
from .datastore import PTDataStore
from .diagnosis import ScalingPoint, scaling_study


@dataclass(frozen=True)
class AmdahlCommModel:
    """t(p) = serial + parallel/p + comm * log2(p)."""

    serial: float
    parallel: float
    comm: float
    name: str = "amdahl-comm"

    def predict(self, processes: int) -> float:
        p = max(1, processes)
        return self.serial + self.parallel / p + self.comm * math.log2(p)

    def describe(self) -> str:
        return (
            f"{self.name}: t(p) = {self.serial:.4g} + {self.parallel:.4g}/p "
            f"+ {self.comm:.4g}*log2(p)"
        )


def fit_amdahl_comm(points: Sequence[tuple[int, float]]) -> AmdahlCommModel:
    """Least-squares fit of the Amdahl+communication model.

    *points* are (processes, time) pairs; at least three distinct process
    counts are required (three basis functions).  Coefficients are clamped
    at zero — a negative serial fraction is noise, not physics.
    """
    if len({p for p, _t in points}) < 3:
        raise ValueError("need measurements at >= 3 distinct process counts")
    a = np.array(
        [[1.0, 1.0 / max(1, p), math.log2(max(1, p))] for p, _t in points]
    )
    b = np.array([t for _p, t in points])
    coef, *_ = np.linalg.lstsq(a, b, rcond=None)
    serial, parallel, comm = (max(0.0, float(c)) for c in coef)
    return AmdahlCommModel(serial, parallel, comm)


@dataclass(frozen=True)
class PredictionRow:
    """One predicted-vs-actual comparison point."""

    execution: str
    processes: int
    actual: float
    predicted: float

    @property
    def error(self) -> float:
        return self.predicted - self.actual

    @property
    def relative_error(self) -> float:
        if self.actual == 0:
            return math.inf
        return abs(self.error) / self.actual


def store_predictions(
    store: PTDataStore,
    model: AmdahlCommModel,
    application: str,
    metric: str,
    process_counts: Sequence[int],
    units: str = "seconds",
) -> list[str]:
    """Store model predictions as performance results.

    Creates one prediction execution per process count (named
    ``pred-<model>-p<NNNN>``) under *application*, with the model
    parameters recorded as execution attributes and the predicted value
    as an ordinary performance result from tool ``prediction:<model>`` —
    so predictions are first-class, queryable PerfTrack data.
    """
    tool = f"prediction:{model.name}"
    created = []
    for p in process_counts:
        execution = f"pred-{model.name}-p{p:04d}"
        execution = store.unique_resource_name(f"/{execution}")[1:]
        store.add_execution(execution, application)
        exec_res = f"/{execution}"
        store.add_resource(exec_res, "execution", execution)
        store.add_resource_attribute(exec_res, "number of processes", str(p))
        store.add_resource_attribute(exec_res, "model", model.describe())
        store.add_perf_result(
            execution,
            ResourceSet((exec_res,)),
            tool,
            metric,
            model.predict(p),
            units,
        )
        created.append(execution)
    store.commit()
    return created


def fit_model_to_history(
    store: PTDataStore,
    executions: Sequence[str],
    metric: str,
    nproc_attribute: str = "number of processes",
) -> tuple[AmdahlCommModel, list[ScalingPoint]]:
    """Fit a scaling model to the measured executions' metric."""
    points = scaling_study(store, executions, metric, nproc_attribute)
    if len(points) < 3:
        raise ValueError("need >= 3 executions with measurements to fit")
    model = fit_amdahl_comm([(pt.processes, pt.value) for pt in points])
    return model, points


def compare_predictions(
    store: PTDataStore,
    model: AmdahlCommModel,
    executions: Sequence[str],
    metric: str,
    nproc_attribute: str = "number of processes",
) -> list[PredictionRow]:
    """Predicted-vs-actual for each execution (the Section-6 comparison)."""
    points = scaling_study(store, executions, metric, nproc_attribute)
    return [
        PredictionRow(pt.execution, pt.processes, pt.value, model.predict(pt.processes))
        for pt in points
    ]


def cross_validate(
    store: PTDataStore,
    executions: Sequence[str],
    metric: str,
    nproc_attribute: str = "number of processes",
) -> list[PredictionRow]:
    """Leave-one-out validation: predict each run from the others.

    The honest measure of whether the stored history predicts new runs —
    the use the paper's experiment-management lineage is after.
    """
    points = scaling_study(store, executions, metric, nproc_attribute)
    if len(points) < 4:
        raise ValueError("need >= 4 executions for leave-one-out validation")
    rows = []
    for i, held_out in enumerate(points):
        train = [(pt.processes, pt.value) for j, pt in enumerate(points) if j != i]
        model = fit_amdahl_comm(train)
        rows.append(
            PredictionRow(
                held_out.execution,
                held_out.processes,
                held_out.value,
                model.predict(held_out.processes),
            )
        )
    return rows
