"""PTDataStore — PerfTrack's database-backed data store (paper Section 3).

The class exposes the Figure-6 load API (`add_application`,
`add_resource`, `add_perf_result`, ...), the lookup methods the script
interface offers ("requesting information about resources and their
attributes, details of individual executions, and performance results"),
and resolution of resource filters into resource families.

Two behaviours match the paper's performance notes:

* the ``resource_has_ancestor`` / ``resource_has_descendant`` closure
  tables are maintained on insert so hierarchy expansion never walks
  ``parent_id`` chains (toggle with ``use_closure_tables=False`` for the
  ablation benchmark), and
* foci (contexts) are deduplicated through a canonical hash, because "a
  single context can apply to multiple performance results".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

from ..dbapi.backends import Backend, open_backend
from ..minidb.errors import ProgrammingError
from ..obs.clock import now as _now
from ..obs.logsetup import get_logger
from ..obs.metrics import metrics as _M
from ..obs.tracing import trace as _trace
from ..ptdf import basetypes
from ..ptdf.format import (
    ApplicationRec,
    ExecutionRec,
    PerfResultRec,
    PerfResultSeriesRec,
    Record,
    ResourceAttributeRec,
    ResourceConstraintRec,
    ResourceRec,
    ResourceSet,
    ResourceTypeRec,
    split_name,
)
from ..ptdf.parser import parse_file, parse_string
from . import schema as schema_mod
from .filters import (
    ByAttributes,
    ByConstraint,
    ByName,
    ByType,
    FamilySpec,
    PrFilter,
    ResourceFamily,
    ResourceFilter,
)
from .resources import Resource, ResourceAttribute, ResourceType


@dataclass
class LoadStats:
    """Counts of objects created by one load (Table 1 bookkeeping)."""

    applications: int = 0
    resource_types: int = 0
    executions: int = 0
    resources: int = 0
    attributes: int = 0
    constraints: int = 0
    results: int = 0
    foci: int = 0

    def __iadd__(self, other: "LoadStats") -> "LoadStats":
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))
        return self


_log = get_logger("load")

# Loader and query-layer metrics (no-ops while the registry is disabled).
# The per-record-type counters are fed from LoadStats after each load, so
# the record loop itself carries no instrumentation.
_LOADS = _M.counter("ptdf.load.loads")
_LOAD_RECORDS = _M.counter("ptdf.load.records", unit="records")
_LOAD_SECONDS = _M.histogram("ptdf.load.seconds")
_LOAD_RATE = _M.gauge("ptdf.load.records_per_s", unit="records/s")
_LOAD_TYPE_COUNTS = {
    field: _M.counter(f"ptdf.load.{field}")
    for field in LoadStats.__dataclass_fields__
}
_FILTERS_RESOLVED = _M.counter("query.filters_resolved")
_FILTER_MATCHES = _M.counter("query.filter_matches", unit="resources")
_FOCUS_RESOLVE_SECONDS = _M.histogram("query.focus_resolution_seconds")
_CLOSURE_EXPANSIONS = _M.counter("query.closure_expansions")


class _CountingIter:
    """Wraps a record stream to count records as the loader consumes them."""

    __slots__ = ("_it", "n")

    def __init__(self, it: Iterable[Record]) -> None:
        self._it = it
        self.n = 0

    def __iter__(self):
        for item in self._it:
            self.n += 1
            yield item


class PTDataStore:
    """An open PerfTrack data store."""

    def __init__(
        self,
        backend: Optional[Backend] = None,
        backend_kind: str = "minidb",
        database: str = ":memory:",
        initialize: bool = True,
        load_base_types: bool = True,
        use_closure_tables: bool = True,
        with_indexes: bool = True,
        bulk_load: bool = True,
    ) -> None:
        self.backend = backend if backend is not None else open_backend(backend_kind, database)
        self.use_closure_tables = use_closure_tables
        #: When True (default), ``load_records`` takes the batched fast
        #: path (see :mod:`repro.core.bulkload`); False keeps the per-row
        #: path for the ablation benchmark.
        self.bulk_load = bulk_load
        if initialize and not schema_mod.schema_is_present(self.backend):
            schema_mod.create_schema(self.backend, with_indexes=with_indexes)
        # Name -> id caches (loaded lazily; critical for Paradyn-scale loads).
        self._type_ids: dict[str, int] = {}
        self._resource_ids: dict[str, int] = {}
        self._app_ids: dict[str, int] = {}
        self._exec_ids: dict[str, int] = {}
        self._metric_ids: dict[str, int] = {}
        self._tool_ids: dict[str, int] = {}
        self._focus_ids: dict[str, int] = {}
        # Materialised Resource objects are immutable once created, so the
        # id -> Resource cache never needs invalidation.
        self._resource_obj_cache: dict[int, Resource] = {}
        self._warm_caches()
        if initialize and load_base_types and not self._type_ids:
            self.initialize_base_types()

    # ------------------------------------------------------------------ setup

    def _warm_caches(self) -> None:
        b = self.backend
        if not schema_mod.schema_is_present(b):
            return
        self._type_ids = {n: i for i, n in b.query("SELECT id, name FROM focus_framework")}
        self._app_ids = {n: i for i, n in b.query("SELECT id, name FROM application")}
        self._exec_ids = {n: i for i, n in b.query("SELECT id, name FROM execution")}
        self._metric_ids = {n: i for i, n in b.query("SELECT id, name FROM metric")}
        self._tool_ids = {n: i for i, n in b.query("SELECT id, name FROM performance_tool")}
        self._resource_ids = {n: i for i, n in b.query("SELECT id, name FROM resource_item")}
        self._focus_ids = {h: i for i, h in b.query("SELECT id, resource_hash FROM focus")}

    def initialize_base_types(self) -> None:
        """Load the Figure-2 base types through the type-extension interface."""
        self.load_records(basetypes.base_type_records())

    def close(self) -> None:
        self.backend.close()

    def commit(self) -> None:
        self.backend.commit()

    def __enter__(self) -> "PTDataStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.backend.commit()
        else:
            self.backend.rollback()
        self.close()

    # --------------------------------------------------------------- type system

    def add_resource_type(self, type_path: str) -> int:
        """Declare a type path; every prefix becomes a type node.

        Returns the id of the deepest node.  Used both for base types and
        for user extensions ("users may add new hierarchies or new types
        within the base hierarchies").
        """
        segments = [s for s in type_path.split("/") if s]
        if not segments:
            raise ValueError(f"empty resource type path {type_path!r}")
        parent_id: Optional[int] = None
        tid = -1
        for depth in range(1, len(segments) + 1):
            path = "/".join(segments[:depth])
            tid = self._type_ids.get(path, -1)
            if tid < 0:
                tid = self.backend.insert(
                    "INSERT INTO focus_framework (name, base_name, parent_id) VALUES (?, ?, ?)",
                    (path, segments[depth - 1], parent_id),
                )
                self._type_ids[path] = tid
            parent_id = tid
        return tid

    def resource_type(self, type_path: str) -> Optional[ResourceType]:
        row = self.backend.query_one(
            "SELECT id, name, parent_id FROM focus_framework WHERE name = ?",
            (type_path,),
        )
        return ResourceType(*row) if row else None

    def resource_types(self) -> list[ResourceType]:
        rows = self.backend.query(
            "SELECT id, name, parent_id FROM focus_framework ORDER BY name"
        )
        return [ResourceType(*r) for r in rows]

    def top_level_types(self) -> list[ResourceType]:
        rows = self.backend.query(
            "SELECT id, name, parent_id FROM focus_framework WHERE parent_id IS NULL ORDER BY name"
        )
        return [ResourceType(*r) for r in rows]

    def child_types(self, type_id: int) -> list[ResourceType]:
        rows = self.backend.query(
            "SELECT id, name, parent_id FROM focus_framework WHERE parent_id = ? ORDER BY name",
            (type_id,),
        )
        return [ResourceType(*r) for r in rows]

    def type_id(self, type_path: str) -> int:
        tid = self._type_ids.get(type_path)
        if tid is None:
            raise ProgrammingError(f"unknown resource type {type_path!r}")
        return tid

    # ------------------------------------------------------------ dimension tables

    def add_application(self, name: str) -> int:
        aid = self._app_ids.get(name)
        if aid is None:
            aid = self.backend.insert("INSERT INTO application (name) VALUES (?)", (name,))
            self._app_ids[name] = aid
        return aid

    def add_execution(self, name: str, application: str) -> int:
        eid = self._exec_ids.get(name)
        if eid is None:
            aid = self.add_application(application)
            eid = self.backend.insert(
                "INSERT INTO execution (name, application_id) VALUES (?, ?)", (name, aid)
            )
            self._exec_ids[name] = eid
        return eid

    def add_metric(self, name: str) -> int:
        mid = self._metric_ids.get(name)
        if mid is None:
            mid = self.backend.insert("INSERT INTO metric (name) VALUES (?)", (name,))
            self._metric_ids[name] = mid
        return mid

    def add_tool(self, name: str) -> int:
        tid = self._tool_ids.get(name)
        if tid is None:
            tid = self.backend.insert(
                "INSERT INTO performance_tool (name) VALUES (?)", (name,)
            )
            self._tool_ids[name] = tid
        return tid

    # ----------------------------------------------------------------- resources

    def add_resource(
        self, name: str, type_path: str, execution: Optional[str] = None
    ) -> int:
        """Insert a resource (and any missing ancestors) by full name.

        The depth of *name* must match the depth of *type_path*; ancestors
        take the corresponding type-path prefixes, so loading
        ``/Frost/batch/n1/p0`` of type ``machine-less`` hierarchies stays
        consistent with Section 2.1's naming scheme.
        """
        rid = self._resource_ids.get(name)
        if rid is not None:
            return rid
        segments = split_name(name)
        type_segments = [s for s in type_path.split("/") if s]
        if len(segments) != len(type_segments):
            raise ValueError(
                f"resource {name!r} has depth {len(segments)} but type "
                f"{type_path!r} has depth {len(type_segments)}"
            )
        self.add_resource_type(type_path)
        exec_id = self._exec_ids.get(execution) if execution else None
        if execution and exec_id is None:
            raise ProgrammingError(f"unknown execution {execution!r}")
        parent_id: Optional[int] = None
        ancestor_ids: list[int] = []
        for depth in range(1, len(segments) + 1):
            partial = "/" + "/".join(segments[:depth])
            rid = self._resource_ids.get(partial)
            if rid is None:
                tpath = "/".join(type_segments[:depth])
                rid = self.backend.insert(
                    "INSERT INTO resource_item "
                    "(name, base_name, parent_id, focus_framework_id, execution_id) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (partial, segments[depth - 1], parent_id, self._type_ids[tpath], exec_id),
                )
                self._resource_ids[partial] = rid
                if self.use_closure_tables and ancestor_ids:
                    self.backend.executemany(
                        "INSERT INTO resource_has_ancestor (resource_id, ancestor_id) VALUES (?, ?)",
                        [(rid, a) for a in ancestor_ids],
                    )
                    self.backend.executemany(
                        "INSERT INTO resource_has_descendant (resource_id, descendant_id) VALUES (?, ?)",
                        [(a, rid) for a in ancestor_ids],
                    )
            parent_id = rid
            ancestor_ids.append(rid)
        return rid

    def add_resource_attribute(
        self, resource: str, attribute: str, value: str, attr_type: str = "string"
    ) -> int:
        rid = self.resource_id(resource)
        if attr_type == "resource":
            # Resource-valued attribute: equivalent to a ResourceConstraint.
            self.add_resource_constraint(resource, value)
        return self.backend.insert(
            "INSERT INTO resource_attribute (resource_id, name, value, attr_type) "
            "VALUES (?, ?, ?, ?)",
            (rid, attribute, str(value), attr_type),
        )

    def add_resource_constraint(self, resource1: str, resource2: str) -> int:
        r1 = self.resource_id(resource1)
        r2 = self.resource_id(resource2)
        return self.backend.insert(
            "INSERT INTO resource_constraint (resource_id_1, resource_id_2) VALUES (?, ?)",
            (r1, r2),
        )

    def resource_id(self, name: str) -> int:
        rid = self._resource_ids.get(name)
        if rid is None:
            raise ProgrammingError(f"unknown resource {name!r}")
        return rid

    def has_resource(self, name: str) -> bool:
        return name in self._resource_ids

    def unique_resource_name(self, prefix: str) -> str:
        """Generate a full resource name not yet present (script interface)."""
        if prefix not in self._resource_ids:
            return prefix
        for i in itertools.count(1):
            candidate = f"{prefix}_{i}"
            if candidate not in self._resource_ids:
                return candidate
        raise AssertionError("unreachable")

    # ------------------------------------------------------------------ results

    def _focus_for(self, resource_ids: Sequence[int]) -> int:
        """Find or create the focus holding exactly *resource_ids*."""
        canonical = ",".join(map(str, sorted(set(resource_ids))))
        fid = self._focus_ids.get(canonical)
        if fid is not None:
            return fid
        fid = self.backend.insert(
            "INSERT INTO focus (resource_hash) VALUES (?)", (canonical,)
        )
        self.backend.executemany(
            "INSERT INTO focus_has_resource (focus_id, resource_id) VALUES (?, ?)",
            [(fid, rid) for rid in sorted(set(resource_ids))],
        )
        self._focus_ids[canonical] = fid
        return fid

    def add_perf_result(
        self,
        execution: str,
        resource_sets: Union[ResourceSet, Sequence[ResourceSet]],
        tool: str,
        metric: str,
        value: Optional[float],
        units: str = "",
        start_time: Optional[str] = None,
        end_time: Optional[str] = None,
    ) -> int:
        """Store one performance result with one or more contexts."""
        if isinstance(resource_sets, ResourceSet):
            resource_sets = (resource_sets,)
        eid = self._exec_ids.get(execution)
        if eid is None:
            raise ProgrammingError(f"unknown execution {execution!r}")
        mid = self.add_metric(metric)
        tid = self.add_tool(tool)
        pr_id = self.backend.insert(
            "INSERT INTO performance_result "
            "(execution_id, metric_id, performance_tool_id, value, units, start_time, end_time) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (eid, mid, tid, value, units, start_time, end_time),
        )
        self._associate_foci(pr_id, resource_sets)
        return pr_id

    def _associate_foci(self, pr_id: int, resource_sets) -> None:
        assoc = []
        for rs in resource_sets:
            ids = [self.resource_id(n) for n in rs.names]
            fid = self._focus_for(ids)
            assoc.append((pr_id, fid, rs.set_type))
        self.backend.executemany(
            "INSERT INTO performance_result_has_focus "
            "(performance_result_id, focus_id, focus_type) VALUES (?, ?, ?)",
            assoc,
        )

    def add_vector_result(
        self,
        execution: str,
        resource_sets: Union[ResourceSet, Sequence[ResourceSet]],
        tool: str,
        metric: str,
        values: Sequence[Optional[float]],
        units: str = "",
        start_time: float = 0.0,
        bin_width: float = 1.0,
    ) -> int:
        """Store one array-valued performance result (Section-6 extension).

        The whole array is one ``performance_result`` row with
        ``value_type='vector'`` (its scalar ``value`` is the mean of the
        defined bins, so scalar-only consumers still see something
        sensible); per-bin values land in ``performance_result_vector``
        with their time bounds.  ``None`` entries (Paradyn's ``nan`` bins)
        are not stored, matching the scalar loader's behaviour.
        """
        if isinstance(resource_sets, ResourceSet):
            resource_sets = (resource_sets,)
        eid = self._exec_ids.get(execution)
        if eid is None:
            raise ProgrammingError(f"unknown execution {execution!r}")
        mid = self.add_metric(metric)
        tid = self.add_tool(tool)
        defined = [v for v in values if v is not None]
        mean = sum(defined) / len(defined) if defined else None
        end_time = start_time + bin_width * len(values)
        pr_id = self.backend.insert(
            "INSERT INTO performance_result "
            "(execution_id, metric_id, performance_tool_id, value, units, "
            "start_time, end_time, value_type) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (eid, mid, tid, mean, units, repr(start_time), repr(end_time), "vector"),
        )
        rows = []
        for i, v in enumerate(values):
            if v is None:
                continue
            rows.append(
                (pr_id, i, start_time + i * bin_width, start_time + (i + 1) * bin_width, v)
            )
        self.backend.executemany(
            "INSERT INTO performance_result_vector "
            "(performance_result_id, bin_index, bin_start, bin_end, value) "
            "VALUES (?, ?, ?, ?, ?)",
            rows,
        )
        self._associate_foci(pr_id, resource_sets)
        return pr_id

    def vector_of(self, result_id: int) -> list[tuple[int, float, float, float]]:
        """(bin_index, bin_start, bin_end, value) rows of a vector result."""
        return [
            tuple(r)
            for r in self.backend.query(
                "SELECT bin_index, bin_start, bin_end, value "
                "FROM performance_result_vector "
                "WHERE performance_result_id = ? ORDER BY bin_index",
                (result_id,),
            )
        ]

    # ------------------------------------------------------------------- loading

    def load_records(
        self, records: Iterable[Record], bulk: Optional[bool] = None
    ) -> LoadStats:
        """Load PTdf records (the PTdataStore load interface of Figure 6).

        By default this dispatches to :meth:`load_bulk`; pass
        ``bulk=False`` (or construct the store with ``bulk_load=False``)
        for the original per-row path.  Both produce identical databases;
        the bulk path is what survives Paradyn-scale inputs.
        """
        use_bulk = self.bulk_load if bulk is None else bulk
        if not (_M.enabled or _trace.enabled):
            return self._load_records_inner(records, use_bulk)
        # Sized inputs (the common case: PTdf parsers return lists) are
        # counted with len(), so the record loop itself runs uninstrumented
        # — one add() per load, not one per record.  Only unsized streams
        # pay for the counting wrapper.
        try:
            sized_n: Optional[int] = len(records)  # type: ignore[arg-type]
        except TypeError:
            sized_n = None
        source = records if sized_n is not None else _CountingIter(records)
        mode = "bulk" if use_bulk else "per-row"
        t0 = _now()
        with _trace.span("load", cat="core", mode=mode):
            stats = self._load_records_inner(source, use_bulk)
        elapsed = _now() - t0
        n = sized_n if sized_n is not None else source.n
        _LOADS.inc()
        _LOAD_RECORDS.add(n)
        _LOAD_SECONDS.observe(elapsed)
        if elapsed > 0:
            _LOAD_RATE.set(n / elapsed)
        for field, counter in _LOAD_TYPE_COUNTS.items():
            counter.add(getattr(stats, field))
        _log.info(
            "loaded %d record(s) in %.3fs (%s path, %.0f records/s)",
            n, elapsed, mode,
            n / elapsed if elapsed > 0 else 0.0,
        )
        return stats

    def _load_records_inner(
        self, records: Iterable[Record], use_bulk: bool
    ) -> LoadStats:
        if use_bulk:
            return self.load_bulk(records)
        stats = LoadStats()
        pre_foci = len(self._focus_ids)
        for rec in records:
            if isinstance(rec, ApplicationRec):
                before = len(self._app_ids)
                self.add_application(rec.name)
                stats.applications += len(self._app_ids) - before
            elif isinstance(rec, ResourceTypeRec):
                before = len(self._type_ids)
                self.add_resource_type(rec.name)
                stats.resource_types += len(self._type_ids) - before
            elif isinstance(rec, ExecutionRec):
                before = len(self._exec_ids)
                self.add_execution(rec.name, rec.application)
                stats.executions += len(self._exec_ids) - before
            elif isinstance(rec, ResourceRec):
                before = len(self._resource_ids)
                self.add_resource(rec.name, rec.type, rec.execution)
                stats.resources += len(self._resource_ids) - before
            elif isinstance(rec, ResourceAttributeRec):
                self.add_resource_attribute(
                    rec.resource, rec.attribute, rec.value, rec.attr_type
                )
                stats.attributes += 1
            elif isinstance(rec, ResourceConstraintRec):
                self.add_resource_constraint(rec.resource1, rec.resource2)
                stats.constraints += 1
            elif isinstance(rec, PerfResultRec):
                self.add_perf_result(
                    rec.execution,
                    rec.resource_sets,
                    rec.tool,
                    rec.metric,
                    rec.value,
                    rec.units,
                )
                stats.results += 1
            elif isinstance(rec, PerfResultSeriesRec):
                self.add_vector_result(
                    rec.execution,
                    rec.resource_sets,
                    rec.tool,
                    rec.metric,
                    rec.values,
                    rec.units,
                    rec.start_time,
                    rec.bin_width,
                )
                stats.results += 1
            else:
                raise ProgrammingError(f"unknown PTdf record {type(rec).__name__}")
        stats.foci = len(self._focus_ids) - pre_foci
        self.backend.commit()
        return stats

    def load_bulk(self, records: Iterable[Record]) -> LoadStats:
        """Batched PTdf load: buffer per table, flush via ``executemany``."""
        from .bulkload import BulkLoader

        return BulkLoader(self).load(records)

    def load_string(
        self, text: str, bulk: Optional[bool] = None, lint: bool = False
    ) -> LoadStats:
        if lint:
            self._lint_or_raise(lambda linter: linter.lint_string(text))
        return self.load_records(parse_string(text), bulk=bulk)

    def load_file(
        self, path: str, bulk: Optional[bool] = None, lint: bool = False
    ) -> LoadStats:
        if lint:
            self._lint_or_raise(lambda linter: linter.lint_file(path))
        with _trace.span("load.file", cat="core", file=path):
            return self.load_records(parse_file(path), bulk=bulk)

    def _lint_or_raise(self, run) -> None:
        """Refuse a load whose input has lint errors (``lint=True`` paths)."""
        from ..ptdf.lint import Linter, PTdfLintError, context_from_store, has_errors

        diagnostics = run(Linter(context_from_store(self)))
        if has_errors(diagnostics):
            raise PTdfLintError(diagnostics)

    # ------------------------------------------------------------------- lookups

    _RES_COLS = (
        "r.id, r.name, f.name, r.focus_framework_id, r.parent_id, r.execution_id"
    )
    _RES_FROM = "resource_item r JOIN focus_framework f ON f.id = r.focus_framework_id"

    def resource_by_name(self, name: str) -> Optional[Resource]:
        row = self.backend.query_one(
            f"SELECT {self._RES_COLS} FROM {self._RES_FROM} WHERE r.name = ?", (name,)
        )
        return Resource(*row) if row else None

    def resource_by_id(self, resource_id: int) -> Optional[Resource]:
        cached = self._resource_obj_cache.get(resource_id)
        if cached is not None:
            return cached
        row = self.backend.query_one(
            f"SELECT {self._RES_COLS} FROM {self._RES_FROM} WHERE r.id = ?", (resource_id,)
        )
        if row is None:
            return None
        res = Resource(*row)
        self._resource_obj_cache[resource_id] = res
        return res

    def resources_by_ids(self, ids: Iterable[int]) -> list[Resource]:
        out = []
        for rid in ids:
            r = self.resource_by_id(rid)
            if r is not None:
                out.append(r)
        return out

    def resources_of_type(self, type_path: str) -> list[Resource]:
        rows = self.backend.query(
            f"SELECT {self._RES_COLS} FROM {self._RES_FROM} WHERE f.name = ? ORDER BY r.name",
            (type_path,),
        )
        return [Resource(*r) for r in rows]

    def resources_with_base_name(self, base: str) -> list[Resource]:
        rows = self.backend.query(
            f"SELECT {self._RES_COLS} FROM {self._RES_FROM} WHERE r.base_name = ? ORDER BY r.name",
            (base,),
        )
        return [Resource(*r) for r in rows]

    def children_of(self, resource_id: int) -> list[Resource]:
        rows = self.backend.query(
            f"SELECT {self._RES_COLS} FROM {self._RES_FROM} WHERE r.parent_id = ? ORDER BY r.name",
            (resource_id,),
        )
        return [Resource(*r) for r in rows]

    def top_level_resources(self) -> list[Resource]:
        rows = self.backend.query(
            f"SELECT {self._RES_COLS} FROM {self._RES_FROM} WHERE r.parent_id IS NULL ORDER BY r.name"
        )
        return [Resource(*r) for r in rows]

    def attributes_of(self, resource_id: int) -> list[ResourceAttribute]:
        rows = self.backend.query(
            "SELECT resource_id, name, value, attr_type FROM resource_attribute "
            "WHERE resource_id = ? ORDER BY name",
            (resource_id,),
        )
        return [ResourceAttribute(*r) for r in rows]

    def attribute_value(self, resource_id: int, name: str) -> Optional[str]:
        return self.backend.scalar(
            "SELECT value FROM resource_attribute WHERE resource_id = ? AND name = ?",
            (resource_id, name),
        )

    def constraints_of(self, resource_id: int) -> list[Resource]:
        rows = self.backend.query(
            "SELECT resource_id_2 FROM resource_constraint WHERE resource_id_1 = ?",
            (resource_id,),
        )
        return self.resources_by_ids([r[0] for r in rows])

    # -- hierarchy expansion (closure tables vs parent-chain walk) ---------------

    def ancestors_of(self, resource_id: int) -> set[int]:
        _CLOSURE_EXPANSIONS.inc()
        if self.use_closure_tables:
            rows = self.backend.query(
                "SELECT ancestor_id FROM resource_has_ancestor WHERE resource_id = ?",
                (resource_id,),
            )
            return {r[0] for r in rows}
        out: set[int] = set()
        current = resource_id
        while True:
            parent = self.backend.scalar(
                "SELECT parent_id FROM resource_item WHERE id = ?", (current,)
            )
            if parent is None:
                return out
            out.add(parent)
            current = parent

    def descendants_of(self, resource_id: int) -> set[int]:
        _CLOSURE_EXPANSIONS.inc()
        if self.use_closure_tables:
            rows = self.backend.query(
                "SELECT descendant_id FROM resource_has_descendant WHERE resource_id = ?",
                (resource_id,),
            )
            return {r[0] for r in rows}
        out: set[int] = set()
        frontier = [resource_id]
        while frontier:
            rows = []
            for rid in frontier:
                rows.extend(
                    r[0]
                    for r in self.backend.query(
                        "SELECT id FROM resource_item WHERE parent_id = ?", (rid,)
                    )
                )
            frontier = [r for r in rows if r not in out]
            out.update(rows)
        return out

    # -- dimensions -----------------------------------------------------------------

    def applications(self) -> list[str]:
        return [r[0] for r in self.backend.query("SELECT name FROM application ORDER BY name")]

    def executions(self, application: Optional[str] = None) -> list[str]:
        if application is None:
            rows = self.backend.query("SELECT name FROM execution ORDER BY name")
        else:
            rows = self.backend.query(
                "SELECT e.name FROM execution e JOIN application a "
                "ON a.id = e.application_id WHERE a.name = ? ORDER BY e.name",
                (application,),
            )
        return [r[0] for r in rows]

    def metrics(self) -> list[str]:
        return [r[0] for r in self.backend.query("SELECT name FROM metric ORDER BY name")]

    def tools(self) -> list[str]:
        return [
            r[0] for r in self.backend.query("SELECT name FROM performance_tool ORDER BY name")
        ]

    def execution_id(self, name: str) -> Optional[int]:
        return self._exec_ids.get(name)

    def execution_details(self, name: str) -> dict:
        """Details of one execution: application, resources, result count."""
        eid = self._exec_ids.get(name)
        if eid is None:
            raise ProgrammingError(f"unknown execution {name!r}")
        app = self.backend.scalar(
            "SELECT a.name FROM application a JOIN execution e "
            "ON e.application_id = a.id WHERE e.id = ?",
            (eid,),
        )
        n_resources = self.backend.scalar(
            "SELECT COUNT(*) FROM resource_item WHERE execution_id = ?", (eid,)
        )
        n_results = self.backend.scalar(
            "SELECT COUNT(*) FROM performance_result WHERE execution_id = ?", (eid,)
        )
        metrics = [
            r[0]
            for r in self.backend.query(
                "SELECT DISTINCT m.name FROM performance_result p "
                "JOIN metric m ON m.id = p.metric_id WHERE p.execution_id = ? "
                "ORDER BY m.name",
                (eid,),
            )
        ]
        return {
            "execution": name,
            "application": app,
            "resources": n_resources,
            "results": n_results,
            "metrics": metrics,
        }

    def count_rows(self, table: str) -> int:
        # table names come from schema.TABLE_NAMES, not user input
        return int(self.backend.scalar(f"SELECT COUNT(*) FROM {table}") or 0)  # noqa: PTL001

    def db_stats(self) -> dict[str, int]:
        return {t: self.count_rows(t) for t in schema_mod.TABLE_NAMES}

    # ------------------------------------------------------------- filter resolution

    def resolve_filter(self, f: ResourceFilter) -> ResourceFamily:
        """Apply one resource filter, including A/D/B/N expansion."""
        if not (_M.enabled or _trace.enabled):
            return self._resolve_filter_inner(f)
        t0 = _now()
        with _trace.span("resolve_filter", cat="query", filter=f.describe()):
            family = self._resolve_filter_inner(f)
        _FOCUS_RESOLVE_SECONDS.observe(_now() - t0)
        _FILTERS_RESOLVED.inc()
        _FILTER_MATCHES.add(len(family.resource_ids))
        return family

    def _resolve_filter_inner(self, f: ResourceFilter) -> ResourceFamily:
        ids = self._filter_base_ids(f)
        expanded = set(ids)
        if f.expansion.include_ancestors:
            for rid in ids:
                expanded |= self.ancestors_of(rid)
        if f.expansion.include_descendants:
            for rid in ids:
                expanded |= self.descendants_of(rid)
        return ResourceFamily(label=f.describe(), resource_ids=frozenset(expanded))

    def resolve_filter_spec(self, f: ResourceFilter) -> FamilySpec:
        """Resolve one filter into a shard-pushable :class:`FamilySpec`.

        Base ids and ancestor expansion are applied eagerly (both are
        small and global); descendant expansion is left as a flag for the
        scatter-gather engine to push down against each shard's closure
        replica.  ``base ∪ extra ∪ descendants(base)`` equals the eager
        :meth:`resolve_filter` family exactly.
        """
        ids = self._filter_base_ids(f)
        extra: set[int] = set()
        if f.expansion.include_ancestors:
            for rid in ids:
                extra |= self.ancestors_of(rid)
            extra -= ids
        return FamilySpec(
            label=f.describe(),
            base_ids=frozenset(ids),
            extra_ids=frozenset(extra),
            include_descendants=f.expansion.include_descendants,
        )

    def _filter_base_ids(self, f: ResourceFilter) -> set[int]:
        """The filter's direct matches, before A/D expansion."""
        if isinstance(f, ByType):
            ids = {
                r[0]
                for r in self.backend.query(
                    "SELECT r.id FROM resource_item r JOIN focus_framework t "
                    "ON t.id = r.focus_framework_id WHERE t.name = ?",
                    (f.type_path,),
                )
            }
        elif isinstance(f, ByName):
            if f.is_full_name:
                rid = self._resource_ids.get(f.name)
                ids = {rid} if rid is not None else set()
            else:
                ids = {
                    r[0]
                    for r in self.backend.query(
                        "SELECT id FROM resource_item WHERE base_name = ?", (f.name,)
                    )
                }
        elif isinstance(f, ByAttributes):
            ids = self._resolve_attributes(f)
        elif isinstance(f, ByConstraint):
            target = self._resource_ids.get(f.target)
            if target is None:
                ids = set()
            elif f.direction == "to":
                ids = {
                    r[0]
                    for r in self.backend.query(
                        "SELECT resource_id_1 FROM resource_constraint "
                        "WHERE resource_id_2 = ?",
                        (target,),
                    )
                }
            else:
                ids = {
                    r[0]
                    for r in self.backend.query(
                        "SELECT resource_id_2 FROM resource_constraint "
                        "WHERE resource_id_1 = ?",
                        (target,),
                    )
                }
        else:
            raise ProgrammingError(f"unknown resource filter {type(f).__name__}")
        return ids

    def _resolve_attributes(self, f: ByAttributes) -> set[int]:
        result: Optional[set[int]] = None
        for clause in f.clauses:
            rows = self.backend.query(
                "SELECT resource_id, value FROM resource_attribute WHERE name = ?",
                (clause.name,),
            )
            hit = {rid for rid, value in rows if clause.test(value)}
            result = hit if result is None else (result & hit)
            if not result:
                return set()
        assert result is not None
        if f.type_path is not None:
            type_ids = {
                r[0]
                for r in self.backend.query(
                    "SELECT r.id FROM resource_item r JOIN focus_framework t "
                    "ON t.id = r.focus_framework_id WHERE t.name = ?",
                    (f.type_path,),
                )
            }
            result &= type_ids
        return result

    def resolve_prfilter(self, prf: PrFilter) -> list[ResourceFamily]:
        return [self.resolve_filter(f) for f in prf.filters]
