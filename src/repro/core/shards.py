"""Sharded PerfTrack data store: catalog + hash-partitioned fact shards.

The paper's headline scenario is a 16k-node BlueGene/L partition; a
single embedded database ingests and queries that volume, but every
fact row funnels through one WAL and one set of secondary indexes.  This
module splits the store the way PerfTrack's own schema suggests:

* a **catalog** database holds the full schema — the dimension tables
  (``application``, ``execution``, ``metric``, ``performance_tool``),
  the resource hierarchy (``resource_item``, ``resource_attribute``,
  ``resource_constraint``, closure tables), the focus framework and the
  ``focus`` table.  Global id assignment happens here, so the union of
  all databases is **row-for-row identical** to what the serial
  single-store load would have produced — the PR 1 byte-identical
  contents guarantee is the correctness oracle for the whole design.
* **N fact shards**, each its own minidb database behind its own
  :class:`~repro.dbapi.backends.EngineBackend` (own engine, own
  group-commit WAL).  ``performance_result``,
  ``performance_result_vector`` and ``performance_result_has_focus``
  are hash-partitioned by ``execution_id`` through :class:`ShardRouter`;
  ``focus_has_resource`` rows replicate to every shard whose results
  reference the focus, and the ``resource_has_ancestor`` closure rows of
  the focus members replicate alongside (incremental per-shard closure
  maintenance), so a shard can evaluate a whole pr-filter — including
  descendant expansion — without touching the catalog.

Shard tables carry no foreign keys (their parents live in the catalog
database) and are created **without** secondary indexes; the indexes are
built once after a bulk load (:meth:`ShardedPTDataStore.ensure_shard_indexes`),
which is several times cheaper than maintaining them row by row.

Scatter-gather evaluation lives in
:class:`repro.core.query.ShardedQueryEngine`; the parallel file loader in
:mod:`repro.core.pload`.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, Optional, Sequence

from ..dbapi.backends import Backend, EngineBackend, open_backend
from ..minidb.errors import ProgrammingError
from ..obs.clock import now as _now
from ..obs.logsetup import get_logger
from ..obs.metrics import metrics as _M
from ..obs.tracing import trace as _trace
from ..ptdf.format import Record
from ..ptdf.parser import parse_file, parse_string
from . import schema as schema_mod
from .datastore import LoadStats, PTDataStore
from .filters import FamilySpec, PrFilter

_log = get_logger("shards")

#: Manifest file a directory-backed sharded store keeps beside its
#: databases; reopening validates the shard count against it.
MANIFEST_NAME = "shards.json"

# Shard-layer metrics (no-ops while the registry is disabled); catalogued
# in docs/observability.md.  The routing/replication counters live with
# the loader in :mod:`repro.core.bulkload`.
_SHARD_LOADS = _M.counter("shard.loads")
_SHARD_LOAD_SECONDS = _M.histogram("shard.load_seconds")
_INDEX_BUILDS = _M.counter("shard.index_builds")
_INDEX_BUILD_SECONDS = _M.histogram("shard.index_build_seconds")


class ShardRouter:
    """Deterministic execution-id → shard mapping.

    A multiplicative (Fibonacci) hash spreads consecutive execution ids
    evenly and — unlike Python's ``hash`` on str — is stable across
    processes and runs, which the parallel loader's reproducible-ids
    guarantee depends on.
    """

    __slots__ = ("n_shards",)

    _MIX = 0x9E3779B97F4A7C15  # 64-bit golden-ratio multiplier
    _MASK = (1 << 64) - 1

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.n_shards = n_shards

    def shard_of(self, execution_id: int) -> int:
        """The shard index owning all fact rows of one execution."""
        return (((execution_id * self._MIX) & self._MASK) >> 17) % self.n_shards


def _shard_backend(kind: str, database: str) -> Backend:
    """Open one fact-shard backend (minidb shards get their own engine)."""
    if kind.lower() == "minidb":
        return EngineBackend(database)
    return open_backend(kind, database)


class ShardedPTDataStore:
    """A PerfTrack store partitioned across a catalog and N fact shards.

    Construction mirrors :class:`PTDataStore`; pass ``directory`` for a
    persistent store (``catalog.db`` + ``shard-NNNN.db`` + a manifest
    recording the shard count) or leave it ``None`` for in-memory shards.
    Loading goes through the sharded bulk loader only — the per-row
    ``add_*`` API stays on the plain store.  Lookup and filter-resolution
    methods not defined here delegate to the catalog store, which holds
    every dimension row.
    """

    def __init__(
        self,
        n_shards: Optional[int] = None,
        backend_kind: str = "minidb",
        directory: Optional[str] = None,
        initialize: bool = True,
        load_base_types: bool = True,
    ) -> None:
        self.backend_kind = backend_kind
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            manifest = self._read_manifest(directory)
            if manifest is not None:
                if n_shards is not None and n_shards != manifest["n_shards"]:
                    raise ProgrammingError(
                        f"sharded store at {directory!r} has "
                        f"{manifest['n_shards']} shard(s); refusing to open "
                        f"with n_shards={n_shards} (resharding is not "
                        f"supported)"
                    )
                n_shards = manifest["n_shards"]
                backend_kind = self.backend_kind = manifest["backend"]
            else:
                n_shards = n_shards if n_shards is not None else 4
                self._write_manifest(directory, n_shards, backend_kind)
            catalog_db = os.path.join(directory, "catalog.db")
            shard_dbs = [
                os.path.join(directory, f"shard-{i:04d}.db")
                for i in range(n_shards)
            ]
        else:
            n_shards = n_shards if n_shards is not None else 4
            catalog_db = ":memory:"
            shard_dbs = [":memory:"] * n_shards
        self.n_shards = n_shards
        self.router = ShardRouter(n_shards)
        self.catalog = PTDataStore(
            backend_kind=backend_kind,
            database=catalog_db,
            initialize=initialize,
            load_base_types=load_base_types,
        )
        if not self.catalog.use_closure_tables:  # pragma: no cover - config guard
            raise ProgrammingError(
                "sharded stores require closure tables (per-shard closure "
                "replicas are maintained from them)"
            )
        self.shard_backends: list[Backend] = []
        for db in shard_dbs:
            backend = _shard_backend(backend_kind, db)
            if not schema_mod.shard_schema_is_present(backend):
                schema_mod.create_shard_schema(backend, with_indexes=False)
            self.shard_backends.append(backend)
        #: per-shard focus ids already replicated (focus_has_resource rows
        #: present on the shard)
        self._shard_foci: list[set[int]] = []
        #: per-shard resource ids whose closure rows are replicated
        self._shard_resources: list[set[int]] = []
        self._warm_shard_state()

    # ------------------------------------------------------------------ manifest

    @staticmethod
    def _read_manifest(directory: str) -> Optional[dict]:
        path = os.path.join(directory, MANIFEST_NAME)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
        if not isinstance(manifest, dict) or "n_shards" not in manifest:
            raise ProgrammingError(f"malformed shard manifest {path!r}")
        return manifest

    @staticmethod
    def _write_manifest(directory: str, n_shards: int, backend: str) -> None:
        path = os.path.join(directory, MANIFEST_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump({"version": 1, "n_shards": n_shards, "backend": backend}, fh)
            fh.write("\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------ state

    def _warm_shard_state(self) -> None:
        """Rebuild the per-shard replication bookkeeping from the shards."""
        #: lazily built per-shard in-memory evaluation indexes; any
        #: content change (load, rollback) drops the whole set
        self._eval_indexes: dict[int, object] = {}
        self._shard_foci = []
        self._shard_resources = []
        for backend in self.shard_backends:
            self._shard_foci.append(
                {
                    r[0]
                    for r in backend.query(
                        "SELECT DISTINCT focus_id FROM focus_has_resource"
                    )
                }
            )
            self._shard_resources.append(
                {
                    r[0]
                    for r in backend.query(
                        "SELECT DISTINCT resource_id FROM resource_has_ancestor"
                    )
                }
            )

    # ------------------------------------------------------------------ loading

    def load_records(self, records: Iterable[Record]) -> LoadStats:
        """Bulk-load PTdf records, routing fact rows across the shards."""
        from .bulkload import ShardedBulkLoader

        t0 = _now()
        with _trace.span("shard.load", cat="core", shards=self.n_shards):
            stats = ShardedBulkLoader(self).load(records)
            self.ensure_shard_indexes()
        self._eval_indexes.clear()
        if _M.enabled:
            _SHARD_LOADS.inc()
            _SHARD_LOAD_SECONDS.observe(_now() - t0)
        return stats

    def load_string(self, text: str, lint: bool = False) -> LoadStats:
        if lint:
            self.catalog._lint_or_raise(lambda linter: linter.lint_string(text))
        return self.load_records(parse_string(text))

    def load_file(self, path: str, lint: bool = False) -> LoadStats:
        if lint:
            self.catalog._lint_or_raise(lambda linter: linter.lint_file(path))
        with _trace.span("shard.load.file", cat="core", file=path):
            return self.load_records(parse_file(path))

    def ensure_shard_indexes(self) -> None:
        """Build the deferred per-shard secondary indexes where missing.

        Bulk loads insert into index-free shard tables and call this once
        at the end; a post-hoc build is several times cheaper than
        incremental maintenance.  Incremental loads into an already
        indexed shard simply find the indexes present and pay the normal
        per-row maintenance instead.
        """
        t0 = _now()
        built = 0
        for backend in self.shard_backends:
            for ddl in schema_mod.SHARD_INDEXES:
                name = ddl.split()[2]
                if not backend.has_index(name):
                    backend.execute(ddl)
                    built += 1
            backend.commit()
        if built and _M.enabled:
            _INDEX_BUILDS.add(built)
            _INDEX_BUILD_SECONDS.observe(_now() - t0)

    # ------------------------------------------------------------------ queries

    def query_engine(self):
        """A scatter-gather :class:`~repro.core.query.ShardedQueryEngine`."""
        from .query import ShardedQueryEngine

        return ShardedQueryEngine(self)

    def shard_eval_index(self, shard: int):
        """One shard's in-memory evaluation index, built on first use.

        Indexes are shared by every engine over this store and dropped
        whenever a load or rollback changes shard contents.
        """
        index = self._eval_indexes.get(shard)
        if index is None:
            from .query import ShardEvalIndex

            index = ShardEvalIndex(self.shard_backends[shard])
            self._eval_indexes[shard] = index
        return index

    def resolve_prfilter_specs(self, prf: PrFilter) -> list[FamilySpec]:
        """Resolve a pr-filter into shard-pushable family specs.

        Base ids and ancestor expansion resolve once against the catalog
        (ancestors are few); descendant expansion stays a flag, pushed
        down per shard against its closure replica by the scatter-gather
        engine.
        """
        return [self.catalog.resolve_filter_spec(f) for f in prf.filters]

    # ------------------------------------------------------------------ lookups

    def count_rows(self, table: str) -> int:
        """Total rows of one table across the catalog and every shard.

        Replicated tables (``focus_has_resource``,
        ``resource_has_ancestor``) count every copy; use
        :meth:`table_rows` for the deduplicated logical contents.
        """
        total = self.catalog.count_rows(table)
        if table in schema_mod.SHARD_TABLE_NAMES:
            for backend in self.shard_backends:
                total += int(
                    backend.scalar(f"SELECT COUNT(*) FROM {table}")  # noqa: PTL001
                    or 0
                )
        return total

    def db_stats(self) -> dict[str, int]:
        return {t: self.count_rows(t) for t in schema_mod.TABLE_NAMES}

    def table_rows(self, table: str) -> set[tuple]:
        """The logical contents of one table, as a set of value tuples.

        For sharded tables this is the union across shards (replicated
        ``focus_has_resource`` copies collapse); for everything else it
        reads the catalog.  The sharded-vs-serial differential test
        compares these against the serial store table by table.
        """
        rows: set[tuple] = {
            tuple(r)
            for r in self.catalog.backend.query(f"SELECT * FROM {table}")  # noqa: PTL001
        }
        if table in schema_mod.SHARD_TABLE_NAMES:
            for backend in self.shard_backends:
                rows.update(
                    tuple(r)
                    for r in backend.query(f"SELECT * FROM {table}")  # noqa: PTL001
                )
        return rows

    def execution_details(self, name: str) -> dict:
        """Like :meth:`PTDataStore.execution_details`, counting across shards."""
        details = self.catalog.execution_details(name)
        eid = self.catalog.execution_id(name)
        shard = self.router.shard_of(eid)
        backend = self.shard_backends[shard]
        details["results"] = int(
            backend.scalar(
                "SELECT COUNT(*) FROM performance_result WHERE execution_id = ?",
                (eid,),
            )
            or 0
        )
        details["metrics"] = sorted(
            self._metric_names_by_id()[r[0]]
            for r in backend.query(
                "SELECT DISTINCT metric_id FROM performance_result "
                "WHERE execution_id = ?",
                (eid,),
            )
        )
        return details

    def vector_of(self, result_id: int) -> list[tuple[int, float, float, float]]:
        """(bin_index, bin_start, bin_end, value) rows of a vector result."""
        for backend in self.shard_backends:
            rows = backend.query(
                "SELECT bin_index, bin_start, bin_end, value "
                "FROM performance_result_vector "
                "WHERE performance_result_id = ? ORDER BY bin_index",
                (result_id,),
            )
            if rows:
                return [tuple(r) for r in rows]
        return []

    def _metric_names_by_id(self) -> dict[int, str]:
        return {i: n for n, i in self.catalog._metric_ids.items()}

    # ------------------------------------------------------------------ lifecycle

    def commit(self) -> None:
        self.catalog.commit()
        for backend in self.shard_backends:
            backend.commit()

    def close(self) -> None:
        self.catalog.close()
        for backend in self.shard_backends:
            backend.close()

    def __enter__(self) -> "ShardedPTDataStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.catalog.backend.rollback()
            for backend in self.shard_backends:
                backend.rollback()
        self.close()

    def __getattr__(self, name: str):
        # Dimension lookups, filter resolution and the name→id caches all
        # live on the catalog store; anything not overridden above
        # delegates there.  (Only called for attributes missing on self.)
        return getattr(self.catalog, name)
