"""Parallel PTdf file loading: parse and lint in worker processes.

Loading a BlueGene/L-scale study means tens of large PTdf files; parsing
and schema-linting them dominates wall-clock time well before the
database does.  This module fans both out over a ``multiprocessing``
worker pool while keeping the database work — id assignment and ordered
``executemany`` flushes — in the parent, in file order, so the loaded
store is **bit-identical** to a serial load (PR 1's byte-identical
contents guarantee is the oracle; the differential test asserts it).

Pipeline
--------

1. **Parse** (parallel): each worker parses one file into records.
2. **Context fold** (parent, cheap): :func:`repro.ptdf.lint.fold_declarations`
   accumulates each file's declarations, producing for every file the
   exact :class:`LintContext` a sequential ``lint_files`` run would have
   reached before it.
3. **Lint** (parallel): each worker lints one file against its folded
   context.  Cross-file *reference* checks (PT001/PT006) behave exactly
   as in sequential linting; the only divergence is that cross-file
   *stateful* warnings (PT005 duplicate attributes, PT008 unit
   mismatches spanning two files) are reported per file only.
4. **Load** (parent, serial): records apply in file order through the
   store's bulk loader — serial or sharded — so ids are deterministic.

Any worker failure surfaces as a structured :class:`ParallelLoadError`
naming the phase and file; a crashed worker process (killed, OOM) maps
the pool's ``BrokenProcessPool`` to the same error type.  ``workers <= 1``
or a missing ``fork`` start method falls back to the serial path.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence

from ..obs.clock import now as _now
from ..obs.logsetup import get_logger
from ..obs.metrics import metrics as _M
from ..obs.tracing import trace as _trace
from ..ptdf.lint import (
    Diagnostic,
    LintContext,
    PTdfLintError,
    context_from_store,
    fold_declarations,
    has_errors,
    lint_files,
)
from ..ptdf.parser import PTdfParseError, parse_file
from .datastore import LoadStats

_log = get_logger("pload")

#: Environment variable consulted when ``workers`` is not given.
WORKERS_ENV = "PTRACK_WORKERS"

# Worker-pool metrics (see docs/observability.md).
_PARALLEL_LOADS = _M.counter("pload.parallel_loads")
_FILES_PARSED = _M.counter("pload.files_parsed", unit="files")
_FILES_LINTED = _M.counter("pload.files_linted", unit="files")
_WORKER_FAILURES = _M.counter("pload.worker_failures")
_PARSE_SECONDS = _M.histogram("pload.parse_seconds")
_LINT_SECONDS = _M.histogram("pload.lint_seconds")


class ParallelLoadError(RuntimeError):
    """A worker-side failure during a parallel load, with provenance.

    ``phase`` is ``"parse"`` or ``"lint"``; ``source`` the file the
    failing worker was handling (``None`` when the pool itself died and
    the file cannot be attributed).
    """

    def __init__(self, phase: str, source: Optional[str], cause: str) -> None:
        self.phase = phase
        self.source = source
        self.cause = cause
        where = f" while processing {source!r}" if source else ""
        super().__init__(f"parallel load failed in {phase} phase{where}: {cause}")


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, else $PTRACK_WORKERS, else 0.

    0 (and 1) mean serial in-process loading — the default, so nothing
    changes for existing callers unless parallelism is asked for.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 0
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV} must be an integer, got {raw!r}"
            ) from None
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _parse_task(path: str) -> list:
    return list(parse_file(path))


def _lint_task(path: str, context: LintContext) -> list[Diagnostic]:
    from ..ptdf.lint import lint_file

    return lint_file(path, context)


def _copy_context(ctx: LintContext) -> LintContext:
    return LintContext(
        types=set(ctx.types),
        resources=set(ctx.resources),
        executions=set(ctx.executions),
        applications=set(ctx.applications),
    )


def load_files(
    store,
    paths: Sequence[str],
    workers: Optional[int] = None,
    lint: bool = True,
    on_file: Optional[Callable[[str, LoadStats], None]] = None,
) -> LoadStats:
    """Load PTdf files into *store* (plain or sharded), optionally parallel.

    With ``workers >= 2``, parsing and linting fan out across processes
    (see module docstring); the parent applies records in file order.
    ``on_file`` is called after each file's records are applied (CLI
    progress).  Lint errors raise :class:`PTdfLintError` before any row
    is written, exactly like the serial gate.
    """
    paths = list(paths)
    workers = resolve_workers(workers)
    if workers >= 2:
        try:
            mp_context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            _log.warning("fork start method unavailable; loading serially")
            workers = 0
    if workers < 2:
        return _load_serial(store, paths, lint, on_file)

    if _M.enabled:
        _PARALLEL_LOADS.inc()
    with _trace.span(
        "pload.load", cat="core", files=len(paths), workers=workers
    ):
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=mp_context
        ) as pool:
            parsed, parse_diags = _parse_phase(pool, paths, lint)
            if lint:
                contexts: list[LintContext] = []
                ctx = (
                    context_from_store(store)
                    if getattr(store, "_type_ids", None) is not None
                    else LintContext()
                )
                lintable = []
                for path, records in zip(paths, parsed):
                    if records is None:
                        continue
                    lintable.append((path, _copy_context(ctx)))
                    fold_declarations(ctx, records)
                diagnostics: list[Diagnostic] = list(parse_diags)
                for file_diags in _run_phase(
                    pool, "lint", _FILES_LINTED, _LINT_SECONDS,
                    [
                        (path, (path, context))
                        for path, context in lintable
                    ],
                    _lint_task,
                ):
                    diagnostics.extend(file_diags)
                if has_errors(diagnostics):
                    raise PTdfLintError(diagnostics)
        total = LoadStats()
        for path, records in zip(paths, parsed):
            stats = store.load_records(records)
            total += stats
            if on_file is not None:
                on_file(path, stats)
    return total


def _parse_phase(
    pool: ProcessPoolExecutor, paths: Sequence[str], lint: bool
) -> tuple[list, list[Diagnostic]]:
    """Parse every file in workers.

    With linting on, a malformed file becomes a PT000 diagnostic (its
    slot in the returned list is ``None``) so the combined lint report
    matches what sequential ``lint_files`` would have said; without
    linting it fails fast as a :class:`ParallelLoadError`.
    """
    t0 = _now()
    futures = [(path, pool.submit(_parse_task, path)) for path in paths]
    parsed: list = []
    diags: list[Diagnostic] = []
    for path, future in futures:
        try:
            parsed.append(future.result())
        except BrokenProcessPool as exc:
            if _M.enabled:
                _WORKER_FAILURES.inc()
            raise ParallelLoadError(
                "parse", path, f"worker process died: {exc}"
            ) from exc
        except PTdfParseError as exc:
            if not lint:
                raise ParallelLoadError("parse", path, str(exc)) from exc
            diags.append(
                Diagnostic(
                    path, getattr(exc, "lineno", 0) or 0, "error", "PT000",
                    str(exc),
                )
            )
            parsed.append(None)
        except Exception as exc:
            if _M.enabled:
                _WORKER_FAILURES.inc()
            raise ParallelLoadError("parse", path, str(exc)) from exc
    if _M.enabled:
        _FILES_PARSED.add(len(paths))
        _PARSE_SECONDS.observe(_now() - t0)
    return parsed, diags


def _run_phase(
    pool: ProcessPoolExecutor,
    phase: str,
    counter,
    histogram,
    tasks: Sequence[tuple[str, tuple]],
    fn: Callable,
) -> list:
    """Submit one task per file and gather results in submission order."""
    t0 = _now()
    futures = [(path, pool.submit(fn, *args)) for path, args in tasks]
    out = []
    for path, future in futures:
        try:
            out.append(future.result())
        except BrokenProcessPool as exc:
            if _M.enabled:
                _WORKER_FAILURES.inc()
            raise ParallelLoadError(
                phase, path, f"worker process died: {exc}"
            ) from exc
        except PTdfLintError:
            raise
        except Exception as exc:
            if _M.enabled:
                _WORKER_FAILURES.inc()
            raise ParallelLoadError(phase, path, str(exc)) from exc
    if _M.enabled:
        counter.add(len(tasks))
        histogram.observe(_now() - t0)
    return out


def _load_serial(
    store,
    paths: Sequence[str],
    lint: bool,
    on_file: Optional[Callable[[str, LoadStats], None]],
) -> LoadStats:
    if lint:
        diagnostics = lint_files(paths, context_from_store(store))
        if has_errors(diagnostics):
            raise PTdfLintError(diagnostics)
    total = LoadStats()
    for path in paths:
        stats = store.load_file(path)
        total += stats
        if on_file is not None:
            on_file(path, stats)
    return total
