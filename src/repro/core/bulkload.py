"""Bulk PTdf ingest for :class:`~repro.core.datastore.PTDataStore`.

The per-row load path issues one INSERT per PTdf record component plus
closure-table writes per resource — fine for interactive edits, far too
slow at Paradyn scale (the paper's Section 4.3 study loads ~45k results).
This module implements the batched fast path: records are resolved
against the store's name→id caches, ids are assigned client-side from
per-table counters, and rows buffer in memory until they are flushed via
``executemany`` in foreign-key dependency order.  The closure tables
(``resource_has_ancestor``/``resource_has_descendant``) are populated in
bulk per load instead of per insert.

The produced database is **identical** to the per-row path's: within each
table, rows arrive in the same order with the same values, so id
sequences, rowids and snapshots all match (asserted by
``tests/core/test_bulk_load.py`` and the scalability benchmark).

On any failure the loader rolls the backend transaction back and re-warms
the store's caches from the database, so a failed bulk load leaves the
store exactly as it was.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from ..minidb.errors import ProgrammingError
from ..obs.metrics import metrics as _M
from ..ptdf.format import (
    ApplicationRec,
    ExecutionRec,
    PerfResultRec,
    PerfResultSeriesRec,
    Record,
    ResourceAttributeRec,
    ResourceConstraintRec,
    ResourceRec,
    ResourceSet,
    ResourceTypeRec,
    split_name,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .datastore import LoadStats, PTDataStore
    from .shards import ShardedPTDataStore

#: Flush order = foreign-key dependency order (parents before children).
_FLUSH_ORDER: tuple[str, ...] = (
    "focus_framework",
    "application",
    "execution",
    "performance_tool",
    "metric",
    "resource_item",
    "resource_attribute",
    "resource_constraint",
    "resource_has_ancestor",
    "resource_has_descendant",
    "focus",
    "focus_has_resource",
    "performance_result",
    "performance_result_vector",
    "performance_result_has_focus",
)

#: Tables with a client-assigned integer primary key.
_ID_TABLES: tuple[str, ...] = (
    "focus_framework",
    "application",
    "execution",
    "performance_tool",
    "metric",
    "resource_item",
    "resource_attribute",
    "resource_constraint",
    "focus",
    "performance_result",
)

_INSERT_SQL: dict[str, str] = {
    "focus_framework": (
        "INSERT INTO focus_framework (id, name, base_name, parent_id) "
        "VALUES (?, ?, ?, ?)"
    ),
    "application": "INSERT INTO application (id, name) VALUES (?, ?)",
    "execution": (
        "INSERT INTO execution (id, name, application_id) VALUES (?, ?, ?)"
    ),
    "performance_tool": "INSERT INTO performance_tool (id, name) VALUES (?, ?)",
    "metric": "INSERT INTO metric (id, name) VALUES (?, ?)",
    "resource_item": (
        "INSERT INTO resource_item "
        "(id, name, base_name, parent_id, focus_framework_id, execution_id) "
        "VALUES (?, ?, ?, ?, ?, ?)"
    ),
    "resource_attribute": (
        "INSERT INTO resource_attribute (id, resource_id, name, value, attr_type) "
        "VALUES (?, ?, ?, ?, ?)"
    ),
    "resource_constraint": (
        "INSERT INTO resource_constraint (id, resource_id_1, resource_id_2) "
        "VALUES (?, ?, ?)"
    ),
    "resource_has_ancestor": (
        "INSERT INTO resource_has_ancestor (resource_id, ancestor_id) VALUES (?, ?)"
    ),
    "resource_has_descendant": (
        "INSERT INTO resource_has_descendant (resource_id, descendant_id) "
        "VALUES (?, ?)"
    ),
    "focus": "INSERT INTO focus (id, resource_hash) VALUES (?, ?)",
    "focus_has_resource": (
        "INSERT INTO focus_has_resource (focus_id, resource_id) VALUES (?, ?)"
    ),
    "performance_result": (
        "INSERT INTO performance_result "
        "(id, execution_id, metric_id, performance_tool_id, value, units, "
        "start_time, end_time, value_type) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)"
    ),
    "performance_result_vector": (
        "INSERT INTO performance_result_vector "
        "(performance_result_id, bin_index, bin_start, bin_end, value) "
        "VALUES (?, ?, ?, ?, ?)"
    ),
    "performance_result_has_focus": (
        "INSERT INTO performance_result_has_focus "
        "(performance_result_id, focus_id, focus_type) VALUES (?, ?, ?)"
    ),
}

# Loader metrics (no-ops while the registry is disabled; the record loop
# never touches them — per-type counts come from LoadStats after the fact).
_BATCHES_FLUSHED = _M.counter("ptdf.load.batches_flushed")
_ROWS_FLUSHED = _M.counter("ptdf.load.rows_flushed", unit="rows")

#: Per-shard flush order (parents are in the catalog; the order here only
#: keeps replica rows ahead of the fact rows that reference them).
_SHARD_FLUSH_ORDER: tuple[str, ...] = (
    "focus_has_resource",
    "resource_has_ancestor",
    "performance_result",
    "performance_result_vector",
    "performance_result_has_focus",
)

# Shard-routing metrics (see docs/observability.md).
_SHARD_ROWS_ROUTED = _M.counter("shard.rows_routed", unit="rows")
_SHARD_FOCUS_REPL = _M.counter("shard.focus_replications")
_SHARD_CLOSURE_REPL = _M.counter("shard.closure_rows_replicated", unit="rows")


class BulkLoader:
    """One bulk load: buffer rows per table, flush via ``executemany``.

    A loader is single-use; :meth:`load` consumes the record stream and
    returns the same :class:`LoadStats` the per-row path would.
    """

    def __init__(self, store: "PTDataStore", flush_every: int = 50_000) -> None:
        self.store = store
        self.backend = store.backend
        self.flush_every = flush_every
        self._buffers: dict[str, list[tuple]] = {t: [] for t in _FLUSH_ORDER}
        self._buffered = 0
        # Lazy per-table id counters: probed on first use so untouched
        # tables never pay the MAX() lookup.
        self._next_ids: dict[str, int] = {}

    def _take_id(self, table: str) -> int:
        nid = self._next_ids.get(table)
        if nid is None:
            current = self.backend.max_value(table, "id")
            nid = int(current or 0) + 1
        self._next_ids[table] = nid + 1
        return nid

    def _put(self, table: str, row: tuple) -> None:
        self._buffers[table].append(row)
        self._buffered += 1

    # -- public ----------------------------------------------------------------

    def load(self, records: Iterable[Record]) -> "LoadStats":
        from .datastore import LoadStats

        store = self.store
        stats = LoadStats()
        pre_foci = len(store._focus_ids)
        try:
            for rec in records:
                if isinstance(rec, ApplicationRec):
                    before = len(store._app_ids)
                    self._application(rec.name)
                    stats.applications += len(store._app_ids) - before
                elif isinstance(rec, ResourceTypeRec):
                    before = len(store._type_ids)
                    self._resource_type(rec.name)
                    stats.resource_types += len(store._type_ids) - before
                elif isinstance(rec, ExecutionRec):
                    before = len(store._exec_ids)
                    self._execution(rec.name, rec.application)
                    stats.executions += len(store._exec_ids) - before
                elif isinstance(rec, ResourceRec):
                    before = len(store._resource_ids)
                    self._resource(rec.name, rec.type, rec.execution)
                    stats.resources += len(store._resource_ids) - before
                elif isinstance(rec, ResourceAttributeRec):
                    self._resource_attribute(
                        rec.resource, rec.attribute, rec.value, rec.attr_type
                    )
                    stats.attributes += 1
                elif isinstance(rec, ResourceConstraintRec):
                    self._resource_constraint(rec.resource1, rec.resource2)
                    stats.constraints += 1
                elif isinstance(rec, PerfResultRec):
                    self._perf_result(rec)
                    stats.results += 1
                elif isinstance(rec, PerfResultSeriesRec):
                    self._vector_result(rec)
                    stats.results += 1
                else:
                    raise ProgrammingError(
                        f"unknown PTdf record {type(rec).__name__}"
                    )
                if self._buffered >= self.flush_every:
                    self.flush()
            self.flush()
        except BaseException:
            self._rollback_all()
            raise
        stats.foci = len(store._focus_ids) - pre_foci
        self._commit_all()
        return stats

    def _rollback_all(self) -> None:
        """Leave the store exactly as before the load: roll back the
        backend transaction and rebuild the caches from it."""
        self.backend.rollback()
        self.store._resource_obj_cache.clear()
        self.store._warm_caches()

    def _commit_all(self) -> None:
        self.backend.commit()

    def flush(self) -> None:
        """Apply all buffered rows in foreign-key dependency order."""
        if self._buffered and _M.enabled:
            _BATCHES_FLUSHED.inc()
            _ROWS_FLUSHED.add(self._buffered)
        for table in _FLUSH_ORDER:
            rows = self._buffers[table]
            if rows:
                self.backend.executemany(_INSERT_SQL[table], rows)
                self._buffers[table] = []
        self._buffered = 0

    # -- per-record handlers (mirror PTDataStore.add_* semantics) ----------------

    def _application(self, name: str) -> int:
        aid = self.store._app_ids.get(name)
        if aid is None:
            aid = self._take_id("application")
            self._put("application", (aid, name))
            self.store._app_ids[name] = aid
        return aid

    def _resource_type(self, type_path: str) -> int:
        segments = [s for s in type_path.split("/") if s]
        if not segments:
            raise ValueError(f"empty resource type path {type_path!r}")
        parent_id: Optional[int] = None
        tid = -1
        for depth in range(1, len(segments) + 1):
            path = "/".join(segments[:depth])
            tid = self.store._type_ids.get(path, -1)
            if tid < 0:
                tid = self._take_id("focus_framework")
                self._put(
                    "focus_framework", (tid, path, segments[depth - 1], parent_id)
                )
                self.store._type_ids[path] = tid
            parent_id = tid
        return tid

    def _execution(self, name: str, application: str) -> int:
        eid = self.store._exec_ids.get(name)
        if eid is None:
            aid = self._application(application)
            eid = self._take_id("execution")
            self._put("execution", (eid, name, aid))
            self.store._exec_ids[name] = eid
        return eid

    def _metric(self, name: str) -> int:
        mid = self.store._metric_ids.get(name)
        if mid is None:
            mid = self._take_id("metric")
            self._put("metric", (mid, name))
            self.store._metric_ids[name] = mid
        return mid

    def _tool(self, name: str) -> int:
        tid = self.store._tool_ids.get(name)
        if tid is None:
            tid = self._take_id("performance_tool")
            self._put("performance_tool", (tid, name))
            self.store._tool_ids[name] = tid
        return tid

    def _resource(
        self, name: str, type_path: str, execution: Optional[str] = None
    ) -> int:
        store = self.store
        rid = store._resource_ids.get(name)
        if rid is not None:
            return rid
        segments = split_name(name)
        type_segments = [s for s in type_path.split("/") if s]
        if len(segments) != len(type_segments):
            raise ValueError(
                f"resource {name!r} has depth {len(segments)} but type "
                f"{type_path!r} has depth {len(type_segments)}"
            )
        self._resource_type(type_path)
        exec_id = store._exec_ids.get(execution) if execution else None
        if execution and exec_id is None:
            raise ProgrammingError(f"unknown execution {execution!r}")
        parent_id: Optional[int] = None
        ancestor_ids: list[int] = []
        for depth in range(1, len(segments) + 1):
            partial = "/" + "/".join(segments[:depth])
            rid = store._resource_ids.get(partial)
            if rid is None:
                tpath = "/".join(type_segments[:depth])
                rid = self._take_id("resource_item")
                self._put(
                    "resource_item",
                    (
                        rid,
                        partial,
                        segments[depth - 1],
                        parent_id,
                        store._type_ids[tpath],
                        exec_id,
                    ),
                )
                store._resource_ids[partial] = rid
                if store.use_closure_tables and ancestor_ids:
                    for a in ancestor_ids:
                        self._put("resource_has_ancestor", (rid, a))
                    for a in ancestor_ids:
                        self._put("resource_has_descendant", (a, rid))
            parent_id = rid
            ancestor_ids.append(rid)
        return rid

    def _resource_attribute(
        self, resource: str, attribute: str, value: str, attr_type: str
    ) -> int:
        rid = self.store.resource_id(resource)
        if attr_type == "resource":
            self._resource_constraint(resource, value)
        aid = self._take_id("resource_attribute")
        self._put(
            "resource_attribute", (aid, rid, attribute, str(value), attr_type)
        )
        return aid

    def _resource_constraint(self, resource1: str, resource2: str) -> int:
        r1 = self.store.resource_id(resource1)
        r2 = self.store.resource_id(resource2)
        cid = self._take_id("resource_constraint")
        self._put("resource_constraint", (cid, r1, r2))
        return cid

    def _focus_for(self, resource_ids) -> int:
        store = self.store
        ordered = sorted(set(resource_ids))
        canonical = ",".join(map(str, ordered))
        fid = store._focus_ids.get(canonical)
        if fid is not None:
            return fid
        fid = self._take_id("focus")
        self._put("focus", (fid, canonical))
        for rid in ordered:
            self._put("focus_has_resource", (fid, rid))
        store._focus_ids[canonical] = fid
        return fid

    def _associate_foci(self, pr_id: int, resource_sets) -> None:
        for rs in resource_sets:
            ids = [self.store.resource_id(n) for n in rs.names]
            fid = self._focus_for(ids)
            self._put("performance_result_has_focus", (pr_id, fid, rs.set_type))

    def _result_header(self, execution: str, tool: str, metric: str):
        eid = self.store._exec_ids.get(execution)
        if eid is None:
            raise ProgrammingError(f"unknown execution {execution!r}")
        return eid, self._metric(metric), self._tool(tool)

    def _perf_result(self, rec: PerfResultRec) -> int:
        resource_sets = rec.resource_sets
        if isinstance(resource_sets, ResourceSet):
            resource_sets = (resource_sets,)
        eid, mid, tid = self._result_header(rec.execution, rec.tool, rec.metric)
        pr_id = self._take_id("performance_result")
        self._put(
            "performance_result",
            (pr_id, eid, mid, tid, rec.value, rec.units, None, None, "scalar"),
        )
        self._associate_foci(pr_id, resource_sets)
        return pr_id

    def _vector_result(self, rec: PerfResultSeriesRec) -> int:
        resource_sets = rec.resource_sets
        if isinstance(resource_sets, ResourceSet):
            resource_sets = (resource_sets,)
        eid, mid, tid = self._result_header(rec.execution, rec.tool, rec.metric)
        defined = [v for v in rec.values if v is not None]
        mean = sum(defined) / len(defined) if defined else None
        end_time = rec.start_time + rec.bin_width * len(rec.values)
        pr_id = self._take_id("performance_result")
        self._put(
            "performance_result",
            (
                pr_id,
                eid,
                mid,
                tid,
                mean,
                rec.units,
                repr(rec.start_time),
                repr(end_time),
                "vector",
            ),
        )
        for i, v in enumerate(rec.values):
            if v is None:
                continue
            self._put(
                "performance_result_vector",
                (
                    pr_id,
                    i,
                    rec.start_time + i * rec.bin_width,
                    rec.start_time + (i + 1) * rec.bin_width,
                    v,
                ),
            )
        self._associate_foci(pr_id, resource_sets)
        return pr_id


class ShardedBulkLoader(BulkLoader):
    """Bulk loader for a :class:`~repro.core.shards.ShardedPTDataStore`.

    Dimension rows (applications, executions, metrics, tools, resources,
    attributes, constraints, closure tables, foci) buffer exactly as in
    the base loader and flush into the **catalog** database.  Fact rows
    route by execution id through the store's :class:`ShardRouter` into
    per-shard buffers, flushed via ordered ``executemany`` per shard.

    Ids are assigned from the same catalog-wide counters in the same
    record order as the serial loader, so the union of all databases is
    row-for-row identical to the serial store — the differential test's
    oracle.  Two replication side-channels keep shards self-contained:

    * the first time a focus lands on a shard, its ``focus_has_resource``
      rows are copied there, and
    * the first time a *resource* lands on a shard (through a focus), its
      ``resource_has_ancestor`` closure rows are copied, so the shard can
      expand descendant filters locally.
    """

    def __init__(self, sstore: "ShardedPTDataStore", flush_every: int = 50_000) -> None:
        super().__init__(sstore.catalog, flush_every)
        self.sstore = sstore
        self.router = sstore.router
        self._shard_buffers: list[dict[str, list[tuple]]] = [
            {t: [] for t in _SHARD_FLUSH_ORDER} for _ in range(sstore.n_shards)
        ]
        #: focus id -> member resource ids, for foci created in this load
        self._focus_members: dict[int, tuple[int, ...]] = {}
        #: lazily built focus id -> canonical hash, for pre-existing foci
        self._focus_hash_by_id: Optional[dict[int, str]] = None
        #: resource id -> ancestor ids, for resources created in this load
        self._ancestor_map: dict[int, tuple[int, ...]] = {}
        self._routed = 0
        self._focus_repl = 0
        self._closure_repl = 0

    # -- id assignment ---------------------------------------------------------

    def _take_id(self, table: str) -> int:
        if table != "performance_result":
            return super()._take_id(table)
        nid = self._next_ids.get(table)
        if nid is None:
            # The catalog's performance_result stays empty; the id
            # sequence continues from the largest id on any shard.
            best = 0
            for backend in self.sstore.shard_backends:
                value = backend.max_value(table, "id")
                best = max(best, int(value or 0))
            nid = best + 1
        self._next_ids[table] = nid + 1
        return nid

    # -- shard buffering -------------------------------------------------------

    def _put_shard(self, shard: int, table: str, row: tuple) -> None:
        self._shard_buffers[shard][table].append(row)
        self._buffered += 1
        self._routed += 1

    def flush(self) -> None:
        super().flush()
        for shard, buffers in enumerate(self._shard_buffers):
            backend = self.sstore.shard_backends[shard]
            for table in _SHARD_FLUSH_ORDER:
                rows = buffers[table]
                if rows:
                    backend.executemany(_INSERT_SQL[table], rows)
                    buffers[table] = []
        if _M.enabled and (self._routed or self._focus_repl):
            _SHARD_ROWS_ROUTED.add(self._routed)
            _SHARD_FOCUS_REPL.add(self._focus_repl)
            _SHARD_CLOSURE_REPL.add(self._closure_repl)
            self._routed = self._focus_repl = self._closure_repl = 0

    def _commit_all(self) -> None:
        super()._commit_all()
        for backend in self.sstore.shard_backends:
            backend.commit()

    def _rollback_all(self) -> None:
        super()._rollback_all()
        for backend in self.sstore.shard_backends:
            backend.rollback()
        self.sstore._warm_shard_state()

    # -- focus + closure replication -------------------------------------------

    def _focus_for(self, resource_ids) -> int:
        store = self.store
        ordered = tuple(sorted(set(resource_ids)))
        canonical = ",".join(map(str, ordered))
        fid = store._focus_ids.get(canonical)
        if fid is not None:
            return fid
        fid = self._take_id("focus")
        self._put("focus", (fid, canonical))
        store._focus_ids[canonical] = fid
        self._focus_members[fid] = ordered
        return fid

    def _members_of(self, fid: int) -> tuple[int, ...]:
        members = self._focus_members.get(fid)
        if members is not None:
            return members
        if self._focus_hash_by_id is None:
            self._focus_hash_by_id = {
                i: h for h, i in self.store._focus_ids.items()
            }
        canonical = self._focus_hash_by_id.get(fid)
        if canonical is None:  # pragma: no cover - cache invariant
            raise ProgrammingError(f"unknown focus id {fid}")
        members = tuple(int(p) for p in canonical.split(",") if p)
        self._focus_members[fid] = members
        return members

    def _ancestors_of(self, rid: int) -> tuple[int, ...]:
        ancestors = self._ancestor_map.get(rid)
        if ancestors is None:
            # Resource created by an earlier (flushed) load: read the
            # catalog's closure table.
            ancestors = tuple(
                r[0]
                for r in self.backend.query(
                    "SELECT ancestor_id FROM resource_has_ancestor "
                    "WHERE resource_id = ?",
                    (rid,),
                )
            )
            self._ancestor_map[rid] = ancestors
        return ancestors

    def _route_focus(self, shard: int, fid: int) -> None:
        """Replicate a focus (and its members' closure rows) to a shard."""
        seen_foci = self.sstore._shard_foci[shard]
        if fid in seen_foci:
            return
        seen_foci.add(fid)
        self._focus_repl += 1
        buffers = self._shard_buffers[shard]
        members = self._members_of(fid)
        seen_resources = self.sstore._shard_resources[shard]
        for rid in members:
            buffers["focus_has_resource"].append((fid, rid))
            self._buffered += 1
            self._routed += 1
            if rid in seen_resources:
                continue
            seen_resources.add(rid)
            for ancestor in self._ancestors_of(rid):
                buffers["resource_has_ancestor"].append((rid, ancestor))
                self._buffered += 1
                self._closure_repl += 1

    # -- routed record handlers -------------------------------------------------

    def _resource(
        self, name: str, type_path: str, execution: Optional[str] = None
    ) -> int:
        # Same row production as the base loader, additionally recording
        # each new resource's ancestor list for closure replication.
        store = self.store
        rid = store._resource_ids.get(name)
        if rid is not None:
            return rid
        segments = split_name(name)
        type_segments = [s for s in type_path.split("/") if s]
        if len(segments) != len(type_segments):
            raise ValueError(
                f"resource {name!r} has depth {len(segments)} but type "
                f"{type_path!r} has depth {len(type_segments)}"
            )
        self._resource_type(type_path)
        exec_id = store._exec_ids.get(execution) if execution else None
        if execution and exec_id is None:
            raise ProgrammingError(f"unknown execution {execution!r}")
        parent_id: Optional[int] = None
        ancestor_ids: list[int] = []
        for depth in range(1, len(segments) + 1):
            partial = "/" + "/".join(segments[:depth])
            rid = store._resource_ids.get(partial)
            if rid is None:
                tpath = "/".join(type_segments[:depth])
                rid = self._take_id("resource_item")
                self._put(
                    "resource_item",
                    (
                        rid,
                        partial,
                        segments[depth - 1],
                        parent_id,
                        store._type_ids[tpath],
                        exec_id,
                    ),
                )
                store._resource_ids[partial] = rid
                self._ancestor_map[rid] = tuple(ancestor_ids)
                if ancestor_ids:
                    for a in ancestor_ids:
                        self._put("resource_has_ancestor", (rid, a))
                    for a in ancestor_ids:
                        self._put("resource_has_descendant", (a, rid))
            parent_id = rid
            ancestor_ids.append(rid)
        return rid

    def _associate_foci_on(self, shard: int, pr_id: int, resource_sets) -> None:
        for rs in resource_sets:
            ids = [self.store.resource_id(n) for n in rs.names]
            fid = self._focus_for(ids)
            self._route_focus(shard, fid)
            self._put_shard(
                shard, "performance_result_has_focus", (pr_id, fid, rs.set_type)
            )

    def _perf_result(self, rec: PerfResultRec) -> int:
        resource_sets = rec.resource_sets
        if isinstance(resource_sets, ResourceSet):
            resource_sets = (resource_sets,)
        eid, mid, tid = self._result_header(rec.execution, rec.tool, rec.metric)
        shard = self.router.shard_of(eid)
        pr_id = self._take_id("performance_result")
        self._put_shard(
            shard,
            "performance_result",
            (pr_id, eid, mid, tid, rec.value, rec.units, None, None, "scalar"),
        )
        self._associate_foci_on(shard, pr_id, resource_sets)
        return pr_id

    def _vector_result(self, rec: PerfResultSeriesRec) -> int:
        resource_sets = rec.resource_sets
        if isinstance(resource_sets, ResourceSet):
            resource_sets = (resource_sets,)
        eid, mid, tid = self._result_header(rec.execution, rec.tool, rec.metric)
        shard = self.router.shard_of(eid)
        defined = [v for v in rec.values if v is not None]
        mean = sum(defined) / len(defined) if defined else None
        end_time = rec.start_time + rec.bin_width * len(rec.values)
        pr_id = self._take_id("performance_result")
        self._put_shard(
            shard,
            "performance_result",
            (
                pr_id,
                eid,
                mid,
                tid,
                mean,
                rec.units,
                repr(rec.start_time),
                repr(end_time),
                "vector",
            ),
        )
        for i, v in enumerate(rec.values):
            if v is None:
                continue
            self._put_shard(
                shard,
                "performance_result_vector",
                (
                    pr_id,
                    i,
                    rec.start_time + i * rec.bin_width,
                    rec.start_time + (i + 1) * rec.bin_width,
                    v,
                ),
            )
        self._associate_foci_on(shard, pr_id, resource_sets)
        return pr_id
