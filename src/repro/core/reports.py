"""Simple text reports over a data store (paper Section 3.3).

"The user may request one of several simple reports" — these render the
store's contents as fixed-width text tables: a store summary, a per-
application report, a per-execution report and the Table-1-style load
statistics block.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .datastore import LoadStats, PTDataStore


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    def fmt(row):
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def store_summary(store: PTDataStore) -> str:
    """Row counts for every schema table plus dimension listings."""
    stats = store.db_stats()
    lines = ["PerfTrack data store summary", "============================", ""]
    lines.append(_table(["table", "rows"], sorted(stats.items())))
    lines.append("")
    lines.append(f"applications: {', '.join(store.applications()) or '(none)'}")
    lines.append(f"performance tools: {', '.join(store.tools()) or '(none)'}")
    lines.append(f"metrics: {len(store.metrics())}")
    lines.append(f"executions: {len(store.executions())}")
    return "\n".join(lines)


def application_report(store: PTDataStore, application: str) -> str:
    """Executions of one application with result counts."""
    rows = []
    for name in store.executions(application):
        d = store.execution_details(name)
        rows.append((name, d["resources"], d["results"], len(d["metrics"])))
    header = f"Application: {application}"
    return "\n".join(
        [header, "=" * len(header), "", _table(
            ["execution", "resources", "results", "metrics"], rows
        )]
    )


def execution_report(store: PTDataStore, execution: str) -> str:
    """One execution: metadata, metrics, attribute listing."""
    d = store.execution_details(execution)
    lines = [
        f"Execution: {execution}",
        "=" * (11 + len(execution)),
        "",
        f"application:      {d['application']}",
        f"bound resources:  {d['resources']}",
        f"results:          {d['results']}",
        f"metrics:          {', '.join(d['metrics'])}",
    ]
    rid = store._resource_ids.get(f"/{execution}")
    if rid is not None:
        attrs = store.attributes_of(rid)
        if attrs:
            lines.append("")
            lines.append(
                _table(["attribute", "value"], [(a.name, a.value) for a in attrs])
            )
    return "\n".join(lines)


def load_report(
    name: str,
    stats: LoadStats,
    ptdf_files: Optional[int] = None,
    ptdf_lines: Optional[int] = None,
    db_growth_bytes: Optional[int] = None,
) -> str:
    """A Table-1-style row for one loaded study."""
    rows = [
        ("executions loaded", stats.executions),
        ("resources", stats.resources),
        ("resource attributes", stats.attributes),
        ("performance results", stats.results),
        ("distinct foci", stats.foci),
    ]
    if ptdf_files is not None:
        rows.append(("PTdf files", ptdf_files))
    if ptdf_lines is not None:
        rows.append(("PTdf lines", ptdf_lines))
    if db_growth_bytes is not None:
        rows.append(("DB growth (bytes)", db_growth_bytes))
    header = f"Load report: {name}"
    return "\n".join([header, "=" * len(header), "", _table(["quantity", "count"], rows)])
