"""DB-API 2.0 exception hierarchy for minidb.

The hierarchy mirrors PEP 249 so that code written against minidb keeps
working when pointed at another DB-API driver (and vice versa) — the same
property PerfTrack relied on to support both Oracle and PostgreSQL.
"""

from __future__ import annotations


class Warning(Exception):  # noqa: A001 - PEP 249 mandates the name
    """Important warnings such as data truncation on insert."""


class Error(Exception):
    """Base class of all minidb errors."""


class InterfaceError(Error):
    """Errors related to the database interface rather than the database."""


class DatabaseError(Error):
    """Errors related to the database."""


class DataError(DatabaseError):
    """Errors due to problems with the processed data (bad values, ranges)."""


class OperationalError(DatabaseError):
    """Errors related to the database's operation (I/O, missing file, ...)."""


class IntegrityError(DatabaseError):
    """Relational integrity violations (duplicate key, FK violation, ...)."""


class InternalError(DatabaseError):
    """The database encountered an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """SQL syntax errors, wrong parameter counts, missing tables, ..."""


class NotSupportedError(DatabaseError):
    """A method or SQL feature that minidb does not implement."""


class SqlSyntaxError(ProgrammingError):
    """Raised by the lexer/parser with position information."""

    def __init__(self, message: str, sql: str = "", pos: int = 0) -> None:
        self.sql = sql
        self.pos = pos
        if sql:
            line = sql.count("\n", 0, pos) + 1
            col = pos - (sql.rfind("\n", 0, pos) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)


class SemanticError(ProgrammingError):
    """A statement rejected by static semantic analysis.

    Carries a machine-readable rule ``code`` (``"SQL001"``, ...), an
    optional ``location`` (free-form, e.g. ``"WHERE clause"``) and an
    optional did-you-mean ``suggestion`` so that callers — the CLI, the
    GUI, a test harness — can explain the rejection instead of surfacing
    a mid-execution KeyError.
    """

    def __init__(
        self,
        message: str,
        code: str = "SQL000",
        location: "str | None" = None,
        suggestion: "str | None" = None,
    ) -> None:
        self.code = code
        self.location = location
        self.suggestion = suggestion
        text = message
        if location:
            text = f"{text} (in {location})"
        if suggestion:
            text = f"{text}; did you mean {suggestion!r}?"
        super().__init__(text)


class SessionError(InterfaceError):
    """A cursor or connection was used outside its session's lifetime.

    Raised when a cursor is touched after its connection closed, or when
    a streaming cursor tries to keep reading from a transaction snapshot
    that was committed or rolled away.  Carries a machine-readable
    ``code`` (``"SES001"``, ...) and a ``hint`` describing how to
    recover, mirroring :class:`SemanticError`'s shape so callers can
    render both the same way.
    """

    def __init__(
        self,
        message: str,
        code: str = "SES000",
        hint: "str | None" = None,
    ) -> None:
        self.code = code
        self.hint = hint
        text = f"{code}: {message}"
        if hint:
            text = f"{text}; {hint}"
        super().__init__(text)


class LockTimeoutError(OperationalError):
    """A writer lock could not be acquired before the deadlock timeout.

    Structured so callers can implement retry/backoff policies: carries
    the contended ``resource`` (table name or the schema lock), the
    ``owner`` that gave up, the ``holder`` that held the lock, and the
    ``waited`` seconds before giving up.
    """

    def __init__(
        self,
        resource: str,
        owner: "str | None" = None,
        holder: "str | None" = None,
        waited: float = 0.0,
    ) -> None:
        self.resource = resource
        self.owner = owner
        self.holder = holder
        self.waited = waited
        super().__init__(
            f"timed out after {waited:.3f}s waiting for writer lock on "
            f"{resource!r} (owner={owner!r}, held by {holder!r}); possible "
            f"deadlock — roll back and retry the transaction"
        )


def closest(name: str, candidates) -> "str | None":
    """Closest-match suggestion for an unresolved identifier, or None."""
    from difflib import get_close_matches

    pool: dict[str, str] = {}
    for cand in candidates:
        pool.setdefault(str(cand).lower(), str(cand))
    matches = get_close_matches(name.lower(), list(pool), n=1, cutoff=0.6)
    return pool[matches[0]] if matches else None
