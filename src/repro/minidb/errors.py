"""DB-API 2.0 exception hierarchy for minidb.

The hierarchy mirrors PEP 249 so that code written against minidb keeps
working when pointed at another DB-API driver (and vice versa) — the same
property PerfTrack relied on to support both Oracle and PostgreSQL.
"""

from __future__ import annotations


class Warning(Exception):  # noqa: A001 - PEP 249 mandates the name
    """Important warnings such as data truncation on insert."""


class Error(Exception):
    """Base class of all minidb errors."""


class InterfaceError(Error):
    """Errors related to the database interface rather than the database."""


class DatabaseError(Error):
    """Errors related to the database."""


class DataError(DatabaseError):
    """Errors due to problems with the processed data (bad values, ranges)."""


class OperationalError(DatabaseError):
    """Errors related to the database's operation (I/O, missing file, ...)."""


class IntegrityError(DatabaseError):
    """Relational integrity violations (duplicate key, FK violation, ...)."""


class InternalError(DatabaseError):
    """The database encountered an internal inconsistency."""


class ProgrammingError(DatabaseError):
    """SQL syntax errors, wrong parameter counts, missing tables, ..."""


class NotSupportedError(DatabaseError):
    """A method or SQL feature that minidb does not implement."""


class SqlSyntaxError(ProgrammingError):
    """Raised by the lexer/parser with position information."""

    def __init__(self, message: str, sql: str = "", pos: int = 0) -> None:
        self.sql = sql
        self.pos = pos
        if sql:
            line = sql.count("\n", 0, pos) + 1
            col = pos - (sql.rfind("\n", 0, pos) + 1) + 1
            message = f"{message} (line {line}, column {col})"
        super().__init__(message)
