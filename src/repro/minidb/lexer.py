"""SQL tokenizer for minidb.

Produces a flat list of :class:`Token` objects.  The lexer understands:

* keywords and identifiers (optionally ``"quoted"`` or ``[bracketed]``),
* integer/float literals, ``'string'`` literals with ``''`` escapes,
* hex blob literals ``x'ABCD'``,
* operators (including multi-char ``<=``, ``>=``, ``<>``, ``!=``, ``||``),
* positional parameters ``?`` and pyformat ``%s`` (both map to qmark), and
* ``--`` line comments and ``/* */`` block comments.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SqlSyntaxError

# Token kinds.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
BLOBLIT = "BLOB"
OP = "OP"
PARAM = "PARAM"
EOF = "EOF"

KEYWORDS = frozenset(
    """
    ALL ANALYZE AND AS ASC AUTOINCREMENT BEGIN BETWEEN BY CASE CASCADE CAST CHECK COMMIT
    CONSTRAINT CREATE CROSS DEFAULT DELETE DESC DISTINCT DROP ELSE END ESCAPE
    EXISTS EXPLAIN FALSE FOREIGN FROM FULL GLOB GROUP HAVING IF IN INDEX INNER
    INSERT INTO IS JOIN KEY LEFT LIKE LIMIT NOT NULL OFFSET ON OR ORDER OUTER
    PRIMARY REFERENCES RIGHT ROLLBACK SELECT SET TABLE THEN TRANSACTION TRUE
    UNION UNIQUE UPDATE VALUES WHEN WHERE
    """.split()
)

_OPERATORS = (
    "<=",
    ">=",
    "<>",
    "!=",
    "||",
    "==",
    "(",
    ")",
    ",",
    ".",
    "*",
    "/",
    "%",
    "+",
    "-",
    "=",
    "<",
    ">",
    ";",
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    pos: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(sql: str) -> list[Token]:
    """Tokenize *sql*; raises :class:`SqlSyntaxError` on malformed input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == "-" and sql.startswith("--", i):
            nl = sql.find("\n", i)
            i = n if nl < 0 else nl + 1
            continue
        if ch == "/" and sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            if end < 0:
                raise SqlSyntaxError("unterminated block comment", sql, i)
            i = end + 2
            continue
        if ch == "?":
            tokens.append(Token(PARAM, "?", i))
            i += 1
            continue
        if ch == "%" and sql.startswith("%s", i):
            tokens.append(Token(PARAM, "?", i))
            i += 2
            continue
        if ch == "'":
            if tokens and tokens[-1].kind == IDENT and tokens[-1].value.lower() == "x":
                # could be a blob literal only when written as x'...' with no
                # space; we only treat it as such if adjacent.
                pass
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise SqlSyntaxError("unterminated string literal", sql, i)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(sql[j])
                j += 1
            tokens.append(Token(STRING, "".join(parts), i))
            i = j + 1
            continue
        if ch in ('"', "`"):
            close = ch
            j = sql.find(close, i + 1)
            if j < 0:
                raise SqlSyntaxError("unterminated quoted identifier", sql, i)
            tokens.append(Token(IDENT, sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch == "[":
            j = sql.find("]", i + 1)
            if j < 0:
                raise SqlSyntaxError("unterminated bracketed identifier", sql, i)
            tokens.append(Token(IDENT, sql[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token(NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] in "_$"):
                j += 1
            word = sql[i:j]
            upper = word.upper()
            if upper == "X" and j < n and sql[j] == "'":
                end = sql.find("'", j + 1)
                if end < 0:
                    raise SqlSyntaxError("unterminated blob literal", sql, i)
                hexdigits = sql[j + 1 : end]
                try:
                    bytes.fromhex(hexdigits)
                except ValueError:
                    raise SqlSyntaxError("invalid blob literal", sql, i) from None
                tokens.append(Token(BLOBLIT, hexdigits, i))
                i = end + 1
                continue
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, i))
            else:
                tokens.append(Token(IDENT, word, i))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(OP, "<>" if op == "!=" else ("=" if op == "==" else op), i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise SqlSyntaxError(f"unexpected character {ch!r}", sql, i)
    tokens.append(Token(EOF, "", n))
    return tokens
