"""Recursive-descent SQL parser for minidb.

Grammar (informal)::

    statement   := select | insert | update | delete | create_table
                 | drop_table | create_index | drop_index
                 | begin | commit | rollback | explain
    select      := SELECT [DISTINCT|ALL] items [FROM source] [WHERE expr]
                   [GROUP BY exprs [HAVING expr]] [compound...]
                   [ORDER BY order_items] [LIMIT expr [OFFSET expr]]
    source      := table_or_sub (join)*
    join        := [INNER|LEFT [OUTER]|CROSS] JOIN table_or_sub [ON expr]
    expr        := or_expr  (standard precedence: OR < AND < NOT <
                   comparison/IN/LIKE/BETWEEN/IS < add < mul < unary < atom)

Expression parsing uses precedence climbing; parameters (``?``/``%s``) are
numbered left-to-right across the whole statement.
"""

from __future__ import annotations

from typing import Optional

from . import ast_nodes as ast
from .errors import SemanticError, SqlSyntaxError
from .lexer import EOF, IDENT, KEYWORD, NUMBER, OP, PARAM, STRING, BLOBLIT, Token, tokenize

_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX", "TOTAL", "GROUP_CONCAT"})


class Parser:
    """Parses one SQL statement (optionally ``;``-terminated)."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.i = 0
        self.param_count = 0

    # -- token helpers ------------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def advance(self) -> Token:
        tok = self.tokens[self.i]
        if tok.kind != EOF:
            self.i += 1
        return tok

    def at(self, kind: str, value: str | None = None) -> bool:
        return self.cur.matches(kind, value)

    def at_keyword(self, *words: str) -> bool:
        return self.cur.kind == KEYWORD and self.cur.value in words

    def accept(self, kind: str, value: str | None = None) -> Optional[Token]:
        if self.at(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        if not self.at(kind, value):
            want = value or kind
            raise SqlSyntaxError(
                f"expected {want}, found {self.cur.value or 'end of input'!r}",
                self.sql,
                self.cur.pos,
            )
        return self.advance()

    def expect_ident(self) -> str:
        # Non-reserved keywords may be used as identifiers in a pinch; we keep
        # it strict except for a few common schema words.
        if self.cur.kind == IDENT:
            return self.advance().value
        if self.cur.kind == KEYWORD and self.cur.value in ("KEY", "INDEX", "ALL"):
            return self.advance().value.lower()
        raise SqlSyntaxError(
            f"expected identifier, found {self.cur.value or 'end of input'!r}",
            self.sql,
            self.cur.pos,
        )

    # -- entry point --------------------------------------------------------

    def parse(self):
        stmt = self._statement()
        self.accept(OP, ";")
        if not self.at(EOF):
            raise SqlSyntaxError(
                f"unexpected trailing input {self.cur.value!r}", self.sql, self.cur.pos
            )
        return stmt

    def _statement(self):
        if self.at_keyword("SELECT"):
            return self._select()
        if self.at_keyword("INSERT"):
            return self._insert()
        if self.at_keyword("UPDATE"):
            return self._update()
        if self.at_keyword("DELETE"):
            return self._delete()
        if self.at_keyword("CREATE"):
            return self._create()
        if self.at_keyword("DROP"):
            return self._drop()
        if self.at_keyword("BEGIN"):
            self.advance()
            self.accept(KEYWORD, "TRANSACTION")
            return ast.Begin()
        if self.at_keyword("COMMIT"):
            self.advance()
            self.accept(KEYWORD, "TRANSACTION")
            return ast.Commit()
        if self.at_keyword("ROLLBACK"):
            self.advance()
            self.accept(KEYWORD, "TRANSACTION")
            return ast.Rollback()
        if self.at_keyword("EXPLAIN"):
            self.advance()
            analyze = bool(self.accept(KEYWORD, "ANALYZE"))
            if self.accept(KEYWORD, "CHECK"):
                return ast.Check(self._statement())
            if analyze:
                if self.at(EOF) or self.at(OP, ";"):
                    raise SemanticError(
                        "EXPLAIN ANALYZE requires a statement to execute",
                        code="SQL021",
                        location="EXPLAIN ANALYZE",
                        suggestion=(
                            "EXPLAIN ANALYZE SELECT ... to execute and profile a "
                            "statement, or EXPLAIN ANALYZE CHECK <statement> for "
                            "static analysis without executing"
                        ),
                    )
                return ast.ExplainAnalyze(self._statement())
            return ast.Explain(self._statement())
        raise SqlSyntaxError(
            f"unsupported statement start {self.cur.value!r}", self.sql, self.cur.pos
        )

    # -- SELECT -------------------------------------------------------------

    def _select(self) -> ast.Select:
        sel = self._select_clause()
        while self.at_keyword("UNION"):
            self.advance()
            op = "UNION ALL" if self.accept(KEYWORD, "ALL") else "UNION"
            sel.compounds.append((op, self._select_clause()))
        if self.accept(KEYWORD, "ORDER"):
            self.expect(KEYWORD, "BY")
            sel.order_by.append(self._order_item())
            while self.accept(OP, ","):
                sel.order_by.append(self._order_item())
        if self.accept(KEYWORD, "LIMIT"):
            sel.limit = self._expr()
            if self.accept(KEYWORD, "OFFSET"):
                sel.offset = self._expr()
            elif self.accept(OP, ","):  # LIMIT offset, count
                sel.offset = sel.limit
                sel.limit = self._expr()
        return sel

    def _select_clause(self) -> ast.Select:
        self.expect(KEYWORD, "SELECT")
        distinct = False
        if self.accept(KEYWORD, "DISTINCT"):
            distinct = True
        else:
            self.accept(KEYWORD, "ALL")
        items = [self._select_item()]
        while self.accept(OP, ","):
            items.append(self._select_item())
        source = None
        if self.accept(KEYWORD, "FROM"):
            source = self._source()
        where = self._expr() if self.accept(KEYWORD, "WHERE") else None
        group_by: list[ast.Expr] = []
        having = None
        if self.accept(KEYWORD, "GROUP"):
            self.expect(KEYWORD, "BY")
            group_by.append(self._expr())
            while self.accept(OP, ","):
                group_by.append(self._expr())
            if self.accept(KEYWORD, "HAVING"):
                having = self._expr()
        return ast.Select(
            items=items,
            source=source,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        if self.at(OP, "*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        # t.* lookahead
        if self.cur.kind == IDENT and self.tokens[self.i + 1].matches(OP, ".") and self.tokens[
            self.i + 2
        ].matches(OP, "*"):
            table = self.advance().value
            self.advance()
            self.advance()
            return ast.SelectItem(ast.Star(table))
        expr = self._expr()
        alias = None
        if self.accept(KEYWORD, "AS"):
            alias = self.expect_ident()
        elif self.cur.kind == IDENT:
            alias = self.advance().value
        return ast.SelectItem(expr, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expr()
        desc = False
        if self.accept(KEYWORD, "DESC"):
            desc = True
        else:
            self.accept(KEYWORD, "ASC")
        return ast.OrderItem(expr, desc)

    def _source(self):
        node = self._table_or_subquery()
        while True:
            kind = None
            if self.accept(KEYWORD, "CROSS"):
                self.expect(KEYWORD, "JOIN")
                kind = "CROSS"
            elif self.accept(KEYWORD, "INNER"):
                self.expect(KEYWORD, "JOIN")
                kind = "INNER"
            elif self.accept(KEYWORD, "LEFT"):
                self.accept(KEYWORD, "OUTER")
                self.expect(KEYWORD, "JOIN")
                kind = "LEFT"
            elif self.at_keyword("RIGHT", "FULL"):
                raise SqlSyntaxError(
                    "RIGHT/FULL OUTER JOIN not supported", self.sql, self.cur.pos
                )
            elif self.accept(KEYWORD, "JOIN"):
                kind = "INNER"
            elif self.accept(OP, ","):
                kind = "CROSS"
            else:
                break
            right = self._table_or_subquery()
            condition = None
            if kind != "CROSS" and self.accept(KEYWORD, "ON"):
                condition = self._expr()
            elif kind != "CROSS":
                raise SqlSyntaxError("JOIN requires ON clause", self.sql, self.cur.pos)
            node = ast.Join(kind, node, right, condition)
        return node

    def _table_or_subquery(self):
        if self.accept(OP, "("):
            sel = self._select()
            self.expect(OP, ")")
            self.accept(KEYWORD, "AS")
            alias = self.expect_ident()
            return ast.SubqueryRef(sel, alias)
        name = self.expect_ident()
        alias = None
        if self.accept(KEYWORD, "AS"):
            alias = self.expect_ident()
        elif self.cur.kind == IDENT:
            alias = self.advance().value
        return ast.TableRef(name, alias)

    # -- INSERT / UPDATE / DELETE --------------------------------------------

    def _insert(self) -> ast.Insert:
        self.expect(KEYWORD, "INSERT")
        self.expect(KEYWORD, "INTO")
        table = self.expect_ident()
        columns: list[str] = []
        if self.accept(OP, "("):
            columns.append(self.expect_ident())
            while self.accept(OP, ","):
                columns.append(self.expect_ident())
            self.expect(OP, ")")
        if self.at_keyword("SELECT"):
            return ast.Insert(table, columns, select=self._select())
        self.expect(KEYWORD, "VALUES")
        rows: list[list[ast.Expr]] = []
        while True:
            self.expect(OP, "(")
            row = [self._expr()]
            while self.accept(OP, ","):
                row.append(self._expr())
            self.expect(OP, ")")
            rows.append(row)
            if not self.accept(OP, ","):
                break
        return ast.Insert(table, columns, rows=rows)

    def _update(self) -> ast.Update:
        self.expect(KEYWORD, "UPDATE")
        table = self.expect_ident()
        self.expect(KEYWORD, "SET")
        assignments: list[tuple[str, ast.Expr]] = []
        while True:
            col = self.expect_ident()
            self.expect(OP, "=")
            assignments.append((col, self._expr()))
            if not self.accept(OP, ","):
                break
        where = self._expr() if self.accept(KEYWORD, "WHERE") else None
        return ast.Update(table, assignments, where)

    def _delete(self) -> ast.Delete:
        self.expect(KEYWORD, "DELETE")
        self.expect(KEYWORD, "FROM")
        table = self.expect_ident()
        where = self._expr() if self.accept(KEYWORD, "WHERE") else None
        return ast.Delete(table, where)

    # -- DDL ------------------------------------------------------------------

    def _create(self):
        self.expect(KEYWORD, "CREATE")
        unique = bool(self.accept(KEYWORD, "UNIQUE"))
        if self.accept(KEYWORD, "INDEX"):
            ine = self._if_not_exists()
            name = self.expect_ident()
            self.expect(KEYWORD, "ON")
            table = self.expect_ident()
            self.expect(OP, "(")
            cols = [self.expect_ident()]
            while self.accept(OP, ","):
                cols.append(self.expect_ident())
            self.expect(OP, ")")
            return ast.CreateIndex(name, table, cols, unique=unique, if_not_exists=ine)
        if unique:
            raise SqlSyntaxError("expected INDEX after CREATE UNIQUE", self.sql, self.cur.pos)
        self.expect(KEYWORD, "TABLE")
        ine = self._if_not_exists()
        name = self.expect_ident()
        self.expect(OP, "(")
        stmt = ast.CreateTable(name, [], if_not_exists=ine)
        while True:
            if self.at_keyword("PRIMARY"):
                self.advance()
                self.expect(KEYWORD, "KEY")
                self.expect(OP, "(")
                pk = [self.expect_ident()]
                while self.accept(OP, ","):
                    pk.append(self.expect_ident())
                self.expect(OP, ")")
                stmt.primary_key = pk
            elif self.at_keyword("UNIQUE"):
                self.advance()
                self.expect(OP, "(")
                uq = [self.expect_ident()]
                while self.accept(OP, ","):
                    uq.append(self.expect_ident())
                self.expect(OP, ")")
                stmt.uniques.append(uq)
            elif self.at_keyword("FOREIGN"):
                self.advance()
                self.expect(KEYWORD, "KEY")
                self.expect(OP, "(")
                local = [self.expect_ident()]
                while self.accept(OP, ","):
                    local.append(self.expect_ident())
                self.expect(OP, ")")
                self.expect(KEYWORD, "REFERENCES")
                ref_table = self.expect_ident()
                ref_cols: list[str] = []
                if self.accept(OP, "("):
                    ref_cols.append(self.expect_ident())
                    while self.accept(OP, ","):
                        ref_cols.append(self.expect_ident())
                    self.expect(OP, ")")
                stmt.foreign_keys.append((local, ref_table, ref_cols))
            elif self.at_keyword("CONSTRAINT"):
                self.advance()
                self.expect_ident()  # constraint name, then recurse on same loop
                continue
            else:
                stmt.columns.append(self._column_def())
            if not self.accept(OP, ","):
                break
        self.expect(OP, ")")
        return stmt

    def _if_not_exists(self) -> bool:
        if self.accept(KEYWORD, "IF"):
            self.expect(KEYWORD, "NOT")
            self.expect(KEYWORD, "EXISTS")
            return True
        return False

    def _column_def(self) -> ast.ColumnDef:
        name = self.expect_ident()
        type_parts = []
        # Type name: one or two identifiers/keywords (e.g. DOUBLE PRECISION),
        # optionally parenthesised size.
        while self.cur.kind == IDENT and not self._starts_column_constraint():
            type_parts.append(self.advance().value)
            if self.at(OP, "("):
                self.advance()
                size = [self.expect(NUMBER).value]
                while self.accept(OP, ","):
                    size.append(self.expect(NUMBER).value)
                self.expect(OP, ")")
                type_parts[-1] += f"({','.join(size)})"
                break
            if len(type_parts) == 2:
                break
        col = ast.ColumnDef(name, " ".join(type_parts) or "NUMERIC")
        while True:
            if self.accept(KEYWORD, "PRIMARY"):
                self.expect(KEYWORD, "KEY")
                col.primary_key = True
                if self.accept(KEYWORD, "AUTOINCREMENT"):
                    col.autoincrement = True
            elif self.accept(KEYWORD, "NOT"):
                self.expect(KEYWORD, "NULL")
                col.not_null = True
            elif self.accept(KEYWORD, "NULL"):
                pass
            elif self.accept(KEYWORD, "UNIQUE"):
                col.unique = True
            elif self.accept(KEYWORD, "DEFAULT"):
                col.default = self._atom()
            elif self.accept(KEYWORD, "REFERENCES"):
                ref_table = self.expect_ident()
                ref_col = None
                if self.accept(OP, "("):
                    ref_col = self.expect_ident()
                    self.expect(OP, ")")
                col.references = (ref_table, ref_col)
            elif self.accept(KEYWORD, "CHECK"):
                # Parse and discard (documented as unenforced).
                self.expect(OP, "(")
                depth = 1
                while depth:
                    tok = self.advance()
                    if tok.kind == EOF:
                        raise SqlSyntaxError("unterminated CHECK", self.sql, tok.pos)
                    if tok.matches(OP, "("):
                        depth += 1
                    elif tok.matches(OP, ")"):
                        depth -= 1
            else:
                break
        return col

    def _starts_column_constraint(self) -> bool:
        return self.at_keyword(
            "PRIMARY", "NOT", "NULL", "UNIQUE", "DEFAULT", "REFERENCES", "CHECK"
        )

    def _drop(self):
        self.expect(KEYWORD, "DROP")
        if self.accept(KEYWORD, "TABLE"):
            if_exists = self._if_exists()
            return ast.DropTable(self.expect_ident(), if_exists)
        if self.accept(KEYWORD, "INDEX"):
            if_exists = self._if_exists()
            return ast.DropIndex(self.expect_ident(), if_exists)
        raise SqlSyntaxError("expected TABLE or INDEX after DROP", self.sql, self.cur.pos)

    def _if_exists(self) -> bool:
        if self.accept(KEYWORD, "IF"):
            self.expect(KEYWORD, "EXISTS")
            return True
        return False

    # -- expressions ----------------------------------------------------------

    def _expr(self) -> ast.Expr:
        return self._or()

    def _or(self) -> ast.Expr:
        left = self._and()
        while self.accept(KEYWORD, "OR"):
            left = ast.Binary("OR", left, self._and())
        return left

    def _and(self) -> ast.Expr:
        left = self._not()
        while self.accept(KEYWORD, "AND"):
            left = ast.Binary("AND", left, self._not())
        return left

    def _not(self) -> ast.Expr:
        if self.accept(KEYWORD, "NOT"):
            return ast.Unary("NOT", self._not())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        while True:
            negated = False
            if self.at_keyword("NOT") and self.tokens[self.i + 1].kind == KEYWORD and self.tokens[
                self.i + 1
            ].value in ("LIKE", "IN", "BETWEEN", "GLOB"):
                self.advance()
                negated = True
            if self.at(OP) and self.cur.value in ("=", "<>", "<", "<=", ">", ">="):
                op = self.advance().value
                left = ast.Binary(op, left, self._additive())
                continue
            if self.accept(KEYWORD, "LIKE"):
                pattern = self._additive()
                escape = None
                if self.accept(KEYWORD, "ESCAPE"):
                    escape = self._additive()
                left = ast.Like(left, pattern, negated, escape)
                continue
            if self.accept(KEYWORD, "BETWEEN"):
                low = self._additive()
                self.expect(KEYWORD, "AND")
                high = self._additive()
                left = ast.Between(left, low, high, negated)
                continue
            if self.accept(KEYWORD, "IN"):
                self.expect(OP, "(")
                if self.at_keyword("SELECT"):
                    sel = self._select()
                    self.expect(OP, ")")
                    left = ast.InSelect(left, sel, negated)
                else:
                    items: list[ast.Expr] = []
                    if not self.at(OP, ")"):
                        items.append(self._expr())
                        while self.accept(OP, ","):
                            items.append(self._expr())
                    self.expect(OP, ")")
                    left = ast.InList(left, items, negated)
                continue
            if self.accept(KEYWORD, "IS"):
                neg = bool(self.accept(KEYWORD, "NOT"))
                self.expect(KEYWORD, "NULL")
                left = ast.IsNull(left, neg)
                continue
            if negated:
                raise SqlSyntaxError(
                    "expected LIKE/IN/BETWEEN after NOT", self.sql, self.cur.pos
                )
            return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while self.at(OP) and self.cur.value in ("+", "-", "||"):
            op = self.advance().value
            left = ast.Binary(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while self.at(OP) and self.cur.value in ("*", "/", "%"):
            op = self.advance().value
            left = ast.Binary(op, left, self._unary())
        return left

    def _unary(self) -> ast.Expr:
        if self.at(OP) and self.cur.value in ("-", "+"):
            op = self.advance().value
            return ast.Unary(op, self._unary())
        return self._atom()

    def _atom(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == NUMBER:
            self.advance()
            text = tok.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if tok.kind == STRING:
            self.advance()
            return ast.Literal(tok.value)
        if tok.kind == BLOBLIT:
            self.advance()
            return ast.Literal(bytes.fromhex(tok.value))
        if tok.kind == PARAM:
            self.advance()
            p = ast.Parameter(self.param_count)
            self.param_count += 1
            return p
        if tok.matches(KEYWORD, "NULL"):
            self.advance()
            return ast.Literal(None)
        if tok.matches(KEYWORD, "TRUE"):
            self.advance()
            return ast.Literal(True)
        if tok.matches(KEYWORD, "FALSE"):
            self.advance()
            return ast.Literal(False)
        if tok.matches(KEYWORD, "CASE"):
            return self._case()
        if tok.matches(KEYWORD, "CAST"):
            self.advance()
            self.expect(OP, "(")
            operand = self._expr()
            self.expect(KEYWORD, "AS")
            type_parts = [self.expect_ident()]
            while self.cur.kind == IDENT:
                type_parts.append(self.advance().value)
            if self.accept(OP, "("):
                self.expect(NUMBER)
                while self.accept(OP, ","):
                    self.expect(NUMBER)
                self.expect(OP, ")")
            self.expect(OP, ")")
            return ast.Cast(operand, " ".join(type_parts))
        if tok.matches(KEYWORD, "EXISTS"):
            self.advance()
            self.expect(OP, "(")
            sel = self._select()
            self.expect(OP, ")")
            return ast.Exists(sel)
        if tok.matches(OP, "("):
            self.advance()
            if self.at_keyword("SELECT"):
                sel = self._select()
                self.expect(OP, ")")
                return ast.ScalarSelect(sel)
            expr = self._expr()
            self.expect(OP, ")")
            return expr
        if tok.kind == IDENT:
            name = self.advance().value
            if self.at(OP, "("):
                return self._func_call(name)
            if self.accept(OP, "."):
                if self.accept(OP, "*"):
                    return ast.Star(name)
                col = self.expect_ident()
                return ast.ColumnRef(name, col)
            return ast.ColumnRef(None, name)
        raise SqlSyntaxError(
            f"unexpected token {tok.value or 'end of input'!r} in expression",
            self.sql,
            tok.pos,
        )

    def _func_call(self, name: str) -> ast.Expr:
        self.expect(OP, "(")
        upper = name.upper()
        distinct = False
        star = False
        args: list[ast.Expr] = []
        if self.accept(OP, "*"):
            star = True
        elif not self.at(OP, ")"):
            if self.accept(KEYWORD, "DISTINCT"):
                distinct = True
            args.append(self._expr())
            while self.accept(OP, ","):
                args.append(self._expr())
        self.expect(OP, ")")
        if star and upper != "COUNT":
            raise SqlSyntaxError(f"{name}(*) is only valid for COUNT", self.sql, self.cur.pos)
        return ast.FuncCall(upper, args, distinct=distinct, star=star)

    def _case(self) -> ast.Expr:
        self.expect(KEYWORD, "CASE")
        operand = None
        if not self.at_keyword("WHEN"):
            operand = self._expr()
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept(KEYWORD, "WHEN"):
            cond = self._expr()
            self.expect(KEYWORD, "THEN")
            whens.append((cond, self._expr()))
        default = None
        if self.accept(KEYWORD, "ELSE"):
            default = self._expr()
        self.expect(KEYWORD, "END")
        if not whens:
            raise SqlSyntaxError("CASE requires at least one WHEN", self.sql, self.cur.pos)
        return ast.Case(operand, whens, default)


def parse(sql: str):
    """Parse a single SQL statement; returns an AST statement node."""
    return Parser(sql).parse()


def fingerprint(sql: str) -> str:
    """Normalized statement text for per-fingerprint profiling.

    The statement profiler (:mod:`repro.obs.profiler`) aggregates stats by
    fingerprint, so two executions of the "same" statement must normalize
    to the same string — a ``pg_stat_statements``-style queryid.  Rules:

    * number/string/blob literals and ``?``/``%s`` parameters all become
      ``?`` (so ``WHERE id = 7`` and ``WHERE id = ?`` aggregate together),
    * comma-separated runs of ``?`` inside parentheses collapse to one
      ``?`` (``IN (1, 2, 3)`` and ``IN (?)`` fingerprint identically, so
      loader-generated IN-lists of any width share one entry),
    * keywords uppercase, unquoted identifiers lowercase,
    * comments and whitespace differences disappear (tokens are re-joined
      with single spaces).

    Unparseable text falls back to whitespace-collapsed SQL so callers can
    fingerprint defensively.
    """
    try:
        tokens = tokenize(sql)
    except SqlSyntaxError:
        return " ".join(sql.split())
    out: list[str] = []
    for tok in tokens:
        if tok.kind == EOF:
            break
        if tok.kind in (NUMBER, STRING, BLOBLIT, PARAM):
            # Collapse "( ?, ?, ..." runs as they form: seeing "?" right
            # after "?" + "," where the run started at "(" drops the pair.
            if (
                len(out) >= 3
                and out[-1] == ","
                and out[-2] == "?"
                and (out[-3] == "(" or out[-3] == ",")
            ):
                out.pop()  # the "," — the new "?" merges into the run
                continue
            out.append("?")
        elif tok.kind == KEYWORD:
            out.append(tok.value.upper())
        elif tok.kind == IDENT:
            out.append(tok.value.lower())
        else:
            out.append(tok.value)
    return " ".join(out)


def is_aggregate_call(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.FuncCall) and expr.name in _AGGREGATES


AGGREGATE_NAMES = _AGGREGATES
