"""minidb — an embedded relational database engine written in pure Python.

PerfTrack (SC'05) stored its data in Oracle or PostgreSQL behind Python's
DB-API 2.0.  minidb plays that role here: a from-scratch SQL engine with a
DB-API 2.0 front end, so the PerfTrack layers above it (`repro.core`,
`repro.ptdf`, ...) are written exactly as they would be against a real
server, and a second backend (stdlib sqlite3) can be swapped in unchanged.

Feature set (see `repro/minidb/parser.py` for the grammar):

* ``CREATE TABLE`` with column types, ``PRIMARY KEY`` (incl. composite),
  ``NOT NULL``, ``UNIQUE``, ``DEFAULT``, ``REFERENCES`` (enforced),
  auto-assigned integer primary keys.
* ``CREATE [UNIQUE] INDEX`` — hash + ordered access paths.
* ``INSERT`` (multi-row), ``UPDATE``, ``DELETE``.
* ``SELECT`` with joins (``INNER``/``LEFT``), ``WHERE``, ``GROUP BY`` /
  ``HAVING``, aggregates, ``DISTINCT``, ``ORDER BY``, ``LIMIT``/``OFFSET``,
  ``UNION [ALL]``, ``IN``/``EXISTS``/scalar subqueries.
* Transactions with rollback, plus write-ahead-log persistence.
* Concurrent sessions over one database (``Engine.connect()``):
  snapshot-isolated reads, per-table writer locks, group-commit WAL.

Entry point::

    import repro.minidb as minidb
    conn = minidb.connect(":memory:")
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT)")
    cur.execute("INSERT INTO t (name) VALUES (?)", ("frost",))
    cur.execute("SELECT id, name FROM t WHERE name = ?", ("frost",))
    print(cur.fetchall())
"""

from .analyzer import Analysis, Diagnostic, analyze
from .connection import Connection, Cursor, Engine, connect
from .errors import (
    DatabaseError,
    DataError,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    LockTimeoutError,
    NotSupportedError,
    OperationalError,
    ProgrammingError,
    SemanticError,
    SessionError,
    SqlSyntaxError,
    Warning,
)

#: DB-API 2.0 module globals.
apilevel = "2.0"
threadsafety = 1
paramstyle = "qmark"

__all__ = [
    "connect",
    "Connection",
    "Cursor",
    "Engine",
    "SessionError",
    "LockTimeoutError",
    "Error",
    "Warning",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "SemanticError",
    "SqlSyntaxError",
    "Analysis",
    "Diagnostic",
    "analyze",
    "apilevel",
    "threadsafety",
    "paramstyle",
]
