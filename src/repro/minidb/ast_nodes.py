"""Abstract syntax tree node definitions for the minidb SQL dialect.

Nodes are plain frozen-ish dataclasses; the parser builds them and the
planner/executor consume them.  Expression nodes share the ``Expr`` base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


class Expr:
    """Base class for expression AST nodes."""


@dataclass
class Literal(Expr):
    value: Any


@dataclass
class Parameter(Expr):
    index: int  # 0-based position in the parameter sequence


@dataclass
class ColumnRef(Expr):
    table: Optional[str]  # qualifier as written (alias or table name), or None
    name: str


@dataclass
class Star(Expr):
    table: Optional[str] = None  # for ``t.*``


@dataclass
class Unary(Expr):
    op: str  # '-', '+', 'NOT'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str  # '+', '-', '*', '/', '%', '||', '=', '<>', '<', '<=', '>', '>=', 'AND', 'OR'
    left: Expr
    right: Expr


@dataclass
class Like(Expr):
    operand: Expr
    pattern: Expr
    negated: bool = False
    escape: Optional[Expr] = None


@dataclass
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass
class InList(Expr):
    operand: Expr
    items: list[Expr]
    negated: bool = False


@dataclass
class InSelect(Expr):
    operand: Expr
    select: "Select"
    negated: bool = False


@dataclass
class Exists(Expr):
    select: "Select"
    negated: bool = False


@dataclass
class ScalarSelect(Expr):
    select: "Select"


@dataclass
class IsNull(Expr):
    operand: Expr
    negated: bool = False


@dataclass
class Case(Expr):
    operand: Optional[Expr]  # CASE x WHEN ... vs CASE WHEN ...
    whens: list[tuple[Expr, Expr]]
    default: Optional[Expr]


@dataclass
class Cast(Expr):
    operand: Expr
    type_name: str


@dataclass
class FuncCall(Expr):
    name: str  # uppercased
    args: list[Expr]
    distinct: bool = False
    star: bool = False  # COUNT(*)


# ---------------------------------------------------------------------------
# Table references


@dataclass
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class SubqueryRef:
    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


@dataclass
class Join:
    kind: str  # 'INNER', 'LEFT', 'CROSS'
    left: Any  # TableRef | SubqueryRef | Join
    right: Any
    condition: Optional[Expr]


# ---------------------------------------------------------------------------
# Statements


@dataclass
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass
class Select:
    items: list[SelectItem]
    source: Any = None  # TableRef | SubqueryRef | Join | None
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: Optional[Expr] = None
    offset: Optional[Expr] = None
    distinct: bool = False
    # UNION chain: list of (op, Select) where op in {'UNION', 'UNION ALL'}
    compounds: list[tuple[str, "Select"]] = field(default_factory=list)


@dataclass
class ColumnDef:
    name: str
    type_name: str
    primary_key: bool = False
    autoincrement: bool = False
    not_null: bool = False
    unique: bool = False
    default: Optional[Expr] = None
    references: Optional[tuple[str, Optional[str]]] = None  # (table, column)


@dataclass
class CreateTable:
    name: str
    columns: list[ColumnDef]
    primary_key: list[str] = field(default_factory=list)  # composite PK
    uniques: list[list[str]] = field(default_factory=list)
    foreign_keys: list[tuple[list[str], str, list[str]]] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


@dataclass
class CreateIndex:
    name: str
    table: str
    columns: list[str]
    unique: bool = False
    if_not_exists: bool = False


@dataclass
class DropIndex:
    name: str
    if_exists: bool = False


@dataclass
class Insert:
    table: str
    columns: list[str]  # empty = all columns in order
    rows: list[list[Expr]] = field(default_factory=list)
    select: Optional[Select] = None


@dataclass
class Update:
    table: str
    assignments: list[tuple[str, Expr]] = field(default_factory=list)
    where: Optional[Expr] = None


@dataclass
class Delete:
    table: str
    where: Optional[Expr] = None


@dataclass
class Begin:
    pass


@dataclass
class Commit:
    pass


@dataclass
class Rollback:
    pass


@dataclass
class Explain:
    statement: Any


@dataclass
class Check:
    """``EXPLAIN [ANALYZE] CHECK <statement>``: static analysis, no execution."""

    statement: Any


@dataclass
class ExplainAnalyze:
    """``EXPLAIN ANALYZE <statement>``: execute, then render the plan tree
    annotated with per-operator actual row counts and elapsed time."""

    statement: Any
