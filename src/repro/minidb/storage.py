"""Row storage and the Database object for minidb.

A :class:`Table` stores rows as ``rowid -> tuple`` with monotonically
increasing row ids; secondary indexes live alongside.  :class:`Database`
owns the catalog, all tables and indexes, the per-transaction undo logs,
and (when opened on a file) the write-ahead log.

Concurrency model (see docs/minidb.md "Concurrency model"):

* Mutations run inside a :class:`Transaction`.  In the classic embedded
  mode there is a single implicit transaction (``db.begin()`` with no
  owner) and nothing below changes shape or cost.
* In *shared* mode (``Database.enable_shared()``, used by the session
  engine) tables are copy-on-write: a writer's first touch of a table
  acquires its writer lock and detaches the row dict and index
  structures, so the previously published snapshot stays immutable.
  Commit publishes a new :class:`TableVersion` per touched table under
  ``_publish_lock`` — an O(tables-touched) pointer swap.
* Readers never lock.  ``snapshot_view()`` hands out a
  :class:`SnapshotView` pinning the last published version of every
  table; views duck-type the read-side ``Database`` API (``table()``,
  ``indexes_on()``, ``catalog``, ``index_state()``) so the planner and
  operators run against either unchanged.
"""

from __future__ import annotations

import array as _array
import threading
import time
from typing import Any, Iterator, Optional

from ..obs.metrics import metrics as _M
from .catalog import Catalog, IndexMeta, TableMeta
from .errors import IntegrityError, InternalError
from .index import Index
from .locks import SCHEMA_LOCK, LockManager
from .sqltypes import coerce

# Column-store metrics (no-ops while the registry is disabled).
_CS_BUILDS = _M.counter("minidb.column_store.builds")
_CS_SEGMENTS = _M.counter("minidb.column_store.segments")

# Transaction metrics (see docs/observability.md).
_TXN_BEGUN = _M.counter("minidb.txn.begun")
_TXN_COMMITTED = _M.counter("minidb.txn.committed")
_TXN_ROLLED_BACK = _M.counter("minidb.txn.rolled_back")
_TXN_SNAPSHOTS = _M.counter("minidb.txn.snapshots")
_TXN_DETACHES = _M.counter("minidb.txn.cow_detaches")

#: Rows per column segment.  Power of two so batch slicing stays aligned.
SEGMENT_ROWS = 4096


class ColumnSegment:
    """One horizontal slice of a table, encoded column-at-a-time on demand.

    Columns encode lazily (first touch) into the tightest representation
    the values allow: ``array('q')`` for all-int, ``array('d')`` for
    all-float, dictionary codes for low-cardinality strings, plain lists
    otherwise.  ``slice`` decodes back to Python lists batch-at-a-time —
    the typed arrays exist to keep the *segment* compact and the decode
    loop free of per-value type dispatch.
    """

    __slots__ = ("rowids", "rows", "n", "_encoded")

    def __init__(self, rowids: list, rows: list) -> None:
        self.rowids = rowids
        self.rows = rows
        self.n = len(rows)
        self._encoded: dict[int, tuple[str, Any]] = {}

    def column(self, pos: int) -> tuple[str, Any]:
        """``(kind, payload)`` for column *pos*; kinds: i/f/s/sd/o."""
        enc = self._encoded.get(pos)
        if enc is None:
            enc = self._encode(pos)
            self._encoded[pos] = enc
        return enc

    def _encode(self, pos: int) -> tuple[str, Any]:
        vals = [row[pos] for row in self.rows]
        if not vals:
            return ("o", vals)
        all_int = all_float = all_str = True
        for v in vals:
            t = type(v)
            if t is not int:
                all_int = False
            if t is not float:
                all_float = False
            if t is not str:
                all_str = False
            if not (all_int or all_float or all_str):
                return ("o", vals)
        if all_int:
            try:
                return ("i", _array.array("q", vals))
            except OverflowError:
                return ("o", vals)  # beyond int64: keep Python objects
        if all_float:
            return ("f", _array.array("d", vals))
        # Dictionary-encode repeated strings (resource names, hostnames);
        # fall back to a plain list once cardinality gets too high to pay.
        limit = max(16, self.n // 4)
        codes = _array.array("i")
        values: list[str] = []
        index: dict[str, int] = {}
        for v in vals:
            c = index.get(v)
            if c is None:
                if len(values) >= limit:
                    return ("s", vals)
                c = len(values)
                index[v] = c
                values.append(v)
            codes.append(c)
        return ("sd", (codes, values))

    def slice(self, pos: int, a: int, b: int) -> tuple[list, str]:
        """Decoded values ``[a:b)`` of column *pos* plus their batch kind."""
        kind, payload = self.column(pos)
        if kind == "i" or kind == "f":
            return payload[a:b].tolist(), kind
        if kind == "sd":
            codes, values = payload
            return [values[c] for c in codes[a:b]], "s"
        return payload[a:b], kind  # 's' plain list or 'o' objects


class ColumnStore:
    """Lazily-segmented columnar snapshot of one table's rows.

    Built on first use past the optimizer's row-count threshold and keyed
    to ``Table.data_version``: any committed mutation invalidates it, so
    scans never serve stale values.  Segments materialise on first touch,
    which keeps time-to-first-row flat — a LIMIT 10 query encodes one
    segment, not the table.
    """

    __slots__ = ("version", "nrows", "_items", "_segments")

    def __init__(self, table: "Table") -> None:
        self.version = table.data_version
        items = list(table.rows.items())
        self.nrows = len(items)
        self._items = items
        nseg = (self.nrows + SEGMENT_ROWS - 1) // SEGMENT_ROWS
        self._segments: list[Optional[ColumnSegment]] = [None] * nseg
        if _M.enabled:
            _CS_BUILDS.inc()

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def segment(self, i: int) -> ColumnSegment:
        seg = self._segments[i]
        if seg is None:
            a = i * SEGMENT_ROWS
            chunk = self._items[a : a + SEGMENT_ROWS]
            seg = ColumnSegment(
                [rid for rid, _row in chunk], [row for _rid, row in chunk]
            )
            self._segments[i] = seg
            if _M.enabled:
                _CS_SEGMENTS.inc()
        return seg


class Table:
    """Physical storage for one table.

    Rows (``rowid -> tuple``) stay the write path; ``column_store()``
    derives a columnar read snapshot for vectorized scans, invalidated by
    ``data_version`` which every mutation bumps.
    """

    def __init__(self, meta: TableMeta) -> None:
        self.meta = meta
        self.rows: dict[int, tuple] = {}
        self.next_rowid = 1
        self.next_auto = 1  # next auto-assigned integer primary key
        self.data_version = 0
        # Seqlock parity bit for column-store builds: odd while a row
        # mutation is in flight, even when at rest.  ``data_version``
        # bumps at the *end* of a mutation, so the epoch is what lets a
        # snapshot build detect that it started mid-mutation.
        self.mutation_epoch = 0
        self._column_store: Optional[ColumnStore] = None
        #: Last committed copy-on-write version (shared mode only).
        self.published: Optional[TableVersion] = None

    def __len__(self) -> int:
        return len(self.rows)

    def begin_mutation(self) -> None:
        """Mark a row mutation in flight (epoch goes odd)."""
        if not (self.mutation_epoch & 1):
            self.mutation_epoch += 1

    def bump_version(self) -> None:
        """Record a row mutation; drops any cached columnar snapshot.

        Always lands the mutation epoch on an even value so an unpaired
        ``bump_version`` (replay paths) cannot wedge snapshot builds.
        """
        self.data_version += 1
        self.mutation_epoch = (self.mutation_epoch | 1) + 1
        self._column_store = None

    def column_store(self) -> ColumnStore:
        store = self._column_store
        if store is not None and store.version == self.data_version:
            return store
        # Version-stable build: a writer bumping data_version (or holding
        # the epoch odd mid-mutation) while we copy must never yield a
        # torn snapshot — rows from version N+1 filed under version N.
        while True:
            epoch = self.mutation_epoch
            if epoch & 1:  # mutation in flight; let the writer finish
                time.sleep(0)
                continue
            try:
                store = ColumnStore(self)
            except RuntimeError:  # rows dict resized mid-copy
                continue
            if self.mutation_epoch == epoch and store.version == self.data_version:
                break
        self._column_store = store
        return store

    def allocate_rowid(self) -> int:
        rid = self.next_rowid
        self.next_rowid += 1
        return rid

    def scan(self) -> Iterator[tuple[int, tuple]]:
        return iter(self.rows.items())


class TableVersion:
    """One immutable published version of a table (shared mode).

    Duck-types the read side of :class:`Table` — ``meta``, ``rows``,
    ``data_version``, ``scan()``, ``column_store()`` and frozen
    ``indexes`` — so scan operators run against either.  Publishing is a
    pointer swap: the live table's row dict and index structures are
    adopted as-is, which is safe because the next writer detaches
    (copies) them before mutating.
    """

    __slots__ = (
        "meta", "rows", "data_version", "indexes", "_column_store", "_cs_lock"
    )

    def __init__(self, table: "Table", indexes: dict[str, Index]) -> None:
        self.meta = table.meta
        self.rows = table.rows
        self.data_version = table.data_version
        self.indexes = indexes  # lower-cased index name -> frozen Index
        self._column_store: Optional[ColumnStore] = None
        self._cs_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.rows)

    def scan(self) -> Iterator[tuple[int, tuple]]:
        return iter(self.rows.items())

    def column_store(self) -> ColumnStore:
        store = self._column_store
        if store is None:
            with self._cs_lock:
                store = self._column_store
                if store is None:
                    store = self._column_store = ColumnStore(self)
        return store


class TablePlan:
    """Cached per-table mutation metadata.

    Row mutation re-resolves the same schema facts for every row — which
    indexes cover the table, where their key columns live, which foreign
    keys apply and what index (if any) serves the referenced key.  This
    plan hoists all of it so bulk loads pay the resolution once per table
    instead of once per row.  Any DDL invalidates every plan.
    """

    __slots__ = ("indexes", "not_null", "fks")

    def __init__(
        self,
        indexes: list[tuple[Index, tuple[int, ...]]],
        not_null: list[tuple[int, str]],
        fks: list[tuple],
    ) -> None:
        self.indexes = indexes
        self.not_null = not_null
        #: each entry: (fk, local_positions, ref_meta, ref_index, ref_positions)
        self.fks = fks


class UndoEntry:
    """One reversible storage mutation."""

    __slots__ = ("kind", "table", "rowid", "row", "old_row", "counters")

    def __init__(self, kind: str, table: str, rowid: int = 0, row: tuple = (),
                 old_row: tuple = (), counters: tuple[int, int] = (0, 0)) -> None:
        self.kind = kind  # 'insert' | 'delete' | 'update' | 'counters'
        self.table = table
        self.rowid = rowid
        self.row = row
        self.old_row = old_row
        self.counters = counters


class Transaction:
    """One unit of work against a :class:`Database`.

    Owns the undo log for rollback, the WAL record buffer flushed as one
    group at commit, and the set of tables touched (= copy-on-write
    detached and, in shared mode, writer-locked).  ``owner`` is ``None``
    for the classic embedded implicit transaction and a session id
    (``"session-<n>"``) for engine sessions; the owner string is what
    the lock manager keys on.
    """

    __slots__ = ("db", "owner", "undo", "touched", "wal_records", "active", "snapshot")

    def __init__(self, db: "Database", owner: Optional[str] = None) -> None:
        self.db = db
        self.owner = owner
        self.undo: list[UndoEntry] = []
        self.touched: set[str] = set()
        #: pending WAL records as plain tuples, encoded at commit:
        #: ("insert", table, rowid, row) | ("insert_batch", table, applied)
        #: | ("update", table, rowid, row) | ("delete", table, rowid)
        #: | ("ddl", sql)
        self.wal_records: list[tuple] = []
        self.active = True
        #: reader snapshot pinned at begin (shared mode only)
        self.snapshot: Optional["SnapshotView"] = None

    def log(self, record: tuple) -> None:
        self.wal_records.append(record)


class SnapshotView:
    """A consistent, read-only view over the last published versions.

    Duck-types the read-side :class:`Database` API used by the analyzer,
    planner and operators: ``catalog``, ``table()``, ``indexes_on()``
    and ``index_state()``.  When built for a writer transaction, tables
    that transaction already touched resolve to the *live* table so a
    session reads its own uncommitted writes.
    """

    __slots__ = ("_db", "_versions", "_txn", "catalog")

    def __init__(
        self,
        db: "Database",
        versions: "dict[str, Table | TableVersion]",
        txn: Optional[Transaction] = None,
    ) -> None:
        self._db = db
        self._versions = versions
        self._txn = txn
        self.catalog = db.catalog

    def table(self, name: str):
        meta = self.catalog.table(name)  # raises ProgrammingError if absent
        key = meta.name.lower()
        txn = self._txn
        if txn is not None and key in txn.touched:
            return self._db.tables[key]
        version = self._versions.get(key)
        if version is None:
            # Created after this snapshot was pinned (DDL is schema-locked
            # and self-committing, so the published version is complete).
            table = self._db.tables[key]
            return table.published or table
        return version

    def indexes_on(self, table: str) -> list[Index]:
        version = self.table(table)
        if isinstance(version, TableVersion):
            return list(version.indexes.values())
        return self._db.indexes_on(table)

    def index_state(self, index: Index) -> Index:
        """The snapshot's frozen counterpart of a live planner index.

        Cached plans embed live :class:`Index` objects; execution against
        a snapshot resolves them by name into the pinned version's frozen
        copies (falling back to the live index for touched tables).
        """
        version = self.table(index.table)
        if isinstance(version, TableVersion):
            return version.indexes.get(index.name.lower(), index)
        return index


class Database:
    """An open minidb database: schema + data + transaction state.

    The write-ahead log (see :mod:`repro.minidb.wal`) is attached by the
    connection layer via the ``journal`` attribute; the Database calls its
    hooks on committed mutations so that durability stays decoupled from
    execution.
    """

    def __init__(self) -> None:
        self.catalog = Catalog()
        self.tables: dict[str, Table] = {}
        self.indexes: dict[str, Index] = {}
        self._plans: dict[str, TablePlan] = {}
        self.journal = None  # set by connection/engine when file-backed
        #: the classic embedded implicit transaction (owner None)
        self._txn: Optional[Transaction] = None
        #: shared (multi-session) mode switches on copy-on-write publishing
        self.shared = False
        self.locks = LockManager()
        self._publish_lock = threading.Lock()

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    # -- shared (multi-session) mode --------------------------------------------

    def enable_shared(self) -> None:
        """Switch on copy-on-write publishing for multi-session use."""
        with self._publish_lock:
            if self.shared:
                return
            self.shared = True
            for table in self.tables.values():
                self._publish_table(table)

    def _publish_table(self, table: Table) -> None:
        """Publish the live table state as the committed version.

        Caller holds ``_publish_lock`` (or is the sole thread, at
        ``enable_shared`` time).
        """
        frozen = {
            idx.name.lower(): idx.freeze()
            for idx in self.indexes_on(table.meta.name)
        }
        table.published = TableVersion(table, frozen)

    def snapshot_view(self, txn: Optional[Transaction] = None) -> SnapshotView:
        """A consistent read view over the last committed versions."""
        with self._publish_lock:
            versions: dict[str, Any] = {}
            for key, table in self.tables.items():
                versions[key] = table.published if table.published is not None else table
        if _M.enabled:
            _TXN_SNAPSHOTS.inc()
        return SnapshotView(self, versions, txn)

    def index_state(self, index: Index) -> Index:
        """Live databases resolve planner indexes to themselves."""
        return index

    def _touch(self, table: Table, txn: Optional[Transaction]) -> None:
        """First-mutation hook: lock, then copy-on-write detach (shared).

        Re-touching a table the transaction already detached is free, so
        every mutation path calls this unconditionally.
        """
        if txn is None:
            return
        key = table.meta.name.lower()
        if key in txn.touched:
            return
        if self.shared:
            if txn.owner is not None:
                self.locks.acquire(txn.owner, key)
            self._detach(table)
        txn.touched.add(key)

    def _detach(self, table: Table) -> None:
        """Split the live table from its published snapshot before writes."""
        table.rows = dict(table.rows)
        for idx in self.indexes_on(table.meta.name):
            idx.detach()
        table._column_store = None
        if _M.enabled:
            _TXN_DETACHES.inc()

    def lock_for_write(
        self, txn: Optional[Transaction], meta: TableMeta, children: bool = False
    ) -> None:
        """Acquire a DML statement's full lock set up front (ordered).

        The set is the target table, its FK-referenced parents (their
        indexes are read during constraint checks), and — for DELETE —
        the child tables scanned for dangling references.  Acquiring the
        whole set sorted keeps single-statement writers deadlock-free.
        """
        if not self.shared or txn is None or txn.owner is None:
            return
        names = {meta.name.lower()}
        for _fk, _pos, ref_meta, _ref_index, _ref_pos in self._plan(meta).fks:
            names.add(ref_meta.name.lower())
        if children:
            for other in self.catalog.tables.values():
                for fk in other.foreign_keys:
                    if fk.ref_table.lower() == meta.name.lower():
                        names.add(other.name.lower())
        self.locks.acquire_many(txn.owner, names)

    # -- schema operations -----------------------------------------------------

    def create_table(self, meta_stmt, txn: Optional[Transaction] = None) -> TableMeta:
        self._invalidate_plans()
        meta = self.catalog.create_table(meta_stmt)
        self.tables[meta.name.lower()] = Table(meta)
        # Implicit indexes for PK and UNIQUE sets.
        if meta.primary_key:
            self._make_internal_index(meta, meta.primary_key, unique=True, tag="pk")
        for i, uq in enumerate(meta.unique_sets):
            self._make_internal_index(meta, uq, unique=True, tag=f"uq{i}")
        txn = txn if txn is not None else self._txn
        if txn is not None:
            txn.touched.add(meta.name.lower())  # publish at commit
        return meta

    def _make_internal_index(self, meta: TableMeta, cols: list[str], unique: bool, tag: str) -> None:
        name = f"__{meta.name.lower()}_{tag}"
        if self.catalog.has_index(name):
            return
        imeta = IndexMeta(name, meta.name, list(cols), unique=unique)
        self.catalog.indexes[name.lower()] = imeta
        self.indexes[name.lower()] = Index(name, meta.name, cols, unique=unique)

    def drop_table(self, name: str, txn: Optional[Transaction] = None) -> None:
        self._invalidate_plans()
        meta = self.catalog.drop_table(name)
        del self.tables[meta.name.lower()]
        for iname in [n for n, idx in self.indexes.items() if idx.table.lower() == meta.name.lower()]:
            del self.indexes[iname]
        txn = txn if txn is not None else self._txn
        if txn is not None:
            # Mark touched: the commit-time publish loop skips tables that
            # no longer exist, and new snapshots simply omit the table.
            txn.touched.add(meta.name.lower())

    def create_index(self, stmt, txn: Optional[Transaction] = None) -> None:
        self._invalidate_plans()
        imeta = self.catalog.create_index(stmt)
        idx = Index(imeta.name, imeta.table, imeta.columns, unique=imeta.unique)
        table = self.table(imeta.table)
        positions = [table.meta.column_index(c) for c in imeta.columns]
        try:
            idx.rebuild(table.scan(), lambda row: tuple(row[p] for p in positions))
        except IntegrityError:
            # Existing data violates the new UNIQUE index: undo registration.
            self.catalog.drop_index(imeta.name)
            raise
        self.indexes[imeta.name.lower()] = idx
        txn = txn if txn is not None else self._txn
        if txn is not None:
            txn.touched.add(imeta.table.lower())  # republish with the index

    def drop_index(self, name: str, txn: Optional[Transaction] = None) -> None:
        self._invalidate_plans()
        imeta = self.catalog.drop_index(name)
        self.indexes.pop(imeta.name.lower(), None)
        txn = txn if txn is not None else self._txn
        if txn is not None:
            txn.touched.add(imeta.table.lower())

    def table(self, name: str) -> Table:
        meta = self.catalog.table(name)  # raises ProgrammingError if absent
        return self.tables[meta.name.lower()]

    def indexes_on(self, table: str) -> list[Index]:
        return [
            self.indexes[m.name.lower()]
            for m in self.catalog.indexes_on(table)
            if m.name.lower() in self.indexes
        ]

    # -- cached mutation plans ------------------------------------------------------

    def _plan(self, meta: TableMeta) -> TablePlan:
        key = meta.name.lower()
        plan = self._plans.get(key)
        if plan is None:
            plan = self._build_plan(meta)
            self._plans[key] = plan
        return plan

    def _build_plan(self, meta: TableMeta) -> TablePlan:
        idxs = [
            (idx, tuple(meta.column_index(c) for c in idx.columns))
            for idx in self.indexes_on(meta.name)
        ]
        not_null = [(i, c.name) for i, c in enumerate(meta.columns) if c.not_null]
        fks: list[tuple] = []
        for fk in meta.foreign_keys:
            if not self.catalog.has_table(fk.ref_table):
                continue  # forward reference during schema creation
            ref_meta = self.catalog.table(fk.ref_table)
            ref_cols = fk.ref_columns or ref_meta.primary_key
            if not ref_cols:
                continue
            positions = tuple(meta.column_index(c) for c in fk.columns)
            want = [c.lower() for c in ref_cols]
            ref_index = None
            for idx in self.indexes_on(ref_meta.name):
                if [c.lower() for c in idx.columns] == want:
                    ref_index = idx
                    break
            ref_positions = tuple(ref_meta.column_index(c) for c in ref_cols)
            fks.append((fk, positions, ref_meta, ref_index, ref_positions))
        return TablePlan(idxs, not_null, fks)

    def _invalidate_plans(self) -> None:
        self._plans.clear()

    # -- transactions -------------------------------------------------------------

    def begin(self, owner: Optional[str] = None) -> Transaction:
        """Open (or join) a transaction.

        With no *owner* this is the classic embedded implicit
        transaction: idempotent, tracked on the database itself.  With an
        owner (engine sessions) every call opens an independent
        transaction the caller threads through the executor; in shared
        mode it pins the session's read snapshot.
        """
        if owner is None:
            if self._txn is not None:
                return self._txn
            txn = self._txn = Transaction(self, None)
        else:
            txn = Transaction(self, owner)
        if self.shared:
            txn.snapshot = self.snapshot_view(txn)
        if _M.enabled:
            _TXN_BEGUN.inc()
        return txn

    def commit(self, txn: Optional[Transaction] = None) -> None:
        """Commit: WAL append + group fsync, then publish, then unlock.

        Ordering is what gives both durability and isolation: records
        reach the log before the new versions become visible, and the
        versions are published before the writer locks release.
        """
        txn = txn if txn is not None else self._txn
        if txn is None or not txn.active:
            return
        if self.journal is not None and txn.wal_records:
            self.journal.commit_records(txn.wal_records)
        if self.shared and txn.touched:
            with self._publish_lock:
                for key in txn.touched:
                    table = self.tables.get(key)
                    if table is not None:
                        self._publish_table(table)
        self._finish(txn)
        if _M.enabled:
            _TXN_COMMITTED.inc()

    def rollback(self, txn: Optional[Transaction] = None) -> None:
        txn = txn if txn is not None else self._txn
        if txn is None or not txn.active:
            return
        for entry in reversed(txn.undo):
            self._apply_undo(entry)
        self._finish(txn)
        if _M.enabled:
            _TXN_ROLLED_BACK.inc()

    def _finish(self, txn: Transaction) -> None:
        txn.undo.clear()
        txn.wal_records.clear()
        txn.touched.clear()
        txn.snapshot = None
        txn.active = False
        if txn is self._txn:
            self._txn = None
        if txn.owner is not None:
            self.locks.release_all(txn.owner)

    def _apply_undo(self, entry: UndoEntry) -> None:
        table = self.tables.get(entry.table.lower())
        if table is None:
            raise InternalError(f"undo references missing table {entry.table}")
        if entry.kind == "insert":
            table.begin_mutation()
            self._unindex_row(table, entry.rowid, entry.row)
            table.rows.pop(entry.rowid, None)
            table.bump_version()
        elif entry.kind == "delete":
            table.begin_mutation()
            table.rows[entry.rowid] = entry.old_row
            self._index_row(table, entry.rowid, entry.old_row, check=False)
            table.bump_version()
        elif entry.kind == "update":
            table.begin_mutation()
            self._unindex_row(table, entry.rowid, entry.row)
            table.rows[entry.rowid] = entry.old_row
            self._index_row(table, entry.rowid, entry.old_row, check=False)
            table.bump_version()
        elif entry.kind == "counters":
            table.next_rowid, table.next_auto = entry.counters
        else:  # pragma: no cover - defensive
            raise InternalError(f"unknown undo kind {entry.kind}")

    # -- row mutation (used by executor) -------------------------------------------

    def _index_row(self, table: Table, rowid: int, row: tuple, check: bool = True) -> None:
        entries = self._plan(table.meta).indexes
        if check:
            for idx, positions in entries:
                idx.check_insert(tuple(row[p] for p in positions))
        for idx, positions in entries:
            idx.insert(tuple(row[p] for p in positions), rowid)

    def _unindex_row(self, table: Table, rowid: int, row: tuple) -> None:
        for idx, positions in self._plan(table.meta).indexes:
            idx.delete(tuple(row[p] for p in positions), rowid)

    def insert_row(
        self, table: Table, values: list[Any], txn: Optional[Transaction] = None
    ) -> int:
        """Insert a full-width row (already coerced); returns assigned rowid/PK."""
        meta = table.meta
        txn = txn if txn is not None else self._txn
        if txn is None:
            txn = self.begin()
        self._touch(table, txn)
        txn.undo.append(
            UndoEntry("counters", meta.name, counters=(table.next_rowid, table.next_auto))
        )
        auto_col = meta.rowid_pk_column
        assigned = None
        if auto_col is not None:
            if values[auto_col] is None:
                values[auto_col] = table.next_auto
            assigned = values[auto_col]
            if isinstance(assigned, int) and assigned >= table.next_auto:
                table.next_auto = assigned + 1
        # NOT NULL checks.
        for i, name in self._plan(meta).not_null:
            if values[i] is None:
                raise IntegrityError(
                    f"NOT NULL constraint failed: {meta.name}.{name}"
                )
        row = tuple(values)
        rowid = table.allocate_rowid()
        self._check_foreign_keys_insert(meta, row)
        table.begin_mutation()
        try:
            self._index_row(table, rowid, row, check=True)
            table.rows[rowid] = row
        finally:
            table.bump_version()
        txn.undo.append(UndoEntry("insert", meta.name, rowid, row))
        if self.journal is not None:
            txn.log(("insert", meta.name, rowid, row))
        return assigned if assigned is not None else rowid

    def insert_rows(
        self,
        table: Table,
        rows: "Iterator[list[Any]]",
        txn: Optional[Transaction] = None,
    ) -> tuple[list[tuple[int, tuple]], Optional[Any]]:
        """Batch insert of coerced full-width rows (vectorized ``executemany``).

        Constraints (NOT NULL, UNIQUE, FOREIGN KEY) are still checked per
        row, but all schema resolution is hoisted out of the loop and only
        one counters undo entry is written for the whole batch — on
        rollback it restores the batch-start counters exactly as the
        per-row entries would have.  Journal hooks are *not* called; the
        caller logs the returned ``(rowid, row)`` list as one batch record.

        Returns ``(applied, lastrowid)``.  On a mid-batch failure the undo
        entries for already-applied rows are left in place for the caller
        to unwind (see ``Executor.execute_insert_batch``).
        """
        meta = table.meta
        plan = self._plan(meta)
        txn = txn if txn is not None else self._txn
        if txn is None:
            txn = self.begin()
        self._touch(table, txn)
        undo = txn.undo
        undo.append(
            UndoEntry("counters", meta.name, counters=(table.next_rowid, table.next_auto))
        )
        auto_col = meta.rowid_pk_column
        # Specialise single-column keys (the overwhelmingly common shape):
        # (index, single position or None, all positions).
        index_ops = [
            (idx, p[0] if len(p) == 1 else None, p) for idx, p in plan.indexes
        ]
        fk_ops = [
            (fk, p[0] if len(p) == 1 else None, p, ref_meta, ref_index, ref_pos)
            for fk, p, ref_meta, ref_index, ref_pos in plan.fks
        ]
        not_null = plan.not_null
        table_rows = table.rows
        applied: list[tuple[int, tuple]] = []
        lastrowid: Optional[Any] = None
        table.begin_mutation()
        try:
            for values in rows:
                if auto_col is not None:
                    v = values[auto_col]
                    if v is None:
                        v = values[auto_col] = table.next_auto
                    lastrowid = v
                    if isinstance(v, int) and v >= table.next_auto:
                        table.next_auto = v + 1
                for i, name in not_null:
                    if values[i] is None:
                        raise IntegrityError(
                            f"NOT NULL constraint failed: {meta.name}.{name}"
                        )
                row = tuple(values)
                rowid = table.next_rowid
                table.next_rowid = rowid + 1
                if auto_col is None:
                    lastrowid = rowid
                for fk, p0, ps, ref_meta, ref_index, ref_positions in fk_ops:
                    if p0 is not None:
                        kv = row[p0]
                        if kv is None:
                            continue  # NULL FK values pass (SQL MATCH SIMPLE)
                        key = (kv,)
                    else:
                        key = tuple(row[p] for p in ps)
                        if any(kv is None for kv in key):
                            continue
                    if ref_index is not None:
                        if ref_index.contains(key):
                            continue
                    else:
                        ref_table = self.tables[ref_meta.name.lower()]
                        if any(
                            all(r[p] == kv for p, kv in zip(ref_positions, key))
                            for r in ref_table.rows.values()
                        ):
                            continue
                    raise IntegrityError(
                        f"FOREIGN KEY constraint failed: {meta.name}"
                        f"({', '.join(fk.columns)}) -> {fk.ref_table}"
                    )
                keys = [
                    (row[p0],) if p0 is not None else tuple(row[p] for p in ps)
                    for _idx, p0, ps in index_ops
                ]
                for (idx, _p0, _ps), key in zip(index_ops, keys):
                    if idx.unique:
                        idx.check_insert(key)
                for (idx, _p0, _ps), key in zip(index_ops, keys):
                    idx.insert(key, rowid)
                table_rows[rowid] = row
                undo.append(UndoEntry("insert", meta.name, rowid, row))
                applied.append((rowid, row))
        finally:
            # Always realign the seqlock epoch; on a mid-batch constraint
            # failure the caller unwinds the applied rows via undo.
            table.bump_version()
        return applied, lastrowid

    def update_row(
        self, table: Table, rowid: int, new_row: tuple,
        txn: Optional[Transaction] = None,
    ) -> None:
        meta = table.meta
        txn = txn if txn is not None else self._txn
        if txn is None:
            txn = self.begin()
        self._touch(table, txn)
        old_row = table.rows[rowid]
        for i, col in enumerate(meta.columns):
            if new_row[i] is None and col.not_null:
                raise IntegrityError(
                    f"NOT NULL constraint failed: {meta.name}.{col.name}"
                )
        self._check_foreign_keys_insert(meta, new_row)
        table.begin_mutation()
        try:
            self._unindex_row(table, rowid, old_row)
            try:
                self._index_row(table, rowid, new_row, check=True)
            except IntegrityError:
                self._index_row(table, rowid, old_row, check=False)
                raise
            table.rows[rowid] = new_row
        finally:
            table.bump_version()
        txn.undo.append(UndoEntry("update", meta.name, rowid, new_row, old_row))
        if self.journal is not None:
            txn.log(("update", meta.name, rowid, new_row))

    def delete_row(
        self, table: Table, rowid: int, txn: Optional[Transaction] = None
    ) -> None:
        meta = table.meta
        txn = txn if txn is not None else self._txn
        if txn is None:
            txn = self.begin()
        self._touch(table, txn)
        table.begin_mutation()
        try:
            old_row = table.rows.pop(rowid)
            self._unindex_row(table, rowid, old_row)
            try:
                self._check_foreign_keys_delete(meta, old_row)
            except IntegrityError:
                table.rows[rowid] = old_row
                self._index_row(table, rowid, old_row, check=False)
                raise
        finally:
            table.bump_version()
        txn.undo.append(UndoEntry("delete", meta.name, rowid, old_row=old_row))
        if self.journal is not None:
            txn.log(("delete", meta.name, rowid))

    # -- referential integrity ---------------------------------------------------------

    def _check_foreign_keys_insert(self, meta: TableMeta, row: tuple) -> None:
        for fk, positions, ref_meta, ref_index, ref_positions in self._plan(meta).fks:
            values = tuple(row[p] for p in positions)
            if any(v is None for v in values):
                continue  # NULL FK values pass (SQL MATCH SIMPLE)
            if ref_index is not None:
                if ref_index.lookup(values):
                    continue
            else:
                ref_table = self.tables[ref_meta.name.lower()]
                if any(
                    all(r[p] == v for p, v in zip(ref_positions, values))
                    for r in ref_table.rows.values()
                ):
                    continue
            raise IntegrityError(
                f"FOREIGN KEY constraint failed: {meta.name}"
                f"({', '.join(fk.columns)}) -> {fk.ref_table}"
            )

    def _check_foreign_keys_delete(self, meta: TableMeta, row: tuple) -> None:
        # Scan every table whose FKs reference `meta` and ensure no child
        # row still points at the deleted key.
        for other in self.catalog.tables.values():
            for fk in other.foreign_keys:
                if fk.ref_table.lower() != meta.name.lower():
                    continue
                ref_cols = fk.ref_columns or meta.primary_key
                if not ref_cols:
                    continue
                key = tuple(row[meta.column_index(c)] for c in ref_cols)
                if any(v is None for v in key):
                    continue
                child = self.tables[other.name.lower()]
                if self._key_exists(other, fk.columns, key, table=child):
                    raise IntegrityError(
                        f"FOREIGN KEY constraint failed: {other.name}"
                        f"({', '.join(fk.columns)}) still references {meta.name}"
                    )

    def _key_exists(
        self, meta: TableMeta, columns: list[str], values: tuple, table: Optional[Table] = None
    ) -> bool:
        table = table or self.tables[meta.name.lower()]
        # Prefer an index whose leading columns match.
        for idx in self.indexes_on(meta.name):
            if [c.lower() for c in idx.columns] == [c.lower() for c in columns]:
                return bool(idx.lookup(tuple(values)))
        positions = [meta.column_index(c) for c in columns]
        for row in table.rows.values():
            if all(row[p] == v for p, v in zip(positions, values)):
                return True
        return False

    # -- coercion helper -------------------------------------------------------------------

    def coerce_row(self, meta: TableMeta, values: list[Any]) -> list[Any]:
        return [coerce(v, c.affinity) for v, c in zip(values, meta.columns)]
