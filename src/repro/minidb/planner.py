"""Access-path selection for minidb.

The planner is intentionally simple: it recognises *sargable* conjuncts of
the form ``column = <known expr>`` (and range comparisons) and matches them
against available indexes.  Plans are small dataclasses the executor
interprets; ``EXPLAIN <stmt>`` renders them as text.

PerfTrack's hot queries — focus/resource lookups by id or name, pr-filter
family probes — are all equality probes, so index-equality is the path
that matters.  Equi-joins with no usable index get a hash join (build the
probed table's key map once, stream the outer side against it) instead of
O(n·m) nested loops; everything else falls back to a full scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from . import ast_nodes as ast
from .catalog import TableMeta
from .errors import ProgrammingError, SemanticError, closest
from .expressions import collect_aggregates
from .index import Index


#: Minimum row count of the build (probed) table before a hash join pays
#: for building its key map; below this a nested scan is cheaper.
HASH_JOIN_MIN_BUILD_ROWS = 4


def split_conjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    """Flatten a WHERE tree into AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def expr_is_known(expr: ast.Expr, known_binding: Callable[[Optional[str], str], bool]) -> bool:
    """True when *expr* can be evaluated without scanning the target table.

    ``known_binding(table, column)`` reports whether a column reference is
    resolvable from an already-bound (outer) row; literals and parameters
    are always known.  Subqueries are conservatively treated as unknown.
    """
    if isinstance(expr, (ast.Literal, ast.Parameter)):
        return True
    if isinstance(expr, ast.ColumnRef):
        return known_binding(expr.table, expr.name)
    if isinstance(expr, ast.Unary):
        return expr_is_known(expr.operand, known_binding)
    if isinstance(expr, ast.Binary):
        return expr_is_known(expr.left, known_binding) and expr_is_known(
            expr.right, known_binding
        )
    if isinstance(expr, ast.Cast):
        return expr_is_known(expr.operand, known_binding)
    if isinstance(expr, ast.FuncCall):
        return all(expr_is_known(a, known_binding) for a in expr.args) and not expr.star
    if isinstance(expr, ast.Case):
        parts = [expr.operand] if expr.operand else []
        for c, r in expr.whens:
            parts.extend([c, r])
        if expr.default:
            parts.append(expr.default)
        return all(expr_is_known(p, known_binding) for p in parts)
    return False


@dataclass
class Sargable:
    """One usable predicate: ``column <op> value_expr``."""

    column: str
    op: str  # '=', '<', '<=', '>', '>='
    value: ast.Expr
    conjunct: ast.Expr  # original node (for residual elimination)


def extract_sargables(
    conjuncts: list[ast.Expr],
    binding: str,
    meta: TableMeta,
    known_binding: Callable[[Optional[str], str], bool],
) -> list[Sargable]:
    """Find predicates on *binding*'s columns comparable against known values."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    out: list[Sargable] = []
    for conj in conjuncts:
        if not isinstance(conj, ast.Binary) or conj.op not in flipped:
            continue
        for left, right, op in (
            (conj.left, conj.right, conj.op),
            (conj.right, conj.left, flipped[conj.op]),
        ):
            if (
                isinstance(left, ast.ColumnRef)
                and (left.table is None or left.table.lower() == binding.lower())
                and meta.has_column(left.name)
                and expr_is_known(right, known_binding)
            ):
                out.append(Sargable(left.name.lower(), op, right, conj))
                break
    return out


@dataclass
class InProbe:
    """Multi-probe of an index: ``column IN (known values...)``."""

    table: str
    binding: str
    index: "Index"
    items: list[ast.Expr]
    consumed: list[ast.Expr] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"SEARCH {self.table} AS {self.binding} USING INDEX "
            f"{self.index.name} IN-PROBE ({len(self.items)} keys)"
        )


@dataclass
class HashJoin:
    """Equi-join probe with no usable index: hash the table once, stream
    outer rows against it.

    ``build_positions[i]`` is the row position of ``build_cols[i]`` in the
    probed table; ``probe_exprs[i]`` is the matching outer-row expression.
    NULL keys are excluded on both sides (SQL equi-join semantics).
    """

    table: str
    binding: str
    build_cols: list[str]
    build_positions: list[int]
    probe_exprs: list[ast.Expr]
    consumed: list[ast.Expr] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"HashJoin {self.table} AS {self.binding} "
            f"(key: {', '.join(self.build_cols)})"
        )


@dataclass
class FullScan:
    table: str
    binding: str

    def describe(self) -> str:
        return f"SCAN {self.table} AS {self.binding}"


@dataclass
class IndexEquality:
    table: str
    binding: str
    index: Index
    key_exprs: list[ast.Expr]
    consumed: list[ast.Expr] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"SEARCH {self.table} AS {self.binding} USING INDEX "
            f"{self.index.name} ({', '.join(self.index.columns)})"
        )


@dataclass
class IndexRange:
    table: str
    binding: str
    index: Index
    prefix_exprs: list[ast.Expr]
    low: Optional[tuple[str, ast.Expr]] = None  # (op, expr)
    high: Optional[tuple[str, ast.Expr]] = None
    consumed: list[ast.Expr] = field(default_factory=list)

    def describe(self) -> str:
        bounds = []
        if self.low:
            bounds.append(f"{self.low[0]} low")
        if self.high:
            bounds.append(f"{self.high[0]} high")
        return (
            f"SEARCH {self.table} AS {self.binding} USING INDEX "
            f"{self.index.name} RANGE ({' AND '.join(bounds) or 'prefix'})"
        )


AccessPath = FullScan | IndexEquality | IndexRange | InProbe | HashJoin


def _contains_column_ref(expr: ast.Expr) -> bool:
    """True when *expr* references any column (i.e. varies per outer row)."""
    if isinstance(expr, ast.ColumnRef):
        return True
    if isinstance(expr, ast.Unary):
        return _contains_column_ref(expr.operand)
    if isinstance(expr, ast.Binary):
        return _contains_column_ref(expr.left) or _contains_column_ref(expr.right)
    if isinstance(expr, ast.Cast):
        return _contains_column_ref(expr.operand)
    if isinstance(expr, ast.FuncCall):
        return any(_contains_column_ref(a) for a in expr.args)
    return False


def choose_access_path(
    indexes: list[Index],
    meta: TableMeta,
    binding: str,
    conjuncts: list[ast.Expr],
    known_binding: Callable[[Optional[str], str], bool],
    table_size: Optional[int] = None,
) -> AccessPath:
    """Pick the best access path for one table given AND-ed conjuncts.

    Preference order: longest full-equality index match, then equality
    prefix + range, then — for equi-join conjuncts against outer-row
    values with no usable index and a build side of at least
    ``HASH_JOIN_MIN_BUILD_ROWS`` rows (*table_size*) — a hash join, then
    full scan.  Ties favour unique indexes.
    """
    # ``col IN (known items...)`` against a single-column index: multi-probe.
    # Checked first because pr-filter evaluation (PerfTrack's hot path) is
    # dominated by exactly this shape.
    if indexes:
        for conj in conjuncts:
            if (
                isinstance(conj, ast.InList)
                and not conj.negated
                and isinstance(conj.operand, ast.ColumnRef)
                and (
                    conj.operand.table is None
                    or conj.operand.table.lower() == binding.lower()
                )
                and meta.has_column(conj.operand.name)
                and all(expr_is_known(i, known_binding) for i in conj.items)
            ):
                col = conj.operand.name.lower()
                for idx in indexes:
                    if [c.lower() for c in idx.columns] == [col]:
                        return InProbe(
                            meta.name, binding, idx, list(conj.items), consumed=[conj]
                        )
    sargables = extract_sargables(conjuncts, binding, meta, known_binding)
    if not sargables:
        return FullScan(meta.name, binding)
    eq_by_col: dict[str, Sargable] = {}
    range_by_col: dict[str, list[Sargable]] = {}
    for s in sargables:
        if s.op == "=":
            eq_by_col.setdefault(s.column, s)
        else:
            range_by_col.setdefault(s.column, []).append(s)

    best: AccessPath | None = None
    best_score = (-1, False)  # (matched eq columns, unique)
    for idx in indexes:
        cols = [c.lower() for c in idx.columns]
        matched: list[Sargable] = []
        for c in cols:
            s = eq_by_col.get(c)
            if s is None:
                break
            matched.append(s)
        if len(matched) == len(cols):
            score = (len(matched) + 1, idx.unique)
            if score > best_score:
                best_score = score
                best = IndexEquality(
                    meta.name,
                    binding,
                    idx,
                    [s.value for s in matched],
                    consumed=[s.conjunct for s in matched],
                )
            continue
        if matched:
            score = (len(matched), idx.unique)
            if score > best_score:
                best_score = score
                # Equality on a strict prefix: range-scan the prefix.
                best = IndexRange(
                    meta.name,
                    binding,
                    idx,
                    [s.value for s in matched],
                    consumed=[],  # keep conjuncts as residual filters: prefix
                    # scan returns a superset when the index has more columns
                )
            continue
        # Pure range on leading column.
        ranges = range_by_col.get(cols[0])
        if ranges:
            low = high = None
            for s in ranges:
                if s.op in (">", ">="):
                    low = (s.op, s.value)
                else:
                    high = (s.op, s.value)
            score = (0, idx.unique)
            if best is None:
                best_score = score
                best = IndexRange(meta.name, binding, idx, [], low=low, high=high)
    if best is not None:
        return best
    hash_join = _maybe_hash_join(meta, binding, eq_by_col, table_size)
    if hash_join is not None:
        return hash_join
    return FullScan(meta.name, binding)


def _maybe_hash_join(
    meta: TableMeta,
    binding: str,
    eq_by_col: dict[str, Sargable],
    table_size: Optional[int],
) -> Optional[HashJoin]:
    """Build a hash-join plan from equality conjuncts, if worthwhile.

    At least one equality value must reference an outer-row column —
    constant probes gain nothing from hashing over a single residual
    scan — and the build side must be big enough to amortise the build.
    """
    if not eq_by_col:
        return None
    if table_size is not None and table_size < HASH_JOIN_MIN_BUILD_ROWS:
        return None
    if not any(_contains_column_ref(s.value) for s in eq_by_col.values()):
        return None
    cols = list(eq_by_col)
    return HashJoin(
        meta.name,
        binding,
        build_cols=cols,
        build_positions=[meta.column_index(c) for c in cols],
        probe_exprs=[eq_by_col[c].value for c in cols],
        consumed=[eq_by_col[c].conjunct for c in cols],
    )


# ---------------------------------------------------------------------------
# Output shape helpers — shared by the logical planner, the optimizer's
# physical lowering, and the executor's DML paths.


def render_expr(expr: ast.Expr) -> str:
    """Readable name for an unaliased select expression."""
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.ColumnRef):
        return f"{expr.table}.{expr.name}" if expr.table else expr.name
    if isinstance(expr, ast.FuncCall):
        inner = "*" if expr.star else ", ".join(render_expr(a) for a in expr.args)
        if expr.distinct:
            inner = f"DISTINCT {inner}"
        return f"{expr.name}({inner})"
    if isinstance(expr, ast.Binary):
        return f"{render_expr(expr.left)} {expr.op} {render_expr(expr.right)}"
    if isinstance(expr, ast.Unary):
        return f"{expr.op} {render_expr(expr.operand)}"
    return type(expr).__name__.lower()


def binding_columns(catalog, source) -> list[tuple[str, list[str]]]:
    """``(binding, column names)`` for every table the source binds."""
    if source is None:
        return []
    if isinstance(source, ast.TableRef):
        meta = catalog.table(source.name)
        return [(source.binding, meta.column_names)]
    if isinstance(source, ast.SubqueryRef):
        return [(source.alias, output_names(catalog, source.select))]
    if isinstance(source, ast.Join):
        return binding_columns(catalog, source.left) + binding_columns(
            catalog, source.right
        )
    raise ProgrammingError(f"unknown source {source!r}")


def star_names(catalog, source, table: Optional[str]) -> list[str]:
    names: list[str] = []
    for binding, columns in binding_columns(catalog, source):
        if table is None or binding.lower() == table.lower():
            names.extend(columns)
    if not names:
        target = table or "*"
        bindings = [b for b, _cols in binding_columns(catalog, source)]
        raise SemanticError(
            f"no columns for {target}",
            code="SQL018",
            suggestion=closest(table, bindings) if table else None,
        )
    return names


def output_names(catalog, stmt: ast.Select) -> list[str]:
    names: list[str] = []
    for item in stmt.items:
        if isinstance(item.expr, ast.Star):
            names.extend(star_names(catalog, stmt.source, item.expr.table))
        elif item.alias:
            names.append(item.alias)
        elif isinstance(item.expr, ast.ColumnRef):
            names.append(item.expr.name)
        else:
            names.append(render_expr(item.expr))
    return names


def aggregate_calls(stmt: ast.Select) -> list[ast.FuncCall]:
    """Aggregate FuncCall nodes of one SELECT, in evaluation order.

    Collected from the select list, HAVING and ORDER BY — identity-keyed
    (``id(node)``) so the same node shares one accumulator everywhere.
    """
    calls: list[ast.FuncCall] = []
    for item in stmt.items:
        if not isinstance(item.expr, ast.Star):
            collect_aggregates(item.expr, calls)
    collect_aggregates(stmt.having, calls)
    for oi in stmt.order_by:
        collect_aggregates(oi.expr, calls)
    return calls


def select_has_aggregates(stmt: ast.Select) -> bool:
    return bool(aggregate_calls(stmt))


def source_bindings(source) -> list[str]:
    if source is None:
        return []
    if isinstance(source, (ast.TableRef, ast.SubqueryRef)):
        return [source.binding]
    if isinstance(source, ast.Join):
        return source_bindings(source.left) + source_bindings(source.right)
    raise ProgrammingError(f"unknown source {source!r}")


# ---------------------------------------------------------------------------
# Logical plan — the relational-algebra shape of one SELECT, annotated with
# estimated cardinalities.  Built here from the analyzed AST; the optimizer
# (:mod:`repro.minidb.optimizer`) rewrites it and lowers it to physical
# operators.  Logical nodes never own execution state and never mutate the
# AST they reference.


@dataclass
class ScanNode:
    """One base-table access (access path chosen later, at lowering)."""

    ref: ast.TableRef
    est_rows: int = 0


@dataclass
class SubqueryNode:
    """A FROM-clause subquery with its own logical select plan."""

    ref: ast.SubqueryRef
    plan: "SelectPlan"
    est_rows: int = 0


@dataclass
class JoinNode:
    kind: str  # 'INNER', 'LEFT', 'CROSS'
    left: Any  # ScanNode | SubqueryNode | JoinNode
    right: Any
    condition: Optional[ast.Expr]
    est_rows: int = 0


@dataclass
class BranchPlan:
    """One SELECT core: source tree + filter + aggregate/project + distinct."""

    select: ast.Select
    source: Any  # ScanNode | SubqueryNode | JoinNode | None
    where: Optional[ast.Expr]
    aggregate: bool
    distinct: bool
    est_rows: int = 0


@dataclass
class SelectPlan:
    """Logical plan for one (possibly compound) SELECT statement."""

    select: ast.Select
    branches: list[BranchPlan]
    #: branch index up to which UNION dedup applies (-1: pure UNION ALL)
    dedup_until: int
    order_by: list[ast.OrderItem]
    limit: Optional[ast.Expr]
    offset: Optional[ast.Expr]
    names: list[str]
    est_rows: int = 0


def _estimate_source(db, node) -> int:
    if node is None:
        return 1
    if isinstance(node, ScanNode):
        return node.est_rows
    if isinstance(node, SubqueryNode):
        return node.est_rows
    if isinstance(node, JoinNode):
        return node.est_rows
    raise ProgrammingError(f"unknown logical node {node!r}")


def _build_source(db, source) -> Any:
    if source is None:
        return None
    if isinstance(source, ast.TableRef):
        return ScanNode(source, est_rows=len(db.table(source.name).rows))
    if isinstance(source, ast.SubqueryRef):
        plan = build_logical_plan(db, source.select)
        return SubqueryNode(source, plan, est_rows=plan.est_rows)
    if isinstance(source, ast.Join):
        left = _build_source(db, source.left)
        right = _build_source(db, source.right)
        l_est = _estimate_source(db, left)
        r_est = _estimate_source(db, right)
        if source.kind == "CROSS" or source.condition is None:
            est = l_est * r_est
        else:
            # Equi-join heuristic: roughly one match per outer row.
            est = max(l_est, r_est)
        if source.kind == "LEFT":
            est = max(est, l_est)
        return JoinNode(source.kind, left, right, source.condition, est_rows=est)
    raise ProgrammingError(f"cannot plan source {source!r}")


def _build_branch(db, select: ast.Select) -> BranchPlan:
    source = _build_source(db, select.source)
    est = _estimate_source(db, source)
    if select.where is not None:
        est = max(1, est // 3)
    aggregate = bool(select.group_by) or select_has_aggregates(select)
    if aggregate:
        est = max(1, est // 10) if select.group_by else 1
    return BranchPlan(
        select=select,
        source=source,
        where=select.where,
        aggregate=aggregate,
        distinct=select.distinct,
        est_rows=est,
    )


def build_logical_plan(db, stmt: ast.Select) -> SelectPlan:
    """Shape one SELECT (and its UNION chain) into a logical plan tree."""
    branches = [_build_branch(db, stmt)]
    dedup_until = -1
    for i, (op, sub) in enumerate(stmt.compounds):
        branches.append(_build_branch(db, sub))
        if op == "UNION":
            # Cumulative dedup: a UNION at position i dedups every branch
            # up to and including i+1.
            dedup_until = i + 1
    names = output_names(db.catalog, stmt)
    for branch in branches[1:]:
        if len(output_names(db.catalog, branch.select)) != len(names):
            raise ProgrammingError(
                "UNION selects must have the same number of columns"
            )
    est = sum(b.est_rows for b in branches)
    if stmt.limit is not None and isinstance(stmt.limit, ast.Literal) and isinstance(
        stmt.limit.value, int
    ):
        est = min(est, max(0, stmt.limit.value))
    return SelectPlan(
        select=stmt,
        branches=branches,
        dedup_until=dedup_until,
        order_by=stmt.order_by,
        limit=stmt.limit,
        offset=stmt.offset,
        names=names,
        est_rows=est,
    )
