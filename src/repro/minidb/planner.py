"""Access-path selection for minidb.

The planner is intentionally simple: it recognises *sargable* conjuncts of
the form ``column = <known expr>`` (and range comparisons) and matches them
against available indexes.  Plans are small dataclasses the executor
interprets; ``EXPLAIN <stmt>`` renders them as text.

PerfTrack's hot queries — focus/resource lookups by id or name, pr-filter
family probes — are all equality probes, so index-equality is the path
that matters.  Equi-joins with no usable index get a hash join (build the
probed table's key map once, stream the outer side against it) instead of
O(n·m) nested loops; everything else falls back to a full scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from . import ast_nodes as ast
from .catalog import TableMeta
from .index import Index


#: Minimum row count of the build (probed) table before a hash join pays
#: for building its key map; below this a nested scan is cheaper.
HASH_JOIN_MIN_BUILD_ROWS = 4


def split_conjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    """Flatten a WHERE tree into AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.Binary) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def expr_is_known(expr: ast.Expr, known_binding: Callable[[Optional[str], str], bool]) -> bool:
    """True when *expr* can be evaluated without scanning the target table.

    ``known_binding(table, column)`` reports whether a column reference is
    resolvable from an already-bound (outer) row; literals and parameters
    are always known.  Subqueries are conservatively treated as unknown.
    """
    if isinstance(expr, (ast.Literal, ast.Parameter)):
        return True
    if isinstance(expr, ast.ColumnRef):
        return known_binding(expr.table, expr.name)
    if isinstance(expr, ast.Unary):
        return expr_is_known(expr.operand, known_binding)
    if isinstance(expr, ast.Binary):
        return expr_is_known(expr.left, known_binding) and expr_is_known(
            expr.right, known_binding
        )
    if isinstance(expr, ast.Cast):
        return expr_is_known(expr.operand, known_binding)
    if isinstance(expr, ast.FuncCall):
        return all(expr_is_known(a, known_binding) for a in expr.args) and not expr.star
    if isinstance(expr, ast.Case):
        parts = [expr.operand] if expr.operand else []
        for c, r in expr.whens:
            parts.extend([c, r])
        if expr.default:
            parts.append(expr.default)
        return all(expr_is_known(p, known_binding) for p in parts)
    return False


@dataclass
class Sargable:
    """One usable predicate: ``column <op> value_expr``."""

    column: str
    op: str  # '=', '<', '<=', '>', '>='
    value: ast.Expr
    conjunct: ast.Expr  # original node (for residual elimination)


def extract_sargables(
    conjuncts: list[ast.Expr],
    binding: str,
    meta: TableMeta,
    known_binding: Callable[[Optional[str], str], bool],
) -> list[Sargable]:
    """Find predicates on *binding*'s columns comparable against known values."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}
    out: list[Sargable] = []
    for conj in conjuncts:
        if not isinstance(conj, ast.Binary) or conj.op not in flipped:
            continue
        for left, right, op in (
            (conj.left, conj.right, conj.op),
            (conj.right, conj.left, flipped[conj.op]),
        ):
            if (
                isinstance(left, ast.ColumnRef)
                and (left.table is None or left.table.lower() == binding.lower())
                and meta.has_column(left.name)
                and expr_is_known(right, known_binding)
            ):
                out.append(Sargable(left.name.lower(), op, right, conj))
                break
    return out


@dataclass
class InProbe:
    """Multi-probe of an index: ``column IN (known values...)``."""

    table: str
    binding: str
    index: "Index"
    items: list[ast.Expr]
    consumed: list[ast.Expr] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"SEARCH {self.table} AS {self.binding} USING INDEX "
            f"{self.index.name} IN-PROBE ({len(self.items)} keys)"
        )


@dataclass
class HashJoin:
    """Equi-join probe with no usable index: hash the table once, stream
    outer rows against it.

    ``build_positions[i]`` is the row position of ``build_cols[i]`` in the
    probed table; ``probe_exprs[i]`` is the matching outer-row expression.
    NULL keys are excluded on both sides (SQL equi-join semantics).
    """

    table: str
    binding: str
    build_cols: list[str]
    build_positions: list[int]
    probe_exprs: list[ast.Expr]
    consumed: list[ast.Expr] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"HashJoin {self.table} AS {self.binding} "
            f"(key: {', '.join(self.build_cols)})"
        )


@dataclass
class FullScan:
    table: str
    binding: str

    def describe(self) -> str:
        return f"SCAN {self.table} AS {self.binding}"


@dataclass
class IndexEquality:
    table: str
    binding: str
    index: Index
    key_exprs: list[ast.Expr]
    consumed: list[ast.Expr] = field(default_factory=list)

    def describe(self) -> str:
        return (
            f"SEARCH {self.table} AS {self.binding} USING INDEX "
            f"{self.index.name} ({', '.join(self.index.columns)})"
        )


@dataclass
class IndexRange:
    table: str
    binding: str
    index: Index
    prefix_exprs: list[ast.Expr]
    low: Optional[tuple[str, ast.Expr]] = None  # (op, expr)
    high: Optional[tuple[str, ast.Expr]] = None
    consumed: list[ast.Expr] = field(default_factory=list)

    def describe(self) -> str:
        bounds = []
        if self.low:
            bounds.append(f"{self.low[0]} low")
        if self.high:
            bounds.append(f"{self.high[0]} high")
        return (
            f"SEARCH {self.table} AS {self.binding} USING INDEX "
            f"{self.index.name} RANGE ({' AND '.join(bounds) or 'prefix'})"
        )


AccessPath = FullScan | IndexEquality | IndexRange | InProbe | HashJoin


def _contains_column_ref(expr: ast.Expr) -> bool:
    """True when *expr* references any column (i.e. varies per outer row)."""
    if isinstance(expr, ast.ColumnRef):
        return True
    if isinstance(expr, ast.Unary):
        return _contains_column_ref(expr.operand)
    if isinstance(expr, ast.Binary):
        return _contains_column_ref(expr.left) or _contains_column_ref(expr.right)
    if isinstance(expr, ast.Cast):
        return _contains_column_ref(expr.operand)
    if isinstance(expr, ast.FuncCall):
        return any(_contains_column_ref(a) for a in expr.args)
    return False


def choose_access_path(
    indexes: list[Index],
    meta: TableMeta,
    binding: str,
    conjuncts: list[ast.Expr],
    known_binding: Callable[[Optional[str], str], bool],
    table_size: Optional[int] = None,
) -> AccessPath:
    """Pick the best access path for one table given AND-ed conjuncts.

    Preference order: longest full-equality index match, then equality
    prefix + range, then — for equi-join conjuncts against outer-row
    values with no usable index and a build side of at least
    ``HASH_JOIN_MIN_BUILD_ROWS`` rows (*table_size*) — a hash join, then
    full scan.  Ties favour unique indexes.
    """
    # ``col IN (known items...)`` against a single-column index: multi-probe.
    # Checked first because pr-filter evaluation (PerfTrack's hot path) is
    # dominated by exactly this shape.
    if indexes:
        for conj in conjuncts:
            if (
                isinstance(conj, ast.InList)
                and not conj.negated
                and isinstance(conj.operand, ast.ColumnRef)
                and (
                    conj.operand.table is None
                    or conj.operand.table.lower() == binding.lower()
                )
                and meta.has_column(conj.operand.name)
                and all(expr_is_known(i, known_binding) for i in conj.items)
            ):
                col = conj.operand.name.lower()
                for idx in indexes:
                    if [c.lower() for c in idx.columns] == [col]:
                        return InProbe(
                            meta.name, binding, idx, list(conj.items), consumed=[conj]
                        )
    sargables = extract_sargables(conjuncts, binding, meta, known_binding)
    if not sargables:
        return FullScan(meta.name, binding)
    eq_by_col: dict[str, Sargable] = {}
    range_by_col: dict[str, list[Sargable]] = {}
    for s in sargables:
        if s.op == "=":
            eq_by_col.setdefault(s.column, s)
        else:
            range_by_col.setdefault(s.column, []).append(s)

    best: AccessPath | None = None
    best_score = (-1, False)  # (matched eq columns, unique)
    for idx in indexes:
        cols = [c.lower() for c in idx.columns]
        matched: list[Sargable] = []
        for c in cols:
            s = eq_by_col.get(c)
            if s is None:
                break
            matched.append(s)
        if len(matched) == len(cols):
            score = (len(matched) + 1, idx.unique)
            if score > best_score:
                best_score = score
                best = IndexEquality(
                    meta.name,
                    binding,
                    idx,
                    [s.value for s in matched],
                    consumed=[s.conjunct for s in matched],
                )
            continue
        if matched:
            score = (len(matched), idx.unique)
            if score > best_score:
                best_score = score
                # Equality on a strict prefix: range-scan the prefix.
                best = IndexRange(
                    meta.name,
                    binding,
                    idx,
                    [s.value for s in matched],
                    consumed=[],  # keep conjuncts as residual filters: prefix
                    # scan returns a superset when the index has more columns
                )
            continue
        # Pure range on leading column.
        ranges = range_by_col.get(cols[0])
        if ranges:
            low = high = None
            for s in ranges:
                if s.op in (">", ">="):
                    low = (s.op, s.value)
                else:
                    high = (s.op, s.value)
            score = (0, idx.unique)
            if best is None:
                best_score = score
                best = IndexRange(meta.name, binding, idx, [], low=low, high=high)
    if best is not None:
        return best
    hash_join = _maybe_hash_join(meta, binding, eq_by_col, table_size)
    if hash_join is not None:
        return hash_join
    return FullScan(meta.name, binding)


def _maybe_hash_join(
    meta: TableMeta,
    binding: str,
    eq_by_col: dict[str, Sargable],
    table_size: Optional[int],
) -> Optional[HashJoin]:
    """Build a hash-join plan from equality conjuncts, if worthwhile.

    At least one equality value must reference an outer-row column —
    constant probes gain nothing from hashing over a single residual
    scan — and the build side must be big enough to amortise the build.
    """
    if not eq_by_col:
        return None
    if table_size is not None and table_size < HASH_JOIN_MIN_BUILD_ROWS:
        return None
    if not any(_contains_column_ref(s.value) for s in eq_by_col.values()):
        return None
    cols = list(eq_by_col)
    return HashJoin(
        meta.name,
        binding,
        build_cols=cols,
        build_positions=[meta.column_index(c) for c in cols],
        probe_exprs=[eq_by_col[c].value for c in cols],
        consumed=[eq_by_col[c].conjunct for c in cols],
    )
